//! SLA audit: the workload the paper's introduction motivates.
//!
//! A customer domain S buys transit through L → X → N to reach D with
//! an SLA on X: *"intra-domain delay below 30 ms for 95% of packets,
//! monthly loss below 1%"* (today's SLAs promise delays of multiple
//! tens of milliseconds and per-month loss levels — paper §5.3, §6.3).
//! X gets congested by a bursty UDP flow and starts violating. With
//! VPM receipts, S's collector localizes the violation to X, with
//! confidence intervals — no traceroute guesswork, no finger-pointing.
//!
//! Run: `cargo run --release --example sla_audit`

use vpm::netsim::channel::{ChannelConfig, DelayModel};
use vpm::netsim::congestion::{foreground_delays, BottleneckConfig, CrossTraffic};
use vpm::netsim::reorder::ReorderModel;
use vpm::packet::SimDuration;
use vpm::sim::run::{run_path, RunConfig};
use vpm::sim::topology::Figure1;
use vpm::sim::verdict::analyze_path;
use vpm::trace::{TraceConfig, TraceGenerator};

use vpm::stats::sla::{combined_verdict, SlaSpec, Verdict};

fn main() {
    let sla = SlaSpec {
        quantile: 0.95,
        delay_bound: 30.0,
        loss_bound: 0.01,
    };

    // Traffic: 100 kpps for 2 simulated seconds.
    let trace = TraceGenerator::new(TraceConfig {
        duration: SimDuration::from_secs(2),
        ..TraceConfig::paper_default(2, 11)
    })
    .generate();
    println!(
        "auditing path S → L → X → N → D over {} packets",
        trace.len()
    );

    // X is congested: bursty high-rate UDP through its bottleneck, plus
    // bursty loss. (The same machinery as Figure 2.)
    let fates = foreground_delays(
        &trace,
        &BottleneckConfig::paper_default(),
        &CrossTraffic::paper_bursty_udp(),
        99,
    );
    let mut fig = Figure1::ideal();
    fig.x_transit = ChannelConfig {
        delay: DelayModel::Series(fates),
        loss: Some((0.03, 5.0)),
        reorder: ReorderModel::none(),
        seed: 5,
    };
    let topo = fig.build();

    // Everyone runs VPM with the paper's defaults (1% sampling; one
    // aggregate per 10k packets here so a 2-second audit has enough
    // aggregates to be meaningful).
    let cfg = RunConfig {
        sampling_rate: 0.01,
        aggregate_size: 10_000,
        ..RunConfig::default()
    };
    let run = run_path(&trace, &topo, &cfg);
    let analysis = analyze_path(&topo, &run);

    println!(
        "\nreceipt consistency: {} links checked, {} flagged",
        analysis.links.len(),
        analysis.flagged_links().len()
    );

    println!("\nper-domain report (from receipts alone):");
    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>10}",
        "domain", "loss[%]", "p50[ms]", "p95[ms]", "samples"
    );
    for d in &analysis.domains {
        let s = d.summary();
        let p95 = d.estimate.delay.as_ref().and_then(|e| {
            e.quantiles
                .iter()
                .find(|q| (q.q - sla.quantile).abs() < 1e-9)
                .copied()
        });
        println!(
            "{:>8} {:>10.2} {:>12.3} {:>14} {:>10}",
            s.name,
            s.loss_rate.unwrap_or(f64::NAN) * 100.0,
            s.median_delay_ms.unwrap_or(f64::NAN),
            p95.map_or_else(
                || "n/a".into(),
                |q| format!("{:.2} [{:.2},{:.2}]", q.value, q.lo, q.hi)
            ),
            s.matched_samples
        );
    }

    println!(
        "\nSLA verdicts (bound: p{:.0} ≤ {} ms, loss ≤ {}%):",
        sla.quantile * 100.0,
        sla.delay_bound,
        sla.loss_bound * 100.0
    );
    for d in &analysis.domains {
        let p95 = d.estimate.delay.as_ref().and_then(|e| {
            e.quantiles
                .iter()
                .find(|q| (q.q - sla.quantile).abs() < 1e-9)
        });
        let verdict = match combined_verdict(&sla, p95, &d.estimate.loss) {
            Verdict::Violated => "VIOLATION (provable from receipts)",
            Verdict::Compliant => "compliant (provable from receipts)",
            Verdict::Inconclusive => "inconclusive (CI straddles the bound — sample more)",
        };
        println!("  {:>2}: {}", d.name, verdict);
    }

    // Ground truth cross-check.
    let x = run.truth("X").expect("X is a transit domain");
    let mut t = x.delays_ms.clone();
    t.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let true_p95 = vpm::stats::empirical_quantile(&t, sla.quantile);
    let true_loss = 1.0 - x.delivered as f64 / x.sent as f64;
    println!(
        "\nground truth for X: p95 = {:.2} ms, loss = {:.2}% — the receipts told the same story.",
        true_p95,
        true_loss * 100.0
    );
}
