//! Tunability (problem-statement condition 3): each HOP picks its own
//! resource budget; quality degrades gracefully with the budget.
//!
//! Sweeps the two local knobs — sampling rate `σ` and aggregate size
//! `1/δ` — on the Figure 2 workload and prints the full cost/quality
//! frontier: receipt bandwidth, temp-buffer memory, delay accuracy and
//! loss granularity, side by side.
//!
//! Run: `cargo run --release --example tunability_sweep [seed]`

use vpm::core::overhead::BandwidthSpec;
use vpm::packet::SimDuration;
use vpm::sim::experiments::{fig2, fig3};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    // --- Sampling knob: accuracy vs bandwidth. ---
    let mut cfg2 = fig2::Fig2Config::paper(SimDuration::from_secs(1), seed);
    cfg2.sampling_rates = vec![0.10, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001];
    cfg2.loss_rates = vec![0.0];
    let points = fig2::run_averaged(&cfg2, 3);

    println!("=== knob 1: sampling rate σ (delay quality vs bandwidth) ===");
    println!(
        "{:>8} {:>14} {:>16} {:>12}",
        "rate", "accuracy[ms]", "samples matched", "B/pkt/HOP"
    );
    for p in &points {
        let bytes = p.sampling_rate * 7.0;
        println!(
            "{:>7.2}% {:>14.3} {:>16} {:>12.4}",
            p.sampling_rate * 100.0,
            p.accuracy_ms,
            p.matched,
            bytes
        );
    }
    println!("  → accuracy degrades gracefully; cost scales linearly.\n");

    // --- Aggregation knob: granularity vs bandwidth. ---
    println!("=== knob 2: aggregate size 1/δ (loss granularity vs bandwidth) ===");
    println!(
        "{:>10} {:>18} {:>12}",
        "pkts/agg", "granularity[s]", "B/pkt/HOP"
    );
    for agg_size in [1_000u64, 10_000, 50_000, 100_000] {
        let mut cfg3 = fig3::Fig3Config::paper(SimDuration::from_secs(8), seed);
        cfg3.aggregate_size = agg_size;
        cfg3.loss_rates = vec![0.10];
        let pts = fig3::run(&cfg3);
        let bw = BandwidthSpec {
            pkts_per_aggregate: agg_size,
            sampling_rate: 0.0,
            ..BandwidthSpec::paper_scenario()
        };
        println!(
            "{:>10} {:>18.3} {:>12.5}",
            agg_size,
            pts[0].granularity_secs,
            bw.agg_bytes_per_pkt_per_hop()
        );
    }
    println!("  → granularity is exactly the knob; cost is its inverse.");
    println!("\nBoth knobs are per-HOP local: no inter-domain coordination needed,");
    println!("and differently-tuned HOPs still verify each other (threshold total");
    println!("order ⇒ nested samples and nested partitions).");
}
