//! Regenerate Figure 3: loss-computation granularity vs loss rate,
//! with one aggregate per 100 000 packets.
//!
//! Run: `cargo run --release --example fig3_table [seconds] [seed]`
//! (default: 30 simulated seconds ≈ 3M packets ≈ 30 aggregates; the
//! paper's granularity baseline is 1 s because 100k packets ≈ 1 s at
//! 100 kpps.)

use vpm::packet::SimDuration;
use vpm::sim::experiments::fig3;

fn main() {
    let mut args = std::env::args().skip(1);
    let secs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let cfg = fig3::Fig3Config::paper(SimDuration::from_secs(secs), seed);
    eprintln!(
        "running Figure 3: {} s at {:.0} kpps, {} pkt/aggregate, losses 0–50% …",
        secs,
        cfg.pps / 1e3,
        cfg.aggregate_size
    );
    let points = fig3::run(&cfg);
    println!("{}", fig3::render_table(&points));
    println!("paper shape: 1 s at no loss (100k pkts ≈ 1 s), ~1.5 s at 25% loss,");
    println!("smooth degradation up to ~2.2-2.6 s at 50% loss.");
}
