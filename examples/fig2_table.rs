//! Regenerate Figure 2: delay-estimation accuracy vs sampling rate for
//! different loss levels, under bursty-UDP congestion.
//!
//! Run: `cargo run --release --example fig2_table [seconds] [seed]`
//! (default: 2 simulated seconds, seed 1; the paper uses 100 kpps
//! sequences, so 2 s ≈ 200k packets.)

use vpm::packet::SimDuration;
use vpm::sim::experiments::fig2;

fn main() {
    let mut args = std::env::args().skip(1);
    let secs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let seeds: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let cfg = fig2::Fig2Config::paper(SimDuration::from_secs(secs), seed);
    eprintln!(
        "running Figure 2: {} s at {:.0} kpps, rates {:?}, losses {:?}, {} seed(s) …",
        secs,
        cfg.pps / 1e3,
        cfg.sampling_rates,
        cfg.loss_rates,
        seeds
    );
    let points = fig2::run_averaged(&cfg, seeds);
    println!("{}", fig2::render_table(&points));
    println!("paper shape: sub-ms at high rates / no loss; ~2 ms at 1% sampling");
    println!("with 25% loss; accuracy degrades smoothly toward ~5-6 ms at 0.1%.");
    println!("\nraw points:");
    for p in &points {
        println!(
            "  rate {:>5.1}%  loss {:>3.0}%  accuracy {:>7.3} ms  mean {:>7.3} ms  matched {:>6}",
            p.sampling_rate * 100.0,
            p.loss_rate * 100.0,
            p.accuracy_ms,
            p.mean_error_ms,
            p.matched
        );
    }
}
