//! Quickstart: one domain, two HOPs, receipts in, estimates out.
//!
//! Builds the smallest complete VPM deployment: a single transit domain
//! whose ingress and egress HOPs run the full pipeline (classifier,
//! Algorithm 1 sampler, Algorithm 2 aggregator, processor) over a
//! synthetic 100 kpps trace, while the domain delays traffic by a
//! congested-queue profile and drops 5% of it. A verifier then
//! estimates the domain's loss and delay quantiles purely from the
//! receipts and compares them against ground truth.
//!
//! Run: `cargo run --release --example quickstart`

use vpm::core::receipt::PathId;
use vpm::core::verify::Verifier;
use vpm::core::{HopConfig, HopPipeline, Ingest};
use vpm::netsim::channel::{apply, arrivals, ChannelConfig, DelayModel};
use vpm::netsim::reorder::ReorderModel;
use vpm::packet::{DomainId, HopId, SimDuration, SimTime};
use vpm::trace::{TraceConfig, TraceGenerator};

fn main() {
    // 1. Traffic: 100 kpps for one second on one origin-prefix pair.
    let trace_cfg = TraceConfig::paper_default(1, 42);
    let trace = TraceGenerator::new(trace_cfg).generate();
    let stats = TraceGenerator::stats(&trace);
    println!(
        "trace: {} packets, {} flows, {:.0} pps, mean {:.0} B/pkt",
        stats.packets, stats.flows, stats.realized_pps, stats.mean_wire_len
    );

    // 2. The domain under measurement: jittery 1–6 ms transit, 5% loss.
    let transit = ChannelConfig {
        delay: DelayModel::Jitter {
            base: SimDuration::from_millis(1),
            jitter: SimDuration::from_millis(5),
        },
        loss: Some((0.05, 4.0)),
        reorder: ReorderModel::none(),
        seed: 7,
    };

    // 3. Two HOPs with the paper's default tuning (1% sampling, one
    //    aggregate per 100k packets — scaled to 5k for a 1-second run).
    let path = PathId {
        spec: trace_cfg.spec,
        prev_hop: None,
        next_hop: None,
        max_diff: SimDuration::from_millis(2),
    };
    let mk_hop = |id: u16| {
        let cfg = HopConfig::new(HopId(id), DomainId(1))
            .with_sampling_rate(0.01)
            .with_aggregate_size(5_000)
            .with_j_window(SimDuration::from_millis(10));
        let mut pipe = HopPipeline::new(cfg);
        pipe.register_path(path);
        pipe
    };
    let mut ingress = mk_hop(4);
    let mut egress = mk_hop(5);

    // 4. Observe: ingress sees everything; egress sees what survives.
    // The collector plane is batch-first: pre-classified, pre-digested
    // `(path index, digest, timestamp)` batches through `Ingest`.
    let t_in: Vec<SimTime> = trace.iter().map(|tp| tp.ts).collect();
    let in_batch: Vec<_> = trace
        .iter()
        .enumerate()
        .map(|(i, tp)| (0usize, tp.packet.digest(), t_in[i]))
        .collect();
    assert!(ingress.collector.ingest(&in_batch).is_clean());
    let out = apply(&t_in, &transit);
    let deliveries = arrivals(&out);
    let out_batch: Vec<_> = deliveries
        .iter()
        .map(|d| (0usize, trace[d.idx].packet.digest(), d.ts_out))
        .collect();
    assert!(egress.collector.ingest(&out_batch).is_clean());

    // 5. Reporting interval: each HOP emits a signed receipt batch.
    let b_in = ingress.final_report();
    let b_out = egress.final_report();
    println!(
        "receipts: ingress {} samples + {} aggregates ({} B compact), egress {} samples + {} aggregates",
        b_in.sample_records(),
        b_in.aggregates.len(),
        b_in.compact_bytes(),
        b_out.sample_records(),
        b_out.aggregates.len(),
    );

    // 6. Verification: estimate the domain from its receipts alone.
    let flat = |b: &vpm::core::processor::ReceiptBatch| {
        b.samples
            .iter()
            .flat_map(|r| r.samples.iter().copied())
            .collect::<Vec<_>>()
    };
    let verifier = Verifier::default();
    let est = verifier.estimate_domain(
        &flat(&b_in),
        &b_in.aggregates,
        &flat(&b_out),
        &b_out.aggregates,
    );

    let true_loss = 1.0 - deliveries.len() as f64 / trace.len() as f64;
    println!(
        "\nloss:  receipts say {:.2}% over {} joined aggregates (truth: {:.2}%)",
        est.loss.rate().unwrap_or(f64::NAN) * 100.0,
        est.join.joined.len(),
        true_loss * 100.0
    );

    let truth: Vec<f64> = deliveries
        .iter()
        .map(|d| d.ts_out.signed_delta(t_in[d.idx]) as f64 / 1e6)
        .collect();
    let mut sorted_truth = truth;
    sorted_truth.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let delay = est.delay.expect("samples matched");
    println!(
        "delay: {} matched samples; quantile estimates vs truth:",
        delay.matched
    );
    for q in &delay.quantiles {
        if [0.5, 0.9, 0.99].contains(&q.q) {
            let t = vpm::stats::empirical_quantile(&sorted_truth, q.q);
            println!(
                "  p{:<4} est {:>7.3} ms  [{:>7.3}, {:>7.3}] @95%   truth {:>7.3} ms",
                q.q * 100.0,
                q.value,
                q.lo,
                q.hi,
                t
            );
        }
    }
    println!("\nDone: a neighbor holding these receipts would reach the same numbers.");
}
