//! Regenerate every §7.1 overhead number — memory, processing and
//! bandwidth — from this implementation's real data structures, and
//! validate the processing model against live counters.
//!
//! Run: `cargo run --release --example overhead_report`

use vpm::core::overhead::{self, BandwidthSpec, TempBufferSpec, PAPER_PROCESSING};
use vpm::core::receipt::PathId;
use vpm::core::{Collector, HopConfig, Ingest};
use vpm::packet::{DomainId, HopId, SimDuration};
use vpm::trace::{TraceConfig, TraceGenerator};

fn main() {
    println!("=== §7.1 overhead model: paper vs this implementation ===\n");
    let report = overhead::section_7_1_report();
    println!("{:<48} {:>10} {:>10}", "quantity", "paper", "ours");
    for (label, paper, ours) in &report.rows {
        let p = if paper.is_nan() {
            "—".to_string()
        } else {
            format!("{paper:.3}")
        };
        println!("{label:<48} {p:>10} {ours:>10.3}");
    }

    println!("\n=== temp buffer sizing across interface speeds ===");
    println!(
        "{:>10} {:>12} {:>14} {:>14}",
        "link", "pkt size", "records/J", "buffer"
    );
    for (bps, label) in [(1e9, "1G"), (10e9, "10G"), (40e9, "40G"), (100e9, "100G")] {
        for pkt in [64.0, 400.0, 1500.0] {
            let spec = TempBufferSpec {
                link_bps: bps,
                avg_pkt_bytes: pkt,
                j: SimDuration::from_millis(10),
                duplex: true,
            };
            println!(
                "{:>10} {:>10}B {:>14.0} {:>13.1}KB",
                label,
                pkt,
                spec.pps() * 0.01,
                spec.buffer_bytes() as f64 / 1e3
            );
        }
    }

    println!("\n=== bandwidth overhead sensitivity ===");
    println!(
        "{:>12} {:>12} {:>16} {:>16}",
        "pkts/agg", "sampling", "B/pkt (path)", "overhead %"
    );
    for pkts in [1_000u64, 10_000, 100_000] {
        for rate in [0.001, 0.01, 0.05] {
            let bw = BandwidthSpec {
                pkts_per_aggregate: pkts,
                sampling_rate: rate,
                ..BandwidthSpec::paper_scenario()
            };
            println!(
                "{:>12} {:>11.1}% {:>16.4} {:>15.4}%",
                pkts,
                rate * 100.0,
                bw.total_bytes_per_pkt_path(),
                bw.total_overhead_fraction() * 100.0
            );
        }
    }

    // Validate the processing model against a live collector.
    println!("\n=== processing model validation (live counters) ===");
    let trace_cfg = TraceConfig {
        duration: SimDuration::from_millis(500),
        ..TraceConfig::paper_default(1, 77)
    };
    let trace = TraceGenerator::new(trace_cfg).generate();
    let mut collector = Collector::new(
        HopConfig::new(HopId(4), DomainId(2))
            .with_sampling_rate(0.01)
            .with_aggregate_size(10_000),
    );
    collector.register_path(PathId {
        spec: trace_cfg.spec,
        prev_hop: Some(HopId(3)),
        next_hop: Some(HopId(5)),
        max_diff: SimDuration::from_millis(2),
    });
    let batch: Vec<_> = trace
        .iter()
        .filter_map(|tp| {
            collector
                .classify(&tp.packet)
                .map(|idx| (idx, tp.packet.digest(), tp.ts))
        })
        .collect();
    assert!(collector.ingest(&batch).is_clean());
    let c = collector.counters();
    println!("packets processed:        {}", c.packets);
    println!(
        "memory accesses / packet: {:.3} (paper model: {})",
        c.memory_accesses as f64 / c.packets as f64,
        PAPER_PROCESSING.memory_accesses_per_pkt
    );
    println!(
        "hashes / packet:          {:.3} (paper model: {})",
        c.hash_ops as f64 / c.packets as f64,
        PAPER_PROCESSING.hashes_per_pkt
    );
    println!(
        "timestamps / packet:      {:.3} (paper model: {})",
        c.timestamp_ops as f64 / c.packets as f64,
        PAPER_PROCESSING.timestamps_per_pkt
    );
    println!(
        "sweep accesses / packet:  {:.3} (amortized; ≤ {} per buffered pkt)",
        c.marker_sweep_accesses as f64 / c.packets as f64,
        PAPER_PROCESSING.sweep_access_per_buffered
    );
    println!(
        "monitoring cache:         {} B for {} path(s)",
        collector.monitoring_cache_bytes(),
        collector.path_count()
    );
}
