//! Partial deployment (§8): what changes when a domain stays out of
//! VPM — and why that is exactly the pressure to join.
//!
//! Three scenarios on the Figure 1 path, with X congenitally lossy:
//!   1. everyone deploys — X's loss is measured and attributed to X;
//!   2. X does not deploy — the same loss is measured over the L→N
//!      segment and lands on X anyway, except now X cannot prove which
//!      part was really its fault;
//!   3. X does not deploy and L *lies* about its own loss — the blame
//!      for L's loss also lands on X, who has no receipts to refute it.
//!
//! Run: `cargo run --release --example partial_deployment`

use std::collections::HashSet;
use vpm::netsim::channel::{ChannelConfig, DelayModel};
use vpm::netsim::reorder::ReorderModel;
use vpm::packet::{DomainId, HopId, SimDuration};
use vpm::sim::adversary::{apply_lie, LieStrategy};
use vpm::sim::partial::analyze_partial;
use vpm::sim::run::{run_path, RunConfig};
use vpm::sim::topology::Figure1;
use vpm::sim::verdict::analyze_path;
use vpm::trace::{TraceConfig, TraceGenerator};

fn main() {
    let trace = TraceGenerator::new(TraceConfig {
        target_pps: 100_000.0,
        duration: SimDuration::from_millis(400),
        ..TraceConfig::paper_default(1, 71)
    })
    .generate();

    let ch = |loss: f64, seed: u64| ChannelConfig {
        delay: DelayModel::Constant(SimDuration::from_micros(300)),
        loss: (loss > 0.0).then_some((loss, 4.0)),
        reorder: ReorderModel::none(),
        seed,
    };
    let cfg = RunConfig {
        sampling_rate: 0.02,
        aggregate_size: 2_000,
        ..RunConfig::default()
    };

    // --- Scenario 1: full deployment. ---
    let mut fig = Figure1::ideal();
    fig.x_transit = ch(0.12, 3);
    let topo = fig.build();
    let run = run_path(&trace, &topo, &cfg);
    let full = analyze_path(&topo, &run);
    println!("=== 1. full deployment, X loses 12% ===");
    for d in &full.domains {
        println!(
            "  {:>2}: loss {:>6.2}%",
            d.name,
            d.estimate.loss.rate().unwrap_or(f64::NAN) * 100.0
        );
    }
    println!("  → the loss is X's, provably.\n");

    // --- Scenario 2: X stays out. ---
    let deployed: HashSet<DomainId> = topo
        .domains
        .iter()
        .filter(|d| d.name != "X")
        .map(|d| d.id)
        .collect();
    let partial = analyze_partial(&topo, &run, &deployed);
    println!("=== 2. X does not deploy ===");
    for d in &partial.domains {
        println!(
            "  {:>2}: loss {:>6.2}%",
            d.name,
            d.estimate.loss.rate().unwrap_or(f64::NAN) * 100.0
        );
    }
    for s in &partial.segments {
        println!(
            "  segment {}→{} (spans non-deployers): loss {:>6.2}%",
            s.up_hop,
            s.down_hop,
            s.estimate.loss.rate().unwrap_or(f64::NAN) * 100.0
        );
    }
    println!("  → the segment spanning X carries the loss; X cannot scope it.\n");

    // --- Scenario 3: X out, L lossy AND lying. ---
    let mut fig3 = Figure1::ideal();
    fig3.x_transit = ch(0.0, 3);
    fig3.l_transit = ch(0.12, 5);
    let topo3 = fig3.build();
    let mut run3 = run_path(&trace, &topo3, &cfg);
    let ingress2 = run3.hop(HopId(2)).expect("hop 2").clone();
    apply_lie(
        &ingress2,
        run3.hop_mut(HopId(3)).expect("hop 3"),
        LieStrategy::BlameShiftLoss {
            claimed_delay: SimDuration::from_micros(300),
        },
    );
    let partial3 = analyze_partial(&topo3, &run3, &deployed);
    println!("=== 3. X out; L loses 12% and fabricates delivery receipts ===");
    for d in &partial3.domains {
        println!(
            "  {:>2}: loss {:>6.2}%",
            d.name,
            d.estimate.loss.rate().unwrap_or(f64::NAN) * 100.0
        );
    }
    for s in &partial3.segments {
        println!(
            "  segment {}→{}: loss {:>6.2}%",
            s.up_hop,
            s.down_hop,
            s.estimate.loss.rate().unwrap_or(f64::NAN) * 100.0
        );
    }
    println!("  → L's books are clean and L's loss landed on the X segment.");
    println!("    A deployed X would have refuted this with its own receipts —");
    println!("    the paper's deployment incentive (§8), demonstrated.");
}
