//! The §3 argument, as a measured table: per-packet receipts
//! (strawman), Trajectory Sampling ++, Difference Aggregator ++, and
//! VPM, all evaluated on the same workload.
//!
//! Run: `cargo run --release --example baseline_comparison [seed]`

use vpm::sim::baselines;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let reports = baselines::compare(seed);
    println!("{}", baselines::render_table(&reports));
    println!("reading guide:");
    println!("  - the strawman is exact but costs 7 B per packet per HOP (no tuning);");
    println!("  - TS++ is fine while honest, but its sampled set is predictable, so");
    println!("    colluding neighbors fast-path exactly those packets: consistent");
    println!("    receipts, grossly exaggerated performance;");
    println!("  - DA++ cannot produce delay quantiles at all and miscounts under");
    println!("    reordering;");
    println!("  - VPM keeps the strawman's guarantees at a tunable fraction of the cost.");
}
