//! Liar detection: the §3.1 exposure story, end to end.
//!
//! Domain X drops 20% of the traffic it carries, then lies: its egress
//! HOP fabricates receipts claiming everything was delivered to N with
//! a pleasant 200 µs transit. The run shows three acts:
//!
//!   1. honest world — every link consistent, X's loss measured;
//!   2. X lies alone — the X→N link becomes inconsistent; the
//!      inconsistency implicates exactly {X, N}, and N (who knows it
//!      didn't receive those packets) knows X is the liar;
//!   3. N colludes and covers for X — the X→N link looks clean again,
//!      but now N's own books show the loss: covering a neighbor's lie
//!      means taking the blame yourself.
//!
//! Run: `cargo run --release --example liar_detection`

use vpm::netsim::channel::{ChannelConfig, DelayModel};
use vpm::netsim::reorder::ReorderModel;
use vpm::packet::{HopId, SimDuration};
use vpm::sim::adversary::{apply_lie, cover_up, LieStrategy};
use vpm::sim::run::{run_path, PathRun, RunConfig};
use vpm::sim::topology::{Figure1, Topology};
use vpm::sim::verdict::{analyze_path, PathAnalysis};
use vpm::trace::{TraceConfig, TraceGenerator};

fn report(title: &str, topo: &Topology, analysis: &PathAnalysis) {
    println!("\n=== {title} ===");
    for d in &analysis.domains {
        let s = d.summary();
        println!(
            "  {:>2}: loss {:>6.2}%  ({} matched samples)",
            s.name,
            s.loss_rate.unwrap_or(f64::NAN) * 100.0,
            s.matched_samples
        );
    }
    let flagged = analysis.flagged_links();
    if flagged.is_empty() {
        println!("  links: all consistent");
    } else {
        for l in flagged {
            let (a, b) = l.implicates;
            let name = |id| {
                topo.domains
                    .iter()
                    .find(|d| d.id == id)
                    .map(|d| d.name.clone())
                    .unwrap_or_default()
            };
            println!(
                "  link {}→{}: INCONSISTENT ({} violations) — implicates {{{}, {}}}",
                l.up,
                l.down,
                l.report.inconsistencies.len(),
                name(a),
                name(b)
            );
        }
    }
}

fn fresh_run(topo: &Topology) -> PathRun {
    let trace = TraceGenerator::new(TraceConfig {
        target_pps: 100_000.0,
        duration: SimDuration::from_millis(500),
        ..TraceConfig::paper_default(1, 23)
    })
    .generate();
    let cfg = RunConfig {
        sampling_rate: 0.02,
        aggregate_size: 2_000,
        ..RunConfig::default()
    };
    run_path(&trace, topo, &cfg)
}

fn main() {
    // X drops 20% of everything it carries.
    let mut fig = Figure1::ideal();
    fig.x_transit = ChannelConfig {
        delay: DelayModel::Constant(SimDuration::from_micros(200)),
        loss: Some((0.20, 5.0)),
        reorder: ReorderModel::none(),
        seed: 3,
    };
    let topo = fig.build();

    // Act 1: honesty.
    let run = fresh_run(&topo);
    report("Act 1: everyone honest", &topo, &analyze_path(&topo, &run));
    println!("  → X's 20% loss is on the record; nobody is implicated falsely.");

    // Act 2: X lies alone.
    let mut run2 = fresh_run(&topo);
    let ingress4 = run2.hop(HopId(4)).expect("hop 4").clone();
    apply_lie(
        &ingress4,
        run2.hop_mut(HopId(5)).expect("hop 5"),
        LieStrategy::BlameShiftLoss {
            claimed_delay: SimDuration::from_micros(200),
        },
    );
    let a2 = analyze_path(&topo, &run2);
    report("Act 2: X fabricates delivery receipts", &topo, &a2);
    println!(
        "  → X's own books look clean now, but the X→N link screams: N never\n    acknowledged those packets. The rest of the world sees {{X, N}}; N knows\n    exactly who lied (it was implicated)."
    );

    // Act 3: N covers for X.
    let mut run3 = fresh_run(&topo);
    let ingress4 = run3.hop(HopId(4)).expect("hop 4").clone();
    apply_lie(
        &ingress4,
        run3.hop_mut(HopId(5)).expect("hop 5"),
        LieStrategy::BlameShiftLoss {
            claimed_delay: SimDuration::from_micros(200),
        },
    );
    let liar_egress = run3.hop(HopId(5)).expect("hop 5").clone();
    cover_up(&liar_egress, run3.hop_mut(HopId(6)).expect("hop 6"));
    let a3 = analyze_path(&topo, &run3);
    report("Act 3: N colludes and covers the lie", &topo, &a3);
    println!(
        "  → The X→N link is quiet, but the loss did not vanish: N's ingress now\n    claims packets its egress never delivered, so the books pin X's loss on N.\n    Colluding with a liar means absorbing the liar's losses (§3.1)."
    );
}
