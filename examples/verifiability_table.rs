//! Regenerate the §7.2 "Verifiability" numbers: X samples at 1% and
//! loses 25%; neighbors verify at their own rates.
//!
//! Run: `cargo run --release --example verifiability_table [seconds] [seed]`

use vpm::packet::SimDuration;
use vpm::sim::experiments::verifiability;

fn main() {
    let mut args = std::env::args().skip(1);
    let secs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let cfg = verifiability::VerifiabilityConfig::paper(SimDuration::from_secs(secs), seed);
    eprintln!(
        "running verifiability sweep: X at {:.1}% sampling, {:.0}% loss, neighbors {:?} …",
        cfg.x_rate * 100.0,
        cfg.loss * 100.0,
        cfg.neighbor_rates
    );
    let points = verifiability::run(&cfg);
    println!("{}", verifiability::render_table(&points));
    println!("paper shape: neighbor at 1% verifies at ~the same accuracy as X's");
    println!("self-report (~2 ms with 25% loss); at 0.1% it degrades to ~5 ms.");
}
