//! The long-horizon audit workload behind `vpm audit`.
//!
//! A synthetic fleet of 4-HOP paths publishes one receipt batch per
//! HOP per reporting interval for thousands of intervals, under
//! churn: paths leave and rejoin, HOPs start and stop lying about
//! their packet counts. A single [`Auditor`] follows the stream,
//! folds every interval incrementally, periodically checkpoints, and
//! drives the bus's epoch GC by compacting below its own cursor. The
//! driver measures what continuous operation is supposed to
//! guarantee — retained entry count and process RSS stay **flat** no
//! matter how many intervals pass — and, with
//! [`AuditConfig::assert_flat`], turns a violation into a typed
//! [`AuditError::NotFlat`] instead of a green run.
//!
//! Everything is deterministic in [`AuditConfig::seed`] (churn and
//! packet counts come from the same splitmix64 stream the fleet
//! harness uses), so an interrupted-and-restored run must serialize
//! the exact same [`AuditVerdict`] as an uninterrupted one — the
//! byte-identity CI gate diffs the two JSON outputs directly.

use serde::{Deserialize, Serialize};
use vpm_core::processor::ReceiptBatch;
use vpm_core::receipt::{AggId, AggReceipt, PathId};
use vpm_hash::{Digest, HopKey};
use vpm_packet::{DomainId, HeaderSpec, HopId, Ipv4Prefix, SimDuration};
use vpm_wire::{Profile, ReceiptTransport, ShardedBus, TransportError};

use super::{AuditError, AuditVerdict, Auditor, HOPS_PER_PATH};
use crate::fleet::mix;

/// Default seed for the audit workload's churn/count stream.
pub const AUDIT_BASE_SEED: u64 = 0x5eed_a0d1;

/// The auditing domain: sees every published entry (the workload puts
/// it on-path for all traffic — the regulator position of the paper).
const AUDIT_REQUESTER: DomainId = DomainId(0);

/// Packet count a liar's egress HOPs add to their reports — any
/// nonzero delta makes the interval's HOP chain inconsistent.
const LIE_DELTA: u64 = 7;

/// Splitmix salts separating the three decision streams drawn from
/// one seed (membership churn, liar churn, per-interval counts).
const SALT_ACTIVE: u64 = 0xace0_0001;
const SALT_LIAR: u64 = 0x11a7_0002;
const SALT_COUNT: u64 = 0xc047_0003;

/// Odd multiplier decorrelating the (interval, slot) pair folded into
/// one splitmix salt.
const SLOT_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// The audit workload caps path slots so every HOP id
/// (`1 + slot * 4 + idx`) stays inside `u16`.
pub const MAX_AUDIT_PATHS: usize = 16_000;

/// The deterministic churn process: which path slots are currently
/// publishing, and which of those currently lie.
#[derive(Debug, Clone)]
pub struct Churn {
    seed: u64,
    /// Slot currently publishes (paths leave and rejoin the fleet).
    active: Vec<bool>,
    /// Slot's egress HOPs currently misreport counts.
    liar: Vec<bool>,
}

impl Churn {
    /// All slots active and honest; churn begins with [`Churn::step`].
    pub fn new(paths: usize, seed: u64) -> Churn {
        let paths = paths.min(MAX_AUDIT_PATHS);
        Churn {
            seed,
            active: vec![true; paths],
            liar: vec![false; paths],
        }
    }

    /// Test constructor: a fixed membership/liar assignment (never
    /// stepped by the tests that use it).
    #[doc(hidden)]
    pub fn fixed(paths: usize, active: &[bool], liar: &[bool]) -> Churn {
        let mut c = Churn::new(paths, 0);
        for (dst, src) in c.active.iter_mut().zip(active) {
            *dst = *src;
        }
        for (dst, src) in c.liar.iter_mut().zip(liar) {
            *dst = *src;
        }
        c
    }

    /// Advance the churn process to interval `t`: each slot flips
    /// membership with probability 1/64 and liar status with
    /// probability 1/32, decided by the seed alone.
    pub fn step(&mut self, t: u64) {
        for (s, a) in self.active.iter_mut().enumerate() {
            let cell = t.wrapping_mul(SLOT_MIX).wrapping_add(s as u64);
            if mix(self.seed, SALT_ACTIVE ^ cell).is_multiple_of(64) {
                *a = !*a;
            }
        }
        for (s, l) in self.liar.iter_mut().enumerate() {
            let cell = t.wrapping_mul(SLOT_MIX).wrapping_add(s as u64);
            if mix(self.seed, SALT_LIAR ^ cell).is_multiple_of(32) {
                *l = !*l;
            }
        }
    }

    /// Slots currently publishing.
    pub fn active_paths(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }
}

/// The HOP at position `idx` (0 = ingress … 3 = egress) of path slot
/// `slot`. Slot counts are capped at [`MAX_AUDIT_PATHS`] so the id
/// arithmetic never leaves `u16`; HOP 0 is reserved (the auditor
/// treats it as "not a workload HOP").
fn slot_hop(slot: usize, idx: u16) -> HopId {
    HopId(1 + (slot as u16) * HOPS_PER_PATH + idx)
}

/// Each HOP signs with a key derived from the workload seed space
/// (same idiom as the fleet and bench harnesses).
fn slot_key(hop: HopId) -> HopKey {
    HopKey::from_seed(0xa0d1_7000 ^ u64::from(hop.0))
}

/// A distinct synthetic `PathID` per slot, so frames spread across the
/// bus's path-hashed shards exactly like real per-path traffic.
#[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
fn slot_path(slot: usize) -> PathId {
    let (hi, lo) = ((slot >> 8) as u8, slot as u8);
    PathId {
        spec: HeaderSpec::new(
            Ipv4Prefix::new(std::net::Ipv4Addr::new(10, hi, lo, 1), 32)
                .expect("a /32 literal prefix is always valid"), // vpm-lint: allow(R1, a /32 literal prefix is always valid)
            Ipv4Prefix::new(std::net::Ipv4Addr::new(20, hi, lo, 1), 32)
                .expect("a /32 literal prefix is always valid"), // vpm-lint: allow(R1, a /32 literal prefix is always valid)
        ),
        prev_hop: Some(slot_hop(slot, 0)),
        next_hop: Some(slot_hop(slot, HOPS_PER_PATH - 1)),
        max_diff: SimDuration::from_millis(2),
    }
}

/// Publish one HOP's signed aggregate report for one interval.
fn publish_hop(
    transport: &dyn ReceiptTransport,
    slot: usize,
    idx: u16,
    interval: u64,
    count: u64,
) -> Result<u64, TransportError> {
    let hop = slot_hop(slot, idx);
    let key = slot_key(hop);
    transport.register_key(hop, key)?; // idempotent after the first interval
    let mut batch = ReceiptBatch {
        hop,
        batch_seq: interval,
        samples: vec![],
        aggregates: vec![AggReceipt {
            path: slot_path(slot),
            agg: AggId {
                first: Digest(interval.wrapping_mul(2) + 1),
                last: Digest(interval.wrapping_mul(2) + 2),
            },
            pkt_cnt: count,
            agg_trans: vec![],
        }],
        auth_tag: 0,
    };
    batch.auth_tag = batch.compute_tag(key.tag_key());
    // The publisher domain is the slot's own; the auditor is on-path
    // for everything (the visibility rule stays exercised, not waived).
    let publisher = DomainId(1 + (slot as u16));
    transport.publish_batch(
        publisher,
        &batch,
        Profile::Precise,
        vec![AUDIT_REQUESTER, publisher],
        &key,
    )
}

/// Publish one reporting interval for every active slot: four HOP
/// reports per path, egress HOPs of lying slots off by `lie_delta`.
/// Returns the number of frames published.
pub fn publish_interval(
    transport: &dyn ReceiptTransport,
    churn: &Churn,
    interval: u64,
    lie_delta: u64,
) -> Result<usize, TransportError> {
    let mut published = 0;
    for (slot, active) in churn.active.iter().enumerate() {
        if !*active {
            continue;
        }
        let cell = interval.wrapping_mul(SLOT_MIX).wrapping_add(slot as u64);
        let honest = 100 + mix(churn.seed, SALT_COUNT ^ cell) % 50;
        let lying = churn.liar.get(slot).copied().unwrap_or(false);
        for idx in 0..HOPS_PER_PATH {
            let count = if lying && idx >= HOPS_PER_PATH / 2 {
                honest + lie_delta
            } else {
                honest
            };
            publish_hop(transport, slot, idx, interval, count)?;
            published += 1;
        }
    }
    Ok(published)
}

/// Test hook: publish a single HOP report so the auditor's unit tests
/// can leave an interval deliberately partial.
#[doc(hidden)]
pub fn publish_one_hop_for_tests(
    transport: &dyn ReceiptTransport,
    slot: usize,
    idx: u16,
    interval: u64,
    count: u64,
) -> Result<u64, TransportError> {
    publish_hop(transport, slot, idx, interval, count)
}

/// Shape of one `vpm audit` run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AuditConfig {
    /// Path slots in the fleet (capped at [`MAX_AUDIT_PATHS`]).
    pub paths: usize,
    /// Reporting intervals to simulate.
    pub intervals: u64,
    /// Shards of the bus under audit.
    pub shards: usize,
    /// Compact the bus below the auditor's cursor every this many
    /// intervals (0 disables GC — the workload then grows without
    /// bound, which is exactly what `assert_flat` exists to catch).
    pub gc_every: u64,
    /// Encode a checkpoint every this many intervals (0 disables).
    pub checkpoint_every: u64,
    /// Stop after this interval, checkpoint, tear the auditor down,
    /// and restore a fresh one from the encoded bytes — the
    /// byte-identity gate runs with and without this set.
    pub restart_at: Option<u64>,
    /// Seed of the churn/count stream.
    pub seed: u64,
    /// Fail with [`AuditError::NotFlat`] if retained entries exceed
    /// the GC-window bound or RSS grows past the slack.
    pub assert_flat: bool,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            paths: 16,
            intervals: 2000,
            shards: 8,
            gc_every: 32,
            checkpoint_every: 256,
            restart_at: None,
            seed: AUDIT_BASE_SEED,
            assert_flat: false,
        }
    }
}

/// Operational counters of one audit run (reported alongside the
/// verdict, never inside it — the verdict must be restart-invariant).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct AuditRunStats {
    /// Frames published.
    pub publishes: u64,
    /// Entries reclaimed by GC passes.
    pub reclaimed: u64,
    /// GC passes run.
    pub gc_passes: u64,
    /// Checkpoints encoded.
    pub checkpoints: u64,
    /// Auditor restarts performed.
    pub restarts: u64,
    /// Peak retained entry count observed on the bus.
    pub max_entries: usize,
    /// Retained entries at the end of the run.
    pub final_entries: usize,
    /// Size of the last encoded checkpoint, in bytes.
    pub checkpoint_bytes: usize,
    /// Interval-summary records the GC passes left behind.
    pub summary_records: usize,
    /// Resident set size after the first GC pass, KiB (Linux only).
    pub rss_baseline_kb: Option<u64>,
    /// Resident set size at the end of the run, KiB (Linux only).
    pub rss_end_kb: Option<u64>,
}

/// A completed audit run: the deterministic verdict plus the
/// operational stats.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditOutcome {
    /// The restart-invariant verdict (`vpm audit --json` prints
    /// exactly this).
    pub verdict: AuditVerdict,
    /// Operational counters (human output only).
    pub stats: AuditRunStats,
}

/// Resident set size in KiB from `/proc/self/statm` (resident pages ×
/// 4 KiB). `None` off-Linux or when unreadable — the flatness check
/// then rests on the exact entry-count bound alone.
fn rss_kb() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4)
}

/// RSS growth slack for `assert_flat`, KiB. Allocator arenas and lazy
/// page-ins move RSS without an actual leak; a real per-interval leak
/// blows through this within a few hundred intervals.
const RSS_SLACK_KB: u64 = 32 * 1024;

/// Drive the long-horizon workload. See the module docs for the
/// shape; every failure is a typed [`AuditError`].
pub fn run_audit(cfg: &AuditConfig) -> Result<AuditOutcome, AuditError> {
    let bus = ShardedBus::new(cfg.shards);
    let mut churn = Churn::new(cfg.paths, cfg.seed);
    let mut auditor = Auditor::subscribe(&bus, AUDIT_REQUESTER)?;
    let mut stats = AuditRunStats::default();
    for t in 0..cfg.intervals {
        churn.step(t);
        stats.publishes += publish_interval(&bus, &churn, t, LIE_DELTA)? as u64;
        auditor.drain(&bus)?;
        auditor.finish_interval()?;
        if cfg.checkpoint_every > 0 && (t + 1) % cfg.checkpoint_every == 0 {
            let bytes = auditor.checkpoint(&bus)?.encode()?;
            stats.checkpoints += 1;
            stats.checkpoint_bytes = bytes.len();
        }
        if cfg.restart_at == Some(t + 1) {
            let bytes = auditor.checkpoint(&bus)?.encode()?;
            stats.checkpoint_bytes = bytes.len();
            auditor.shutdown(&bus);
            auditor = Auditor::restore(&bus, AUDIT_REQUESTER, &bytes)?;
            stats.restarts += 1;
        }
        if cfg.gc_every > 0 && (t + 1) % cfg.gc_every == 0 {
            let report = bus.compact_before(auditor.next_seq())?;
            stats.reclaimed += report.reclaimed;
            stats.gc_passes += 1;
            if stats.rss_baseline_kb.is_none() {
                // Baseline after the first full GC window: caches and
                // allocator arenas are warm, growth past here is real.
                stats.rss_baseline_kb = rss_kb();
            }
        }
        stats.max_entries = stats.max_entries.max(bus.len());
    }
    stats.final_entries = bus.len();
    stats.summary_records = bus.summaries()?.len();
    stats.rss_end_kb = rss_kb();
    if cfg.assert_flat {
        assert_flat(cfg, &stats)?;
    }
    let verdict = auditor.verdict();
    auditor.shutdown(&bus);
    Ok(AuditOutcome { verdict, stats })
}

/// The bounded-memory contract: retained entries never exceed one GC
/// window of publishes, and RSS never grows past the slack from its
/// post-warmup baseline.
fn assert_flat(cfg: &AuditConfig, stats: &AuditRunStats) -> Result<(), AuditError> {
    if cfg.gc_every > 0 {
        let window =
            cfg.gc_every as usize * cfg.paths.min(MAX_AUDIT_PATHS) * HOPS_PER_PATH as usize;
        if stats.max_entries > window {
            return Err(AuditError::NotFlat {
                what: format!(
                    "retained entries peaked at {} (> one GC window of {})",
                    stats.max_entries, window
                ),
            });
        }
    }
    if let (Some(base), Some(end)) = (stats.rss_baseline_kb, stats.rss_end_kb) {
        if end > base + RSS_SLACK_KB {
            return Err(AuditError::NotFlat {
                what: format!("RSS grew from {base} KiB to {end} KiB (> {RSS_SLACK_KB} KiB slack)"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn quick_cfg() -> AuditConfig {
        AuditConfig {
            paths: 4,
            intervals: 96,
            shards: 4,
            gc_every: 8,
            checkpoint_every: 16,
            restart_at: None,
            seed: 0xfeed,
            assert_flat: true,
        }
    }

    /// The workload is deterministic in its seed, GC actually
    /// reclaims, and the entry count respects the GC-window bound.
    #[test]
    fn the_workload_is_flat_and_deterministic() {
        let cfg = quick_cfg();
        let a = run_audit(&cfg).unwrap();
        let b = run_audit(&cfg).unwrap();
        assert_eq!(
            serde_json::to_string(&a.verdict).unwrap(),
            serde_json::to_string(&b.verdict).unwrap()
        );
        assert!(a.stats.gc_passes >= 12, "gc_passes {}", a.stats.gc_passes);
        assert!(a.stats.reclaimed > 0);
        assert!(a.stats.checkpoints >= 6);
        assert!(a.stats.checkpoint_bytes > 0);
        assert!(a.stats.max_entries <= 8 * 4 * 4);
        assert!(
            a.stats.final_entries <= 8 * 4 * 4,
            "final {}",
            a.stats.final_entries
        );
        assert!(a.stats.summary_records > 0);
        // Churn visibly happened: not every interval audited every path.
        assert!(a.verdict.audited_intervals < cfg.intervals * cfg.paths as u64);
        // And some lying was caught.
        assert!(a.verdict.flagged_intervals > 0);
    }

    /// Without GC the same workload violates the flatness contract —
    /// the assertion is real, not tautological.
    #[test]
    fn disabling_gc_trips_the_flatness_assertion() {
        let cfg = AuditConfig {
            gc_every: 0,
            ..quick_cfg()
        };
        // With gc_every = 0 the entry bound is skipped, so re-enable a
        // tiny window the un-GC'd run must blow through: run with GC
        // disabled but judge with the standard window.
        let out = run_audit(&AuditConfig {
            assert_flat: false,
            ..cfg
        })
        .unwrap();
        let judged = assert_flat(&quick_cfg(), &out.stats);
        assert!(matches!(judged, Err(AuditError::NotFlat { .. })));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Satellite: checkpoint/restart equivalence across arbitrary
        /// interruption points — stopping after any interval and
        /// restoring from the encoded checkpoint yields a verdict
        /// byte-identical to the uninterrupted run.
        #[test]
        fn restart_at_any_interval_is_verdict_invisible(restart in 1u64..64) {
            let mut cfg = AuditConfig {
                paths: 3,
                intervals: 64,
                shards: 4,
                gc_every: 16,
                checkpoint_every: 32,
                restart_at: None,
                seed: 0xbead,
                assert_flat: true,
            };
            let full = run_audit(&cfg).unwrap();
            cfg.restart_at = Some(restart);
            let restarted = run_audit(&cfg).unwrap();
            prop_assert_eq!(restarted.stats.restarts, 1);
            prop_assert_eq!(
                serde_json::to_string(&full.verdict).unwrap(),
                serde_json::to_string(&restarted.verdict).unwrap()
            );
        }
    }
}
