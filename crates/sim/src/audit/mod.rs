//! The streaming audit plane: continuous verification with bounded
//! memory.
//!
//! Every other workload in the repo runs to completion — finite trace
//! in, one-shot verdict out. The paper's deployment story is different:
//! domains are monitored *continuously*, which needs three things the
//! run-to-completion pipeline lacks, all provided here on top of the
//! transport layer's retention API:
//!
//! * **incremental re-verdicts** — [`Auditor`] follows one global
//!   subscription and folds each path's reporting interval into a
//!   running [`vpm_wire::PathAuditState`] the moment the interval's
//!   last HOP report arrives. Nothing is ever re-analyzed from
//!   scratch, so the auditor's working set is O(paths), not
//!   O(history).
//! * **checkpointable verification** — [`Auditor::checkpoint`]
//!   snapshots the resume cursor plus the per-path states into a
//!   [`vpm_wire::AuditCheckpoint`]; [`Auditor::restore`] resumes from
//!   the encoded bytes and produces verdicts **byte-identical** to an
//!   uninterrupted run (CI-gated via `vpm audit --restart-at`). A
//!   checkpoint whose cursor fell behind the retention horizon while
//!   the verifier was down is refused with a typed
//!   [`TransportError::LaggedBehind`] at restore — never a silently
//!   gapped audit.
//! * **the long-horizon workload** — [`workload::run_audit`] drives a
//!   synthetic fleet under churn (paths joining/leaving, liars
//!   toggling) for thousands of intervals, GC-ing the bus through
//!   [`ReceiptTransport::compact_before`] as the auditor's cursor
//!   advances and asserting that bus entry count and process RSS stay
//!   flat — surfaced as `vpm audit`, measured by `vpm bench-audit`.

pub mod workload;

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use vpm_packet::DomainId;
use vpm_wire::{
    AuditCheckpoint, PathAuditState, Published, ReceiptTransport, SubscriptionId, TransportError,
    WireError,
};

pub use workload::{run_audit, AuditConfig, AuditOutcome, AuditRunStats, AUDIT_BASE_SEED};

/// HOPs per audited path (ingress, two transit boundaries, egress —
/// the minimal chain on which a count mismatch localizes a liar).
pub const HOPS_PER_PATH: u16 = 4;

/// Typed audit-plane failures. Never a panic: transport refusals,
/// checkpoint codec refusals, and audit-protocol violations all
/// surface here.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditError {
    /// The transport refused an operation (including `LaggedBehind`
    /// when a restore's cursor fell behind the retention horizon).
    Transport(TransportError),
    /// A checkpoint failed to encode or decode.
    Checkpoint(WireError),
    /// A checkpoint was requested while per-interval accumulators were
    /// still partial — snapshots are only taken at quiescent interval
    /// boundaries (see `vpm_wire::checkpoint`).
    NotQuiescent {
        /// Partially-accumulated (path, interval) cells outstanding.
        pending: usize,
    },
    /// The bounded-memory contract was violated under `--assert-flat`.
    NotFlat {
        /// What grew, with the measured and permitted values.
        what: String,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Transport(e) => write!(f, "transport: {e}"),
            AuditError::Checkpoint(e) => write!(f, "checkpoint codec: {e}"),
            AuditError::NotQuiescent { pending } => write!(
                f,
                "checkpoint requested with {pending} partial interval(s) outstanding"
            ),
            AuditError::NotFlat { what } => write!(f, "memory not flat: {what}"),
        }
    }
}

impl std::error::Error for AuditError {}

impl From<TransportError> for AuditError {
    fn from(e: TransportError) -> Self {
        AuditError::Transport(e)
    }
}

impl From<WireError> for AuditError {
    fn from(e: WireError) -> Self {
        AuditError::Checkpoint(e)
    }
}

/// One path's state in the serialized verdict (the JSON mirror of
/// [`PathAuditState`] — field order is stable, the restart
/// byte-identity gate compares serialized verdicts directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathAuditSummary {
    /// The workload's stable path index.
    pub path: u32,
    /// Intervals fully audited.
    pub audited_intervals: u64,
    /// Audited intervals with mutually inconsistent HOP reports.
    pub flagged_intervals: u64,
    /// The most recent interval folded.
    pub last_interval: u64,
}

/// The deterministic verdict `vpm audit --json` prints. Contains only
/// auditor state — no timings, no memory numbers — so an interrupted
/// run restored from a checkpoint serializes byte-identically to an
/// uninterrupted one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditVerdict {
    /// Workload intervals fully folded.
    pub intervals: u64,
    /// Sum of per-path audited intervals.
    pub audited_intervals: u64,
    /// Sum of per-path flagged intervals.
    pub flagged_intervals: u64,
    /// Per-path incremental state, sorted by path index.
    pub paths: Vec<PathAuditSummary>,
}

/// Per-interval accumulator: the HOP counts seen so far for one
/// (path, interval) cell.
#[derive(Debug, Clone, Copy, Default)]
struct IntervalCell {
    counts: [Option<u64>; HOPS_PER_PATH as usize],
}

impl IntervalCell {
    fn complete(&self) -> bool {
        self.counts.iter().all(|c| c.is_some())
    }

    /// All four HOPs reported the same packet count — the audit
    /// plane's per-interval consistency rule (a liar shaving or
    /// inflating its egress count breaks the chain).
    fn consistent(&self) -> bool {
        let mut it = self.counts.iter().flatten();
        match it.next() {
            None => true,
            Some(first) => it.all(|c| c == first),
        }
    }
}

/// The streaming verifier: one global subscription, per-path
/// incremental verdict state, quiescent-boundary checkpoints.
#[derive(Debug)]
pub struct Auditor {
    sub: SubscriptionId,
    /// First undelivered global sequence number (the resume cursor).
    next_seq: u64,
    /// Workload intervals fully folded (bumped by
    /// [`Auditor::finish_interval`]).
    intervals: u64,
    /// Partial per-(path, interval) accumulators. `BTreeMap` so every
    /// iteration order is deterministic (R2).
    pending: BTreeMap<(u32, u64), IntervalCell>,
    /// Per-path incremental verdict state.
    paths: BTreeMap<u32, PathAuditState>,
}

impl Auditor {
    /// Subscribe a fresh auditor at the start of the stream. Fails
    /// with [`TransportError::LaggedBehind`] if the bus already GC'd
    /// past sequence 0 — a fresh verifier on a long-running bus must
    /// start from a checkpoint or the live horizon, not pretend it saw
    /// reclaimed history.
    pub fn subscribe(
        transport: &dyn ReceiptTransport,
        requester: DomainId,
    ) -> Result<Auditor, AuditError> {
        let sub = transport.subscribe_from(requester, 0)?;
        Ok(Auditor {
            sub,
            next_seq: 0,
            intervals: 0,
            pending: BTreeMap::new(),
            paths: BTreeMap::new(),
        })
    }

    /// Resume from an encoded [`AuditCheckpoint`]. The transport
    /// re-checks its *live* horizon: if GC advanced past the
    /// checkpoint's cursor while the verifier was down, this fails
    /// with a typed [`TransportError::LaggedBehind`] instead of
    /// resuming with silently missing frames.
    pub fn restore(
        transport: &dyn ReceiptTransport,
        requester: DomainId,
        bytes: &[u8],
    ) -> Result<Auditor, AuditError> {
        let cp = AuditCheckpoint::decode(bytes)?;
        let sub = transport.subscribe_from(requester, cp.next_seq)?;
        Ok(Auditor {
            sub,
            next_seq: cp.next_seq,
            intervals: cp.intervals,
            pending: BTreeMap::new(),
            paths: cp.paths.iter().map(|p| (p.path, *p)).collect(),
        })
    }

    /// The resume cursor: first global sequence number not yet folded.
    /// Everything below it is fully audited and safe to GC
    /// (`compact_before(auditor.next_seq())`).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Workload intervals fully folded so far.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Poll the subscription once and fold every delivered frame.
    /// Returns the number of frames folded. A `LaggedBehind` refusal
    /// propagates typed — the auditor's cursor state is untouched, so
    /// the caller can checkpoint-diagnose rather than lose the stream.
    pub fn drain(&mut self, transport: &dyn ReceiptTransport) -> Result<usize, AuditError> {
        let fresh = transport.poll(self.sub)?;
        for p in &fresh {
            self.fold(p);
        }
        Ok(fresh.len())
    }

    /// Fold one published frame into the incremental state.
    fn fold(&mut self, p: &Arc<Published>) {
        self.next_seq = self.next_seq.max(p.seq + 1);
        let hop0 = p.hop.0;
        if hop0 == 0 {
            return; // not a workload HOP; ignore rather than misfile
        }
        let (slot, idx) = (
            u32::from((hop0 - 1) / HOPS_PER_PATH),
            ((hop0 - 1) % HOPS_PER_PATH) as usize,
        );
        let count = match p.batch.aggregates.first() {
            Some(agg) => agg.pkt_cnt,
            None => return, // a quiet interval carries no aggregate
        };
        let interval = p.batch.batch_seq;
        let cell = self.pending.entry((slot, interval)).or_default();
        if let Some(c) = cell.counts.get_mut(idx) {
            *c = Some(count);
        }
        if cell.complete() {
            let consistent = cell.consistent();
            self.pending.remove(&(slot, interval));
            let state = self.paths.entry(slot).or_insert(PathAuditState {
                path: slot,
                audited_intervals: 0,
                flagged_intervals: 0,
                last_interval: 0,
            });
            state.audited_intervals += 1;
            if !consistent {
                state.flagged_intervals += 1;
            }
            state.last_interval = state.last_interval.max(interval);
        }
    }

    /// Mark one workload interval complete. Refuses (typed) while any
    /// per-interval accumulator is still partial — the workload
    /// publishes whole intervals, so a partial cell here means frames
    /// were lost, and the verdict must not silently count the interval
    /// as folded.
    pub fn finish_interval(&mut self) -> Result<(), AuditError> {
        if !self.pending.is_empty() {
            return Err(AuditError::NotQuiescent {
                pending: self.pending.len(),
            });
        }
        self.intervals += 1;
        Ok(())
    }

    /// Snapshot the resumable state. Only legal at a quiescent
    /// interval boundary (see `vpm_wire::checkpoint`); the transport's
    /// current horizon is recorded for diagnostics.
    pub fn checkpoint(
        &self,
        transport: &dyn ReceiptTransport,
    ) -> Result<AuditCheckpoint, AuditError> {
        if !self.pending.is_empty() {
            return Err(AuditError::NotQuiescent {
                pending: self.pending.len(),
            });
        }
        Ok(AuditCheckpoint {
            next_seq: self.next_seq,
            horizon: transport.horizon()?,
            intervals: self.intervals,
            paths: self.paths.values().copied().collect(),
        })
    }

    /// The deterministic verdict (see [`AuditVerdict`]).
    pub fn verdict(&self) -> AuditVerdict {
        let paths: Vec<PathAuditSummary> = self
            .paths
            .values()
            .map(|p| PathAuditSummary {
                path: p.path,
                audited_intervals: p.audited_intervals,
                flagged_intervals: p.flagged_intervals,
                last_interval: p.last_interval,
            })
            .collect();
        AuditVerdict {
            intervals: self.intervals,
            audited_intervals: paths.iter().map(|p| p.audited_intervals).sum(),
            flagged_intervals: paths.iter().map(|p| p.flagged_intervals).sum(),
            paths,
        }
    }

    /// Release the subscription (the cursor dies with it).
    pub fn shutdown(self, transport: &dyn ReceiptTransport) {
        let _ = transport.unsubscribe(self.sub);
    }
}

#[cfg(test)]
mod tests {
    use super::workload::{publish_interval, Churn};
    use super::*;
    use vpm_wire::{InMemoryBus, ShardedBus};

    const REQ: DomainId = DomainId(0);

    /// Drive a small honest+liar workload by hand and check the
    /// incremental fold reaches the obvious verdict.
    #[test]
    fn incremental_fold_counts_and_flags_per_interval() {
        let bus = InMemoryBus::new();
        let mut auditor = Auditor::subscribe(&bus, REQ).unwrap();
        let churn = Churn::fixed(2, &[true, true], &[false, true]);
        for t in 0..5 {
            publish_interval(&bus, &churn, t, 7).unwrap();
            auditor.drain(&bus).unwrap();
            auditor.finish_interval().unwrap();
        }
        let v = auditor.verdict();
        assert_eq!(v.intervals, 5);
        assert_eq!(v.paths.len(), 2);
        assert_eq!(v.paths[0].audited_intervals, 5);
        assert_eq!(v.paths[0].flagged_intervals, 0, "honest path never flags");
        assert_eq!(v.paths[1].audited_intervals, 5);
        assert_eq!(v.paths[1].flagged_intervals, 5, "liar flags every interval");
        assert_eq!(v.audited_intervals, 10);
        assert_eq!(v.flagged_intervals, 5);
    }

    /// Stop at an interval boundary, checkpoint, restore into a fresh
    /// auditor, continue — the final verdict is byte-identical to the
    /// uninterrupted run, across both bus backends.
    #[test]
    fn checkpoint_restore_verdicts_are_byte_identical() {
        let backends: Vec<Box<dyn ReceiptTransport>> =
            vec![Box::new(InMemoryBus::new()), Box::new(ShardedBus::new(4))];
        for bus in &backends {
            let run = |restart_at: Option<u64>| {
                let mut churn = Churn::new(3, 0xA0D1);
                let mut auditor = Auditor::subscribe(bus.as_ref(), REQ).unwrap();
                for t in 0..12 {
                    churn.step(t);
                    publish_interval(bus.as_ref(), &churn, t, 7).unwrap();
                    auditor.drain(bus.as_ref()).unwrap();
                    auditor.finish_interval().unwrap();
                    if restart_at == Some(t + 1) {
                        let bytes = auditor.checkpoint(bus.as_ref()).unwrap().encode().unwrap();
                        auditor.shutdown(bus.as_ref());
                        auditor = Auditor::restore(bus.as_ref(), REQ, &bytes).unwrap();
                    }
                }
                let v = serde_json::to_string(&auditor.verdict()).unwrap();
                auditor.shutdown(bus.as_ref());
                v
            };
            // Each closure run re-publishes the same intervals; the
            // auditor folds only what its cursor hasn't seen, so give
            // each comparison its own bus.
            let full = run(None);
            // Fresh bus for the restart run.
            let bus2: Box<dyn ReceiptTransport> = Box::new(ShardedBus::new(4));
            let mut churn = Churn::new(3, 0xA0D1);
            let mut auditor = Auditor::subscribe(bus2.as_ref(), REQ).unwrap();
            for t in 0..12 {
                churn.step(t);
                publish_interval(bus2.as_ref(), &churn, t, 7).unwrap();
                auditor.drain(bus2.as_ref()).unwrap();
                auditor.finish_interval().unwrap();
                if t + 1 == 6 {
                    let bytes = auditor.checkpoint(bus2.as_ref()).unwrap().encode().unwrap();
                    auditor.shutdown(bus2.as_ref());
                    auditor = Auditor::restore(bus2.as_ref(), REQ, &bytes).unwrap();
                }
            }
            let restarted = serde_json::to_string(&auditor.verdict()).unwrap();
            assert_eq!(full, restarted, "restart must be verdict-invisible");
        }
    }

    /// A checkpoint whose cursor fell behind the horizon while the
    /// verifier was down is refused typed at restore.
    #[test]
    fn restore_behind_the_horizon_is_a_typed_refusal() {
        let bus = ShardedBus::new(2);
        let churn = Churn::fixed(1, &[true], &[false]);
        let mut auditor = Auditor::subscribe(&bus, REQ).unwrap();
        publish_interval(&bus, &churn, 0, 7).unwrap();
        auditor.drain(&bus).unwrap();
        auditor.finish_interval().unwrap();
        let early = auditor.checkpoint(&bus).unwrap();
        // More traffic, then GC past the early checkpoint's cursor.
        for t in 1..4 {
            publish_interval(&bus, &churn, t, 7).unwrap();
            auditor.drain(&bus).unwrap();
            auditor.finish_interval().unwrap();
        }
        let cursor = auditor.next_seq();
        auditor.shutdown(&bus);
        bus.compact_before(cursor).unwrap();
        assert!(matches!(
            Auditor::restore(&bus, REQ, &early.encode().unwrap()),
            Err(AuditError::Transport(TransportError::LaggedBehind { .. }))
        ));
        // The *current* cursor still restores fine.
        let cp = AuditCheckpoint {
            next_seq: cursor,
            horizon: bus.horizon().unwrap(),
            intervals: 4,
            paths: vec![],
        };
        assert!(Auditor::restore(&bus, REQ, &cp.encode().unwrap()).is_ok());
    }

    /// A checkpoint mid-interval (partial accumulators) is refused.
    #[test]
    fn mid_interval_checkpoints_are_refused() {
        let bus = InMemoryBus::new();
        let churn = Churn::fixed(1, &[true], &[false]);
        let mut auditor = Auditor::subscribe(&bus, REQ).unwrap();
        // Publish a full interval but drop the last HOP's frame by
        // publishing a fresh interval only partially: reuse the
        // workload publisher for 1 path, then manually drain after
        // publishing the next interval's first frames only.
        publish_interval(&bus, &churn, 0, 7).unwrap();
        auditor.drain(&bus).unwrap();
        auditor.finish_interval().unwrap();
        // Hand-publish a partial interval: first HOP only.
        super::workload::publish_one_hop_for_tests(&bus, 0, 1, 0, 50).unwrap();
        auditor.drain(&bus).unwrap();
        assert!(matches!(
            auditor.checkpoint(&bus),
            Err(AuditError::NotQuiescent { pending: 1 })
        ));
        assert!(matches!(
            auditor.finish_interval(),
            Err(AuditError::NotQuiescent { pending: 1 })
        ));
    }
}
