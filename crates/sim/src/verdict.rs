//! Path-level analysis: the receipt collector's view.
//!
//! A collector gathers receipts from *all* HOPs on a path (§3.1 shows
//! why anything less destroys the honesty incentives), computes every
//! domain's loss/delay estimate, checks every inter-domain link's
//! consistency, and reports which links carry inconsistent claims —
//! each such link implicates its two adjacent domains, and the
//! implicated honest domain knows exactly who lied.

use serde::{Deserialize, Serialize};
use vpm_core::verify::{DomainEstimate, LinkReport, Verifier};
use vpm_packet::{DomainId, HopId};
use vpm_wire::{ReceiptTransport, TransportError};

use crate::run::{HopOutput, PathRun};
use crate::topology::{DomainRole, Topology};

/// One transit domain's receipt-derived estimate.
#[derive(Debug, Clone)]
pub struct DomainReport {
    /// The domain.
    pub domain: DomainId,
    /// Its name.
    pub name: String,
    /// Ingress/egress HOPs used.
    pub hops: (HopId, HopId),
    /// The estimate.
    pub estimate: DomainEstimate,
}

/// One inter-domain link's consistency verdict.
#[derive(Debug, Clone)]
pub struct LinkVerdict {
    /// Delivering HOP.
    pub up: HopId,
    /// Receiving HOP.
    pub down: HopId,
    /// The two domains the link implicates when inconsistent.
    pub implicates: (DomainId, DomainId),
    /// The consistency report.
    pub report: LinkReport,
}

/// The collector's full path analysis.
#[derive(Debug, Clone)]
pub struct PathAnalysis {
    /// Per-transit-domain estimates.
    pub domains: Vec<DomainReport>,
    /// Per-link verdicts.
    pub links: Vec<LinkVerdict>,
}

impl PathAnalysis {
    /// Links whose receipts are inconsistent, with the implicated
    /// domain pairs — "the liar is exposed to the neighbor it
    /// implicated" (§3.1).
    pub fn flagged_links(&self) -> Vec<&LinkVerdict> {
        self.links
            .iter()
            .filter(|l| !l.report.is_consistent())
            .collect()
    }

    /// The estimate for a domain by name.
    pub fn domain(&self, name: &str) -> Option<&DomainReport> {
        self.domains.iter().find(|d| d.name == name)
    }

    /// Are all links consistent?
    pub fn all_consistent(&self) -> bool {
        self.links.iter().all(|l| l.report.is_consistent())
    }
}

/// Summary suitable for printing (used by examples).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainSummary {
    /// Domain name.
    pub name: String,
    /// Estimated loss rate, if computable.
    pub loss_rate: Option<f64>,
    /// Estimated median delay (ms), if computable.
    pub median_delay_ms: Option<f64>,
    /// Estimated 90th-percentile delay (ms), if computable.
    pub p90_delay_ms: Option<f64>,
    /// Matched samples backing the delay estimate.
    pub matched_samples: usize,
}

impl DomainReport {
    /// Condense for display.
    pub fn summary(&self) -> DomainSummary {
        let q = |target: f64| {
            self.estimate.delay.as_ref().and_then(|d| {
                d.quantiles
                    .iter()
                    .find(|e| (e.q - target).abs() < 1e-9)
                    .map(|e| e.value)
            })
        };
        DomainSummary {
            name: self.name.clone(),
            loss_rate: self.estimate.loss.rate(),
            median_delay_ms: q(0.5),
            p90_delay_ms: q(0.9),
            matched_samples: self.estimate.matched_samples,
        }
    }
}

/// Analyze a completed path run (possibly doctored by adversaries).
#[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
pub fn analyze_path(topology: &Topology, run: &PathRun) -> PathAnalysis {
    let verifier = Verifier::default();

    let mut domains = Vec::new();
    for dom in &topology.domains {
        if dom.role != DomainRole::Transit {
            continue;
        }
        let (ing, eg) = (
            dom.ingress.expect("transit has ingress"), // vpm-lint: allow(R1, verdicts only visit transit domains, which carry both HOPs)
            dom.egress.expect("transit has egress"), // vpm-lint: allow(R1, verdicts only visit transit domains, which carry both HOPs)
        );
        let (Some(hi), Some(he)) = (run.hop(ing), run.hop(eg)) else {
            continue;
        };
        let estimate =
            verifier.estimate_domain(&hi.samples, &hi.aggregates, &he.samples, &he.aggregates);
        domains.push(DomainReport {
            domain: dom.id,
            name: dom.name.clone(),
            hops: (ing, eg),
            estimate,
        });
    }

    let mut links = Vec::new();
    for link in &topology.links {
        let (Some(up), Some(down)) = (run.hop(link.up), run.hop(link.down)) else {
            continue;
        };
        let report = verifier.check_link(
            &up.path,
            &up.samples,
            &up.aggregates,
            &down.path,
            &down.samples,
            &down.aggregates,
        );
        links.push(LinkVerdict {
            up: link.up,
            down: link.down,
            implicates: (up.domain, down.domain),
            report,
        });
    }

    PathAnalysis { domains, links }
}

/// Analyze a path from disseminated receipts alone: fetch every HOP's
/// frames from the transport as `requester`, merge the decoded batches
/// per HOP in publish order, and run the same verifier logic as
/// [`analyze_path`].
///
/// This is the receipt collector's real position in the redesigned
/// pipeline — it never touches a `PathRun`, only what `publish` put on
/// the wire. Authenticity was already enforced at publish (the
/// transport rejects frames whose tag fails), so the collector consumes
/// the decoded batches directly; HOPs that published nothing are simply
/// absent from the analysis, exactly like non-deployed HOPs in
/// [`analyze_path`]. Fails with [`TransportError::NotOnPath`] when
/// `requester` did not observe the traffic.
pub fn analyze_from_transport(
    topology: &Topology,
    transport: &dyn ReceiptTransport,
    requester: DomainId,
) -> Result<PathAnalysis, TransportError> {
    let mut hops = Vec::new();
    for hop in topology.hops() {
        let published = transport.fetch(requester, hop)?;
        // An empty batch (e.g. a quiet first reporting interval) has no
        // path table; take the path from the first frame that names one
        // and skip the hop only if *no* frame does.
        let Some(&path) = published.iter().find_map(|p| p.paths.first()) else {
            continue;
        };
        hops.push(hop_output_from_frames(topology, hop, path, &published));
    }
    let run = PathRun {
        hops,
        truths: Vec::new(),
        trace_len: 0,
    };
    Ok(analyze_path(topology, &run))
}

/// [`analyze_from_transport`], but **path-scoped**: every HOP's frames
/// are fetched by its `PathID` (from [`Topology::hop_path_ids`])
/// instead of by HOP id. On a [`vpm_wire::ShardedBus`] each such fetch
/// touches exactly one shard, so analyzing one path of an N-path fleet
/// costs O(its own frames), not O(every frame on the bus) — this is
/// the per-path unit of work `crate::fleet::analyze_fleet_from_transport`
/// fans across its verification workers.
///
/// Produces the same analysis as [`analyze_from_transport`] for any
/// publish sequence the path runner emits (pinned by test): an empty
/// batch carries no path table, so a path-scoped fetch never sees it —
/// but an empty batch contributes no samples or aggregates either way.
pub fn analyze_from_transport_scoped(
    topology: &Topology,
    transport: &dyn ReceiptTransport,
    requester: DomainId,
) -> Result<PathAnalysis, TransportError> {
    let mut hops = Vec::new();
    for (hop, path) in topology.hop_path_ids() {
        let mut published = transport.fetch_path(requester, &path)?;
        // Defensive: a frame in this path's shard that some *other* HOP
        // published must not pollute this HOP's batch.
        published.retain(|p| p.hop == hop);
        if published.iter().all(|p| p.paths.is_empty()) {
            continue; // nothing but (impossible via fetch_path) empties
        }
        hops.push(hop_output_from_frames(topology, hop, path, &published));
    }
    let run = PathRun {
        hops,
        truths: Vec::new(),
        trace_len: 0,
    };
    Ok(analyze_path(topology, &run))
}

/// Rebuild one HOP's output from its fetched frames, merging the
/// decoded batches in publish order (shared by the by-HOP and
/// path-scoped collectors so they cannot drift apart).
#[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
fn hop_output_from_frames(
    topology: &Topology,
    hop: HopId,
    path: vpm_core::receipt::PathId,
    published: &[std::sync::Arc<vpm_wire::Published>],
) -> HopOutput {
    let mut batch = published
        .first()
        .expect("caller checked non-empty") // vpm-lint: allow(R1, the caller checked the window is non-empty)
        .batch
        .clone();
    // vpm-lint: allow(R1, the caller checked published is non-empty)
    for p in &published[1..] {
        batch.samples.extend(p.batch.samples.iter().cloned());
        batch.aggregates.extend(p.batch.aggregates.iter().cloned());
    }
    let samples = batch
        .samples
        .iter()
        .flat_map(|r| r.samples.iter().copied())
        .collect();
    let aggregates = batch.aggregates.clone();
    // The collector never learns HOP secrets, so the rebuilt output
    // carries no key — but it does carry the authenticated key epoch
    // the transport MAC-verified the frames under (the newest one, if
    // a rotation happened mid-stream).
    let key_epoch = published
        .iter()
        .map(|p| p.epoch)
        .max()
        .expect("caller checked non-empty"); // vpm-lint: allow(R1, the caller checked the window is non-empty)
    HopOutput {
        hop,
        domain: topology.domain_of(hop).expect("hop has a domain").id, // vpm-lint: allow(R1, every hop in a built topology belongs to a domain)
        path,
        batch,
        samples,
        aggregates,
        observed: 0, // unknown to a pure receipt collector
        key: None,   // MAC-checked at publish and re-checked at fetch
        key_epoch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{apply_lie, cover_up, LieStrategy};
    use crate::run::{run_path, RunConfig};
    use crate::topology::Figure1;
    use vpm_netsim::channel::{ChannelConfig, DelayModel};
    use vpm_netsim::reorder::ReorderModel;
    use vpm_packet::SimDuration;
    use vpm_trace::{TraceConfig, TraceGenerator};

    fn scenario(loss_in_x: f64) -> (Topology, PathRun) {
        let t = TraceGenerator::new(TraceConfig {
            target_pps: 50_000.0,
            duration: SimDuration::from_millis(200),
            ..TraceConfig::paper_default(1, 17)
        })
        .generate();
        let mut fig = Figure1::ideal();
        if loss_in_x > 0.0 {
            fig.x_transit = ChannelConfig {
                delay: DelayModel::Constant(SimDuration::from_micros(200)),
                loss: Some((loss_in_x, 4.0)),
                reorder: ReorderModel::none(),
                seed: 5,
            };
        }
        let topo = fig.build();
        let cfg = RunConfig {
            sampling_rate: 0.05,
            aggregate_size: 500,
            marker_rate: 0.01,
            j_window: SimDuration::from_millis(2),
            ..RunConfig::default()
        };
        let run = run_path(&t, &topo, &cfg);
        (topo, run)
    }

    #[test]
    fn honest_lossy_domain_is_consistent_and_measured() {
        let (topo, run) = scenario(0.2);
        let analysis = analyze_path(&topo, &run);
        assert!(analysis.all_consistent(), "honest receipts must check out");
        let x = analysis.domain("X").unwrap();
        let loss = x.estimate.loss.rate().unwrap();
        assert!((loss - 0.2).abs() < 0.05, "estimated X loss {loss}");
        // The innocent neighbors show ~no loss.
        for name in ["L", "N"] {
            let d = analysis.domain(name).unwrap();
            assert!(d.estimate.loss.rate().unwrap_or(0.0) < 0.01, "{name}");
        }
    }

    /// A collector working purely from disseminated frames reaches the
    /// same verdicts as one reading the runner's outputs directly.
    #[test]
    fn transport_only_analysis_matches_path_analysis() {
        let t = TraceGenerator::new(TraceConfig {
            target_pps: 50_000.0,
            duration: SimDuration::from_millis(200),
            ..TraceConfig::paper_default(1, 23)
        })
        .generate();
        let mut fig = Figure1::ideal();
        fig.x_transit = ChannelConfig {
            delay: DelayModel::Constant(SimDuration::from_micros(200)),
            loss: Some((0.15, 4.0)),
            reorder: ReorderModel::none(),
            seed: 5,
        };
        let topo = fig.build();
        let cfg = RunConfig {
            sampling_rate: 0.05,
            aggregate_size: 500,
            marker_rate: 0.01,
            j_window: SimDuration::from_millis(2),
            ..RunConfig::default()
        };
        let transport = vpm_wire::ShardedBus::new(4);
        let run = crate::run::run_path_with_transport(&t, &topo, &cfg, &transport).unwrap();
        let from_run = analyze_path(&topo, &run);
        let requester = topo.domain_ids()[0];
        let from_wire = super::analyze_from_transport(&topo, &transport, requester).unwrap();
        assert_eq!(from_run.domains.len(), from_wire.domains.len());
        for (a, b) in from_run.domains.iter().zip(&from_wire.domains) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.estimate, b.estimate, "{}", a.name);
        }
        assert_eq!(from_run.links.len(), from_wire.links.len());
        for (a, b) in from_run.links.iter().zip(&from_wire.links) {
            assert_eq!((a.up, a.down), (b.up, b.down));
            assert_eq!(a.report, b.report, "{}→{}", a.up, a.down);
        }
        // And an off-path collector is refused outright.
        assert!(matches!(
            super::analyze_from_transport(&topo, &transport, DomainId(99)),
            Err(vpm_wire::TransportError::NotOnPath { .. })
        ));
    }

    /// A quiet first reporting interval publishes an empty batch (no
    /// path table); the collector must still use the populated batches
    /// that follow rather than dropping the HOP.
    #[test]
    fn empty_first_batch_does_not_hide_a_hop_from_the_collector() {
        let t = TraceGenerator::new(TraceConfig {
            target_pps: 50_000.0,
            duration: SimDuration::from_millis(150),
            ..TraceConfig::paper_default(1, 29)
        })
        .generate();
        let topo = Figure1::ideal().build();
        let cfg = RunConfig {
            sampling_rate: 0.05,
            aggregate_size: 500,
            marker_rate: 0.01,
            j_window: SimDuration::from_millis(2),
            ..RunConfig::default()
        };
        let run = crate::run::run_path(&t, &topo, &cfg);
        let transport = vpm_wire::InMemoryBus::new();
        let on_path = topo.domain_ids();
        for h in &run.hops {
            let key = h.hop_key();
            transport.register_key(h.hop, key).unwrap();
            // Interval 0: nothing matured yet — an empty, signed batch.
            let mut empty = vpm_core::processor::ReceiptBatch {
                hop: h.hop,
                batch_seq: 0,
                samples: vec![],
                aggregates: vec![],
                auth_tag: 0,
            };
            empty.auth_tag = empty.compute_tag(key.tag_key());
            transport
                .publish_batch(
                    h.domain,
                    &empty,
                    vpm_wire::Profile::Precise,
                    on_path.clone(),
                    &key,
                )
                .unwrap();
            // Interval 1: the real receipts.
            transport
                .publish_batch(
                    h.domain,
                    &h.batch,
                    vpm_wire::Profile::Precise,
                    on_path.clone(),
                    &key,
                )
                .unwrap();
        }
        let analysis = super::analyze_from_transport(&topo, &transport, on_path[0]).unwrap();
        let baseline = analyze_path(&topo, &run);
        assert_eq!(analysis.domains.len(), baseline.domains.len());
        for (a, b) in baseline.domains.iter().zip(&analysis.domains) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.estimate, b.estimate, "{}", a.name);
        }
    }

    /// The path-scoped collector (one shard per HOP fetch) reaches the
    /// same verdicts as the by-HOP collector, including with an empty
    /// first reporting interval on the bus.
    #[test]
    fn scoped_analysis_matches_hop_fetch_analysis() {
        let t = TraceGenerator::new(TraceConfig {
            target_pps: 50_000.0,
            duration: SimDuration::from_millis(150),
            ..TraceConfig::paper_default(1, 31)
        })
        .generate();
        let mut fig = Figure1::ideal();
        fig.x_transit = ChannelConfig {
            delay: DelayModel::Constant(SimDuration::from_micros(200)),
            loss: Some((0.1, 3.0)),
            reorder: ReorderModel::none(),
            seed: 7,
        };
        let topo = fig.build();
        let cfg = RunConfig {
            sampling_rate: 0.05,
            aggregate_size: 500,
            marker_rate: 0.01,
            j_window: SimDuration::from_millis(2),
            ..RunConfig::default()
        };
        let transport = vpm_wire::ShardedBus::new(8);
        let on_path = topo.domain_ids();
        // An empty interval-0 batch for every HOP, then the real run.
        // The keys must be the processors' own: the run that follows
        // registers them too, and the transport refuses a different
        // key for an established HOP.
        for (hop, _) in topo.hop_path_ids() {
            let key = vpm_core::processor::default_hop_key(hop);
            transport.register_key(hop, key).unwrap();
            let mut empty = vpm_core::processor::ReceiptBatch {
                hop,
                batch_seq: 0,
                samples: vec![],
                aggregates: vec![],
                auth_tag: 0,
            };
            empty.auth_tag = empty.compute_tag(key.tag_key());
            transport
                .publish_batch(
                    topo.domain_of(hop).unwrap().id,
                    &empty,
                    vpm_wire::Profile::Precise,
                    on_path.clone(),
                    &key,
                )
                .unwrap();
        }
        crate::run::run_path_with_transport(&t, &topo, &cfg, &transport).unwrap();
        let requester = on_path[0];
        let by_hop = super::analyze_from_transport(&topo, &transport, requester).unwrap();
        let scoped = super::analyze_from_transport_scoped(&topo, &transport, requester).unwrap();
        assert_eq!(by_hop.domains.len(), scoped.domains.len());
        for (a, b) in by_hop.domains.iter().zip(&scoped.domains) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.estimate, b.estimate, "{}", a.name);
        }
        assert_eq!(by_hop.links.len(), scoped.links.len());
        for (a, b) in by_hop.links.iter().zip(&scoped.links) {
            assert_eq!((a.up, a.down), (b.up, b.down));
            assert_eq!(a.report, b.report, "{}→{}", a.up, a.down);
        }
    }

    /// A HOP whose key rotates mid-stream stays fully analyzable: the
    /// old-epoch frames keep verifying at fetch, the new key signs at
    /// the bumped epoch, the retired key is refused, and the rebuilt
    /// output carries the newest authenticated epoch (never a secret).
    #[test]
    fn rotated_key_hop_still_verifies_and_carries_the_new_epoch() {
        use vpm_wire::{HopKey, KeyEpoch, ReceiptTransport};
        let (topo, run) = scenario(0.0);
        let transport = vpm_wire::InMemoryBus::new();
        let on_path = topo.domain_ids();
        for h in &run.hops {
            let key = h.hop_key();
            transport.register_key(h.hop, key).unwrap();
            transport
                .publish_batch(
                    h.domain,
                    &h.batch,
                    vpm_wire::Profile::Precise,
                    on_path.clone(),
                    &key,
                )
                .unwrap();
        }
        // Rotate HOP 4 and publish a second interval under the new key.
        let h4 = run.hop(vpm_packet::HopId(4)).unwrap();
        let rotated = HopKey::from_seed(0x5070_a7ed ^ h4.hop.0 as u64);
        assert_eq!(transport.rotate_key(h4.hop, rotated), Ok(KeyEpoch(1)));
        let mut next = vpm_core::processor::ReceiptBatch {
            hop: h4.hop,
            batch_seq: h4.batch.batch_seq + 1,
            samples: vec![],
            aggregates: vec![],
            auth_tag: 0,
        };
        next.auth_tag = next.compute_tag(rotated.tag_key());
        transport
            .publish_batch(
                h4.domain,
                &next,
                vpm_wire::Profile::Precise,
                on_path.clone(),
                &rotated,
            )
            .unwrap();
        // The retired key no longer signs at the current epoch.
        assert_eq!(
            transport.publish_batch(
                h4.domain,
                &next,
                vpm_wire::Profile::Precise,
                on_path.clone(),
                &h4.hop_key(),
            ),
            Err(vpm_wire::TransportError::BadMac { hop: h4.hop })
        );
        // Fetch re-verifies both epochs; the rebuilt output carries the
        // newest authenticated epoch and no secret.
        let published = transport.fetch(on_path[0], h4.hop).unwrap();
        assert_eq!(published.len(), 2);
        assert_eq!(published[0].epoch, KeyEpoch(0));
        assert_eq!(published[1].epoch, KeyEpoch(1));
        let rebuilt = super::hop_output_from_frames(&topo, h4.hop, h4.path, &published);
        assert_eq!(rebuilt.key_epoch, KeyEpoch(1));
        assert!(rebuilt.key.is_none());
        // And the collector's verdicts are unchanged by the rotation.
        let analysis = super::analyze_from_transport(&topo, &transport, on_path[0]).unwrap();
        assert!(analysis.all_consistent());
        let baseline = analyze_path(&topo, &run);
        for (a, b) in baseline.domains.iter().zip(&analysis.domains) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.estimate, b.estimate, "{}", a.name);
        }
    }

    #[test]
    fn blame_shift_liar_exposed_on_its_link() {
        let (topo, mut run) = scenario(0.2);
        let ingress = run.hop(vpm_packet::HopId(4)).unwrap().clone();
        apply_lie(
            &ingress,
            run.hop_mut(vpm_packet::HopId(5)).unwrap(),
            LieStrategy::BlameShiftLoss {
                claimed_delay: SimDuration::from_micros(200),
            },
        );
        let analysis = analyze_path(&topo, &run);
        // X now *looks* lossless from its own receipts…
        let x_loss = analysis.domain("X").unwrap().estimate.loss.rate().unwrap();
        assert!(x_loss < 0.01, "liar hides its loss: {x_loss}");
        // …but the X→N link is inconsistent, implicating X to N.
        let flagged = analysis.flagged_links();
        assert!(!flagged.is_empty(), "the lie must surface somewhere");
        assert!(flagged.iter().any(|l| {
            l.up == vpm_packet::HopId(5)
                && l.implicates
                    == (
                        topo.domain_by_name("X").unwrap().id,
                        topo.domain_by_name("N").unwrap().id,
                    )
        }));
        // No *other* link is flagged: the evidence localizes the lie.
        for l in &flagged {
            assert_eq!(l.up, vpm_packet::HopId(5), "only the X→N link: {:?}", l.up);
        }
    }

    #[test]
    fn colluding_cover_up_moves_blame_into_accomplice() {
        let (topo, mut run) = scenario(0.2);
        let ingress4 = run.hop(vpm_packet::HopId(4)).unwrap().clone();
        apply_lie(
            &ingress4,
            run.hop_mut(vpm_packet::HopId(5)).unwrap(),
            LieStrategy::BlameShiftLoss {
                claimed_delay: SimDuration::from_micros(200),
            },
        );
        let liar_egress = run.hop(vpm_packet::HopId(5)).unwrap().clone();
        cover_up(&liar_egress, run.hop_mut(vpm_packet::HopId(6)).unwrap());
        let analysis = analyze_path(&topo, &run);
        // The X→N link now *looks* consistent…
        let xn = analysis
            .links
            .iter()
            .find(|l| l.up == vpm_packet::HopId(5))
            .unwrap();
        assert!(xn.report.is_consistent(), "cover-up hides the X→N mismatch");
        // …but N is left holding X's loss: either N's own estimate shows
        // the loss (it reported its egress honestly) or the N→D link is
        // inconsistent. Here N's egress is honest, so the loss lands on N.
        let n_loss = analysis.domain("N").unwrap().estimate.loss.rate().unwrap();
        assert!(
            n_loss > 0.15,
            "the accomplice inherits the blame: N loss {n_loss}"
        );
    }

    #[test]
    fn sugarcoat_delay_breaks_link_rule() {
        let (topo, mut run) = scenario(0.0);
        let ingress = run.hop(vpm_packet::HopId(4)).unwrap().clone();
        apply_lie(
            &ingress,
            run.hop_mut(vpm_packet::HopId(5)).unwrap(),
            LieStrategy::SugarcoatDelay {
                shave: SimDuration::from_millis(5), // hide 5 ms of delay
            },
        );
        let analysis = analyze_path(&topo, &run);
        // Claiming earlier egress times makes the X→N link transit look
        // LONGER than MaxDiff: rule 2 fires.
        let flagged = analysis.flagged_links();
        assert!(flagged.iter().any(|l| l.up == vpm_packet::HopId(5)));
    }
}
