//! The end-to-end path runner.
//!
//! Pushes a trace along a [`Topology`]: every HOP observes the stream
//! through its (possibly imperfect) clock and feeds its VPM pipeline;
//! every transit domain and inter-domain link transforms the stream
//! (delay / loss / reordering) on the way. The runner retains ground
//! truth (true per-domain delays and losses) so experiments can score
//! the receipt-derived estimates against reality.
//!
//! Receipts do not shortcut from processor to analysis: every batch is
//! encoded into a v1 wire frame, published through a
//! [`ReceiptTransport`], then fetched and decoded to rebuild the
//! [`HopOutput`]s — so the whole test surface built on `run_path`
//! (including the 216-cell scenario matrix) exercises the codec's
//! `encode → decode` round trip and proves it lossless.

use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};
use vpm_core::processor::ReceiptBatch;
use vpm_core::receipt::{AggReceipt, PathId, SampleRecord};
use vpm_core::{HopConfig, HopPipeline, Ingest};
use vpm_hash::{Digest, HopKey, KeyEpoch, Threshold};
use vpm_netsim::channel::{apply, arrivals, ChannelConfig};
use vpm_netsim::clock::HopClock;
use vpm_packet::{DomainId, HopId, SimDuration, SimTime};
use vpm_trace::TracePacket;
use vpm_wire::{Profile, ReceiptTransport, ShardedBus, TransportError, WaitOutcome, WireEncoder};

use crate::topology::{DomainRole, Topology};

/// Shard count of the transport `run_path` creates for itself. Small
/// because a Figure-1 run publishes one frame per HOP; many-path
/// workloads pass their own wider [`ShardedBus`] to
/// [`run_path_with_transport`].
const RUN_TRANSPORT_SHARDS: usize = 4;

/// Clock quality at the HOPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockMode {
    /// Perfect clocks (intra-domain sync is a domain's own interest).
    Ideal,
    /// NTP-grade clocks (±0.5 ms offset, drift, read jitter).
    NtpGrade,
}

/// Per-HOP tuning overrides.
#[derive(Debug, Clone, Copy)]
pub struct HopTuning {
    /// Delay-sampling rate `σ`-rate.
    pub sampling_rate: f64,
    /// Expected aggregate size in packets (sets `δ`).
    pub aggregate_size: u64,
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Default sampling rate for HOPs without overrides.
    pub sampling_rate: f64,
    /// Default aggregate size for HOPs without overrides.
    pub aggregate_size: u64,
    /// System-wide marker rate `µ`.
    pub marker_rate: f64,
    /// Safety threshold `J`.
    pub j_window: SimDuration,
    /// Clock quality.
    pub clocks: ClockMode,
    /// Per-HOP overrides.
    pub overrides: HashMap<HopId, HopTuning>,
    /// If set, this transit domain drops every marker packet it carries
    /// (the §5.3 attack).
    pub marker_dropper: Option<DomainId>,
    /// Seed for clock randomness.
    pub seed: u64,
    /// Longest the runner blocks waiting for its own published frames
    /// to come back through the transport before giving up with
    /// [`RunError::DrainTimeout`]. On a private bus this never
    /// triggers; on a shared or remote transport it bounds the damage
    /// a publisher that died mid-publish can do.
    pub drain_timeout: Duration,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            sampling_rate: 0.01,
            aggregate_size: 1000,
            marker_rate: vpm_core::DEFAULT_MARKER_RATE,
            j_window: SimDuration::from_millis(10),
            clocks: ClockMode::Ideal,
            overrides: HashMap::new(),
            marker_dropper: None,
            seed: 0,
            drain_timeout: Duration::from_secs(30),
        }
    }
}

/// A path run failed at the dissemination layer. (The simulation
/// itself is deterministic and total; only the receipt plane — a
/// shared or remote transport — can fail a run.)
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The runner's published frames did not all come back within
    /// [`RunConfig::drain_timeout`] — the bounded replacement for the
    /// old spin-forever drain. The classic cause: a concurrent
    /// publisher claimed a global sequence number and died before
    /// inserting, stalling the stream's contiguous prefix for good.
    DrainTimeout {
        /// Batches that did arrive before the deadline.
        collected: usize,
        /// Batches the run published and expected back.
        expected: usize,
        /// How long the drain waited.
        waited: Duration,
    },
    /// The transport refused or failed an operation.
    Transport(TransportError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::DrainTimeout {
                collected,
                expected,
                waited,
            } => write!(
                f,
                "receipt drain timed out after {waited:?} with {collected}/{expected} \
                 batches back — a publisher died mid-publish, or the transport stalled"
            ),
            RunError::Transport(e) => write!(f, "receipt transport failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<TransportError> for RunError {
    fn from(e: TransportError) -> Self {
        RunError::Transport(e)
    }
}

/// Everything one HOP produced during a run.
#[derive(Debug, Clone)]
pub struct HopOutput {
    /// The HOP.
    pub hop: HopId,
    /// Its domain.
    pub domain: DomainId,
    /// The `PathID` its receipts carry.
    pub path: PathId,
    /// The signed receipt batch.
    pub batch: ReceiptBatch,
    /// Flattened sample records (observation order).
    pub samples: Vec<SampleRecord>,
    /// Aggregate receipts (stream order).
    pub aggregates: Vec<AggReceipt>,
    /// Packets this HOP observed.
    pub observed: usize,
    /// The HOP's signing key. `None` when the output was rebuilt by a
    /// pure receipt collector, which never learns HOP secrets —
    /// authenticity was enforced by the transport's MAC checks.
    pub key: Option<HopKey>,
    /// The key epoch the HOP's frames were published (and verified)
    /// under.
    pub key_epoch: KeyEpoch,
}

impl HopOutput {
    /// The full signing key; panics on collector-rebuilt outputs,
    /// which don't carry secrets.
    #[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
    pub fn hop_key(&self) -> HopKey {
        self.key.expect("output carries its signing key") // vpm-lint: allow(R1, the builder sets the key before any output is produced)
    }

    /// The legacy u64 tag key (for `ReceiptBatch::verify_tag`); panics
    /// on collector-rebuilt outputs.
    pub fn tag_key(&self) -> u64 {
        self.hop_key().tag_key()
    }
}

/// Ground truth for one transit domain.
#[derive(Debug, Clone)]
pub struct DomainTruth {
    /// The domain.
    pub domain: DomainId,
    /// Name for reporting.
    pub name: String,
    /// Packets entering the domain.
    pub sent: u64,
    /// Packets leaving the domain.
    pub delivered: u64,
    /// True per-packet transit delays (ms) of delivered packets.
    pub delays_ms: Vec<f64>,
}

/// The result of a path run.
#[derive(Debug, Clone)]
pub struct PathRun {
    /// Per-HOP outputs, in path order.
    pub hops: Vec<HopOutput>,
    /// Ground truth per transit domain, in path order.
    pub truths: Vec<DomainTruth>,
    /// Packets injected at the path head.
    pub trace_len: usize,
}

impl PathRun {
    /// Output of a HOP.
    pub fn hop(&self, hop: HopId) -> Option<&HopOutput> {
        self.hops.iter().find(|h| h.hop == hop)
    }

    /// Mutable output of a HOP (adversaries doctor receipts here).
    pub fn hop_mut(&mut self, hop: HopId) -> Option<&mut HopOutput> {
        self.hops.iter_mut().find(|h| h.hop == hop)
    }

    /// Ground truth of a transit domain by name.
    pub fn truth(&self, name: &str) -> Option<&DomainTruth> {
        self.truths.iter().find(|t| t.name == name)
    }
}

/// Live packet stream: `(trace index, current time)` in observation
/// order.
type Stream = Vec<(usize, SimTime)>;

fn transform(stream: &Stream, channel: &ChannelConfig) -> (Stream, Vec<f64>) {
    let times: Vec<SimTime> = stream.iter().map(|&(_, t)| t).collect();
    let out = apply(&times, channel);
    let deliveries = arrivals(&out);
    let mut delays = Vec::with_capacity(deliveries.len());
    for d in &deliveries {
        delays.push(d.ts_out.signed_delta(times[d.idx]) as f64 / 1e6); // vpm-lint: allow(R1, d.idx indexes the trace the deliveries came from)
    }
    let next: Stream = deliveries
        .iter()
        .map(|d| (stream[d.idx].0, d.ts_out)) // vpm-lint: allow(R1, d.idx indexes the trace the deliveries came from)
        .collect();
    (next, delays)
}

fn drop_markers(stream: &Stream, digests: &[Digest], marker: Threshold) -> Stream {
    stream
        .iter()
        .filter(|&&(idx, _)| !marker.passes(digests[idx].0)) // vpm-lint: allow(R1, idx indexes the trace the samples came from)
        .copied()
        .collect()
}

/// Run a trace through a topology, disseminating receipts over a
/// private [`ShardedBus`] (see [`run_path_with_transport`] to supply a
/// transport and observe the published frames).
#[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
pub fn run_path(trace: &[TracePacket], topology: &Topology, cfg: &RunConfig) -> PathRun {
    run_path_with_transport(trace, topology, cfg, &ShardedBus::new(RUN_TRANSPORT_SHARDS))
        .expect("a private in-process bus cannot fail or stall") // vpm-lint: allow(R1, a private in-process bus cannot fail or stall)
}

/// Run a trace through a topology, publishing every HOP's receipt
/// batch through `transport` as an encoded precise-profile wire frame
/// and rebuilding the per-HOP outputs from the fetched, decoded
/// frames.
///
/// The runner opens its own subscription before publishing and drains
/// it afterwards, so it collects exactly this run's frames even on a
/// shared transport. Concurrent runs on one transport are supported
/// as long as their HOP and domain id sets are disjoint (e.g. paths
/// built with `topology::Figure1::numbered`): each run's collector
/// only sees its own frames, so every run's output is byte-identical
/// to a run on a private bus (test-pinned below). Another run's
/// publisher sitting between claiming a sequence number and inserting
/// stalls the stream's contiguous prefix; the drain *blocks* on
/// [`ReceiptTransport::wait`] (no spinning) until the in-flight entry
/// lands, and gives up with [`RunError::DrainTimeout`] after
/// [`RunConfig::drain_timeout`] if it never does. The run's
/// subscription is dropped before returning, success or not.
#[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
pub fn run_path_with_transport(
    trace: &[TracePacket],
    topology: &Topology,
    cfg: &RunConfig,
    transport: &dyn ReceiptTransport,
) -> Result<PathRun, RunError> {
    // Slice-digest the whole trace through the word-oriented lookup3
    // fast path (identical digests to per-packet `Packet::digest`).
    let digests: Vec<Digest> = vpm_packet::digest_packets(
        trace.iter().map(|tp| &tp.packet),
        vpm_hash::DEFAULT_DIGEST_SEED,
    );
    let marker = Threshold::from_rate(cfg.marker_rate);

    // Build pipelines and clocks. Every HOP's `PathID` comes from
    // `Topology::hop_path_ids`, the same table path-scoped verification
    // uses — runner and verifier cannot drift apart.
    let hop_order = topology.hops();
    let mut pipelines: HashMap<HopId, (HopPipeline, HopClock, PathId)> = HashMap::new();
    for (hop, path) in topology.hop_path_ids() {
        let dom = topology.domain_of(hop).expect("hop has a domain"); // vpm-lint: allow(R1, every hop in a built topology belongs to a domain)
        let tuning = cfg.overrides.get(&hop).copied().unwrap_or(HopTuning {
            sampling_rate: cfg.sampling_rate,
            aggregate_size: cfg.aggregate_size,
        });
        let hop_cfg = HopConfig::new(hop, dom.id)
            .with_sampling_rate(tuning.sampling_rate)
            .with_aggregate_size(tuning.aggregate_size)
            .with_marker_rate(cfg.marker_rate)
            .with_j_window(cfg.j_window)
            .with_max_diff(path.max_diff);
        let mut pipe = HopPipeline::new(hop_cfg);
        pipe.register_path(path);
        let clock = match cfg.clocks {
            ClockMode::Ideal => HopClock::ideal(),
            ClockMode::NtpGrade => HopClock::ntp_grade(cfg.seed ^ (hop.0 as u64) << 8),
        };
        pipelines.insert(hop, (pipe, clock, path));
    }

    // Batched data plane: read the clock per packet, then push
    // ring-sized, pre-classified, pre-digested batches through the
    // collector's amortized hot path (byte-identical to per-packet
    // observation, measurably faster, O(batch) transient memory).
    const OBSERVE_BATCH: usize = 4096;
    let mut batch: Vec<(usize, Digest, SimTime)> = Vec::with_capacity(OBSERVE_BATCH);
    let mut observe = |pipelines: &mut HashMap<HopId, (HopPipeline, HopClock, PathId)>,
                       hop: HopId,
                       stream: &Stream| {
        let (pipe, clock, _) = pipelines.get_mut(&hop).expect("registered hop"); // vpm-lint: allow(R1, every on-path hop was registered in the loop above)
        for part in stream.chunks(OBSERVE_BATCH) {
            batch.clear();
            batch.extend(
                part.iter()
                    .map(|&(idx, t)| (0, digests[idx], clock.read(t))), // vpm-lint: allow(R1, idx indexes the trace the samples came from)
            );
            let report = pipe.collector.ingest(&batch);
            debug_assert!(report.is_clean(), "path index 0 is always registered");
        }
    };

    // Walk the path.
    let mut stream: Stream = trace.iter().enumerate().map(|(i, tp)| (i, tp.ts)).collect();
    let mut truths = Vec::new();
    let mut observed_count: HashMap<HopId, usize> = HashMap::new();

    for (d_idx, dom) in topology.domains.iter().enumerate() {
        if let Some(ingress) = dom.ingress {
            observed_count.insert(ingress, stream.len());
            observe(&mut pipelines, ingress, &stream);
        }
        if dom.role == DomainRole::Transit {
            let sent = stream.len() as u64;
            let (mut next, delays) = transform(&stream, &dom.transit);
            if cfg.marker_dropper == Some(dom.id) {
                next = drop_markers(&next, &digests, marker);
            }
            truths.push(DomainTruth {
                domain: dom.id,
                name: dom.name.clone(),
                sent,
                delivered: next.len() as u64,
                delays_ms: if cfg.marker_dropper == Some(dom.id) {
                    Vec::new() // delays no longer aligned after marker drop
                } else {
                    delays
                },
            });
            stream = next;
        }
        if let Some(egress) = dom.egress {
            observed_count.insert(egress, stream.len());
            observe(&mut pipelines, egress, &stream);
        }
        // Inter-domain link to the next domain.
        if d_idx < topology.links.len() {
            let (next, _) = transform(&stream, &topology.links[d_idx].channel); // vpm-lint: allow(R1, d_idx ranges over topology.links)
            stream = next;
        }
    }

    // Final reports: encode every batch into a precise-profile wire
    // frame, publish it through the transport (which re-decodes and
    // tag-verifies the actual bytes), then drain this run's
    // subscription and rebuild the outputs from the *decoded* batches —
    // the codec round trip is on the pipeline's critical path.
    let on_path = topology.domain_ids();
    let collector_domain = *on_path.first().expect("topology has domains"); // vpm-lint: allow(R1, built topologies always have at least one domain)
    let sub = transport.subscribe(collector_domain);
    let encoder = WireEncoder::new(Profile::Precise);
    let mut hop_meta: HashMap<HopId, (DomainId, PathId, HopKey, KeyEpoch)> = HashMap::new();
    let mut decoded: HashMap<HopId, ReceiptBatch> = HashMap::new();
    // Publish + drain share the subscription; run them in a closure so
    // the subscription is unconditionally dropped afterwards — a
    // failed run must not leak a cursor on a shared transport.
    let published_and_drained = (|| -> Result<(), RunError> {
        for &hop in &hop_order {
            let (mut pipe, _, path) = pipelines.remove(&hop).expect("still present"); // vpm-lint: allow(R1, hop_order and pipelines are populated from the same path)
            let dom = topology.domain_of(hop).expect("hop has a domain").id; // vpm-lint: allow(R1, every hop in a built topology belongs to a domain)
            let key = pipe.processor.hop_key();
            let batch = pipe.final_report();
            let epoch = transport.register_key(hop, key)?;
            let frame = encoder
                .encode_signed(&batch, &key, epoch)
                .expect("receipt batches encode"); // vpm-lint: allow(R1, encoding a batch this code just built cannot exceed wire limits)
            transport.publish(dom, frame, on_path.clone())?;
            hop_meta.insert(hop, (dom, path, key, epoch));
        }

        // Drain the run's subscription until every published batch is
        // back. One poll would suffice on a private transport, but on
        // a shared bus a *concurrent* publisher (another fleet path)
        // can sit between claiming a sequence number and inserting,
        // which stalls the stream's contiguous prefix — so block on
        // `wait` (zero shard scans while idle) until the in-flight
        // entry lands, bounded by the drain deadline: a publisher that
        // claimed a number and died would otherwise hang this loop
        // forever. Frames from other paths are invisible to this
        // collector (disjoint `on_path` sets) and skipped by the poll.
        let deadline = Instant::now() + cfg.drain_timeout; // vpm-lint: allow(R2, bounds a blocking-wait timeout; never feeds a verdict)
        loop {
            for p in transport.poll(sub)? {
                if hop_meta.contains_key(&p.hop) {
                    decoded.entry(p.hop).or_insert_with(|| p.batch.clone());
                }
            }
            if decoded.len() >= hop_order.len() {
                return Ok(());
            }
            let now = Instant::now(); // vpm-lint: allow(R2, bounds a blocking-wait timeout; never feeds a verdict)
            let timed_out =
                now >= deadline || transport.wait(sub, deadline - now)? == WaitOutcome::TimedOut;
            if timed_out {
                return Err(RunError::DrainTimeout {
                    collected: decoded.len(),
                    expected: hop_order.len(),
                    waited: cfg.drain_timeout,
                });
            }
        }
    })();
    let _ = transport.unsubscribe(sub);
    published_and_drained?;

    let mut hops = Vec::new();
    for &hop in &hop_order {
        let (dom, path, key, epoch) = hop_meta.remove(&hop).expect("published above"); // vpm-lint: allow(R1, hop_meta was populated for every published hop above)
        let batch = decoded.remove(&hop).expect("published frame came back"); // vpm-lint: allow(R1, the drain loop returns only once every hop's frame arrived)
        let samples: Vec<SampleRecord> = batch
            .samples
            .iter()
            .flat_map(|r| r.samples.iter().copied())
            .collect();
        let aggregates = batch.aggregates.clone();
        hops.push(HopOutput {
            hop,
            domain: dom,
            path,
            batch,
            samples,
            aggregates,
            observed: observed_count.get(&hop).copied().unwrap_or(0),
            key: Some(key),
            key_epoch: epoch,
        });
    }

    Ok(PathRun {
        hops,
        truths,
        trace_len: trace.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Figure1;
    use vpm_netsim::channel::DelayModel;
    use vpm_netsim::reorder::ReorderModel;
    use vpm_trace::{TraceConfig, TraceGenerator};

    fn trace(n_ms: u64, seed: u64) -> Vec<TracePacket> {
        let cfg = TraceConfig {
            target_pps: 50_000.0,
            duration: SimDuration::from_millis(n_ms),
            ..TraceConfig::paper_default(1, seed)
        };
        TraceGenerator::new(cfg).generate()
    }

    fn quick_cfg() -> RunConfig {
        RunConfig {
            sampling_rate: 0.05,
            aggregate_size: 500,
            marker_rate: 0.01,
            j_window: SimDuration::from_millis(2),
            ..RunConfig::default()
        }
    }

    #[test]
    fn ideal_run_all_hops_see_everything() {
        let t = trace(200, 1);
        let run = run_path(&t, &Figure1::ideal().build(), &quick_cfg());
        assert_eq!(run.hops.len(), 8);
        for h in &run.hops {
            assert_eq!(h.observed, t.len(), "{} observed", h.hop);
            assert!(!h.samples.is_empty());
            assert!(!h.aggregates.is_empty());
            assert!(h.batch.verify_tag(h.tag_key()));
        }
        for truth in &run.truths {
            assert_eq!(truth.sent, truth.delivered, "{}", truth.name);
        }
    }

    /// The receipts in a `PathRun` went through encode → transport →
    /// decode; losslessness means the decoded batches still verify
    /// under their HOPs' keys and re-encode to the very frames the
    /// transport holds.
    #[test]
    fn run_receipts_round_trip_the_wire_codec_losslessly() {
        let t = trace(150, 21);
        let topo = Figure1::ideal().build();
        let transport = vpm_wire::InMemoryBus::new();
        let run = run_path_with_transport(&t, &topo, &quick_cfg(), &transport).unwrap();
        assert_eq!(transport.len(), run.hops.len());
        for h in &run.hops {
            assert!(h.batch.verify_tag(h.tag_key()), "{}", h.hop);
            let published = transport.fetch(h.domain, h.hop).unwrap();
            assert_eq!(published.len(), 1);
            assert_eq!(published[0].epoch, h.key_epoch);
            let re = vpm_wire::WireEncoder::precise()
                .encode_signed(&h.batch, &h.hop_key(), h.key_epoch)
                .unwrap();
            assert_eq!(
                re, published[0].frame,
                "decoded batch must re-sign-and-encode to the published bytes"
            );
        }
    }

    /// The transport implementation is invisible to the result: the
    /// same trace through the in-memory bus and through sharded buses
    /// of every acceptance shard count yields identical outputs.
    #[test]
    fn path_run_is_identical_across_transports_and_shard_counts() {
        let t = trace(150, 22);
        let topo = Figure1::ideal().build();
        let cfg = quick_cfg();
        let baseline =
            run_path_with_transport(&t, &topo, &cfg, &vpm_wire::InMemoryBus::new()).unwrap();
        for shards in [1, 4, 16] {
            let run = run_path_with_transport(&t, &topo, &cfg, &vpm_wire::ShardedBus::new(shards))
                .unwrap();
            assert_eq!(run.trace_len, baseline.trace_len);
            for (a, b) in baseline.hops.iter().zip(&run.hops) {
                assert_eq!(a.hop, b.hop, "{shards} shards");
                assert_eq!(a.batch, b.batch, "{shards} shards");
                assert_eq!(a.samples, b.samples, "{shards} shards");
                assert_eq!(a.aggregates, b.aggregates, "{shards} shards");
            }
        }
    }

    /// Concurrent runs on one shared bus (disjoint HOP/domain id
    /// spaces) each produce byte-identical output to a private-bus
    /// run — the drain loop rides out other runs' in-flight publishes
    /// stalling the subscription's contiguous prefix.
    #[test]
    fn concurrent_runs_on_a_shared_transport_match_private_runs() {
        use crate::topology::Figure1;
        let instances = 4usize;
        let traces: Vec<Vec<TracePacket>> =
            (0..instances).map(|i| trace(60, 40 + i as u64)).collect();
        let topos: Vec<_> = (0..instances)
            .map(|i| Figure1::numbered(i).build())
            .collect();
        let cfg = quick_cfg();
        let private: Vec<PathRun> = (0..instances)
            .map(|i| run_path(&traces[i], &topos[i], &cfg))
            .collect();
        let shared = vpm_wire::ShardedBus::new(8);
        let mut runs: Vec<Option<PathRun>> = (0..instances).map(|_| None).collect();
        std::thread::scope(|s| {
            for (i, slot) in runs.iter_mut().enumerate() {
                let (traces, topos, cfg, shared) = (&traces, &topos, &cfg, &shared);
                s.spawn(move || {
                    *slot =
                        Some(run_path_with_transport(&traces[i], &topos[i], cfg, shared).unwrap());
                });
            }
        });
        for (i, (a, b)) in private.iter().zip(&runs).enumerate() {
            let b = b.as_ref().expect("run completed");
            assert_eq!(a.trace_len, b.trace_len, "instance {i}");
            for (ha, hb) in a.hops.iter().zip(&b.hops) {
                assert_eq!(ha.hop, hb.hop, "instance {i}");
                assert_eq!(ha.batch, hb.batch, "instance {i}");
                assert_eq!(ha.samples, hb.samples, "instance {i}");
                assert_eq!(ha.aggregates, hb.aggregates, "instance {i}");
            }
        }
    }

    /// The PR's headline bugfix: a publisher that claims a global
    /// sequence number and dies before inserting used to hang the
    /// drain loop forever (unbounded `yield_now` spin). Now the drain
    /// blocks on `wait` and surfaces a typed [`RunError::DrainTimeout`]
    /// — and the failed run still releases its subscription.
    #[test]
    fn a_publisher_that_claims_a_seq_and_dies_times_out_instead_of_hanging() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        use vpm_wire::{Published, SubscriptionId, TransportError, WaitOutcome, WireFrame};

        /// Delegates to a real [`ShardedBus`], but the first publish is
        /// preceded by a sequence-number claim that never lands — the
        /// exact hole a publisher dying between `fetch_add` and its
        /// shard insert leaves behind.
        struct DyingPublisher {
            inner: ShardedBus,
            killed: AtomicBool,
        }

        impl ReceiptTransport for DyingPublisher {
            fn register_key(&self, hop: HopId, key: HopKey) -> Result<KeyEpoch, TransportError> {
                self.inner.register_key(hop, key)
            }
            fn rotate_key(&self, hop: HopId, new_key: HopKey) -> Result<KeyEpoch, TransportError> {
                self.inner.rotate_key(hop, new_key)
            }
            fn key_epoch(&self, hop: HopId) -> Option<KeyEpoch> {
                self.inner.key_epoch(hop)
            }
            fn publish(
                &self,
                domain: DomainId,
                frame: WireFrame,
                on_path: Vec<DomainId>,
            ) -> Result<u64, TransportError> {
                if !self.killed.swap(true, Ordering::Relaxed) {
                    self.inner.claim_seq_and_die();
                }
                self.inner.publish(domain, frame, on_path)
            }
            fn fetch(
                &self,
                requester: DomainId,
                hop: HopId,
            ) -> Result<Vec<Arc<Published>>, TransportError> {
                self.inner.fetch(requester, hop)
            }
            fn fetch_path(
                &self,
                requester: DomainId,
                path: &PathId,
            ) -> Result<Vec<Arc<Published>>, TransportError> {
                self.inner.fetch_path(requester, path)
            }
            fn subscribe(&self, requester: DomainId) -> SubscriptionId {
                self.inner.subscribe(requester)
            }
            fn subscribe_path(&self, requester: DomainId, path: &PathId) -> SubscriptionId {
                self.inner.subscribe_path(requester, path)
            }
            fn subscribe_from(
                &self,
                requester: DomainId,
                from_seq: u64,
            ) -> Result<SubscriptionId, TransportError> {
                self.inner.subscribe_from(requester, from_seq)
            }
            fn poll(&self, sub: SubscriptionId) -> Result<Vec<Arc<Published>>, TransportError> {
                self.inner.poll(sub)
            }
            fn wait(
                &self,
                sub: SubscriptionId,
                timeout: std::time::Duration,
            ) -> Result<WaitOutcome, TransportError> {
                self.inner.wait(sub, timeout)
            }
            fn unsubscribe(&self, sub: SubscriptionId) -> Result<(), TransportError> {
                self.inner.unsubscribe(sub)
            }
            fn subscriptions(&self) -> usize {
                self.inner.subscriptions()
            }
            fn len(&self) -> usize {
                self.inner.len()
            }
        }

        let t = trace(60, 33);
        let topo = Figure1::ideal().build();
        let mut cfg = quick_cfg();
        cfg.drain_timeout = Duration::from_millis(200);
        let transport = DyingPublisher {
            inner: ShardedBus::new(4),
            killed: AtomicBool::new(false),
        };
        let started = Instant::now();
        let err = run_path_with_transport(&t, &topo, &cfg, &transport).unwrap_err();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "the drain must be bounded, not a hang"
        );
        match err {
            RunError::DrainTimeout {
                collected,
                expected,
                waited,
            } => {
                // The hole precedes every real publish, so the global
                // cursor releases nothing.
                assert_eq!(collected, 0);
                assert_eq!(expected, topo.hops().len());
                assert_eq!(waited, Duration::from_millis(200));
            }
            other => panic!("expected DrainTimeout, got {other:?}"),
        }
        assert_eq!(
            transport.inner.subscriptions(),
            0,
            "a failed run must not leak its subscription"
        );
    }

    /// A transport that refuses the very first operation surfaces as a
    /// typed [`RunError::Transport`] — the run does not panic, retry,
    /// or misreport the failure as a drain timeout.
    #[test]
    fn a_refusing_transport_is_a_typed_run_error() {
        use std::sync::Arc;
        use vpm_wire::{Published, SubscriptionId, TransportError, WaitOutcome, WireFrame};

        /// Refuses every fallible operation with a connection error —
        /// the shape a dead `vpm serve` endpoint presents.
        struct RefusingTransport;

        impl ReceiptTransport for RefusingTransport {
            fn register_key(&self, _: HopId, _: HopKey) -> Result<KeyEpoch, TransportError> {
                Err(TransportError::Connection("refused by test".into()))
            }
            fn rotate_key(&self, _: HopId, _: HopKey) -> Result<KeyEpoch, TransportError> {
                Err(TransportError::Connection("refused by test".into()))
            }
            fn key_epoch(&self, _: HopId) -> Option<KeyEpoch> {
                None
            }
            fn publish(
                &self,
                _: DomainId,
                _: WireFrame,
                _: Vec<DomainId>,
            ) -> Result<u64, TransportError> {
                Err(TransportError::Connection("refused by test".into()))
            }
            fn fetch(&self, _: DomainId, _: HopId) -> Result<Vec<Arc<Published>>, TransportError> {
                Err(TransportError::Connection("refused by test".into()))
            }
            fn fetch_path(
                &self,
                _: DomainId,
                _: &PathId,
            ) -> Result<Vec<Arc<Published>>, TransportError> {
                Err(TransportError::Connection("refused by test".into()))
            }
            fn subscribe(&self, _: DomainId) -> SubscriptionId {
                SubscriptionId(0)
            }
            fn subscribe_path(&self, _: DomainId, _: &PathId) -> SubscriptionId {
                SubscriptionId(0)
            }
            fn subscribe_from(
                &self,
                _: DomainId,
                _: u64,
            ) -> Result<SubscriptionId, TransportError> {
                Err(TransportError::Connection("refused by test".into()))
            }
            fn poll(&self, _: SubscriptionId) -> Result<Vec<Arc<Published>>, TransportError> {
                Err(TransportError::Connection("refused by test".into()))
            }
            fn wait(
                &self,
                _: SubscriptionId,
                _: std::time::Duration,
            ) -> Result<WaitOutcome, TransportError> {
                Err(TransportError::Connection("refused by test".into()))
            }
            fn unsubscribe(&self, _: SubscriptionId) -> Result<(), TransportError> {
                Ok(())
            }
            fn subscriptions(&self) -> usize {
                0
            }
            fn len(&self) -> usize {
                0
            }
        }

        let t = trace(20, 11);
        let topo = Figure1::ideal().build();
        let err = run_path_with_transport(&t, &topo, &quick_cfg(), &RefusingTransport).unwrap_err();
        match err {
            RunError::Transport(TransportError::Connection(msg)) => {
                assert_eq!(msg, "refused by test");
            }
            other => panic!("expected Transport(Connection), got {other:?}"),
        }
    }

    #[test]
    fn lossy_domain_shrinks_stream() {
        let t = trace(200, 2);
        let mut fig = Figure1::ideal();
        fig.x_transit = ChannelConfig {
            delay: DelayModel::Constant(SimDuration::from_millis(1)),
            loss: Some((0.2, 5.0)),
            reorder: ReorderModel::none(),
            seed: 7,
        };
        let run = run_path(&t, &fig.build(), &quick_cfg());
        let x = run.truth("X").unwrap();
        let loss = 1.0 - x.delivered as f64 / x.sent as f64;
        assert!((loss - 0.2).abs() < 0.05, "loss {loss}");
        // Downstream HOPs observe fewer packets.
        assert!(run.hop(HopId(5)).unwrap().observed < run.hop(HopId(4)).unwrap().observed);
        assert_eq!(
            run.hop(HopId(5)).unwrap().observed,
            run.hop(HopId(8)).unwrap().observed
        );
    }

    #[test]
    fn estimates_recover_truth_on_ideal_path() {
        let t = trace(300, 3);
        let run = run_path(&t, &Figure1::ideal().build(), &quick_cfg());
        let v = vpm_core::verify::Verifier::default();
        let h4 = run.hop(HopId(4)).unwrap();
        let h5 = run.hop(HopId(5)).unwrap();
        let est = v.estimate_domain(&h4.samples, &h4.aggregates, &h5.samples, &h5.aggregates);
        assert_eq!(est.loss.rate().unwrap_or(1.0), 0.0, "no loss in X");
        let delay = est.delay.expect("matched samples exist");
        for q in &delay.quantiles {
            assert!((q.value - 0.1).abs() < 0.01, "transit 100µs, got {q:?}");
        }
    }

    #[test]
    fn marker_dropper_desyncs_sampling() {
        let t = trace(200, 4);
        let topo = Figure1::ideal().build();
        let clean = run_path(&t, &topo, &quick_cfg());
        let mut cfg = quick_cfg();
        cfg.marker_dropper = Some(topo.domain_by_name("X").unwrap().id);
        let attacked = run_path(&t, &topo, &cfg);
        // Downstream of X (HOP 6), the sample yield matched against HOP 4
        // collapses compared to the clean run.
        let matched = |run: &PathRun| {
            vpm_core::verify::match_samples(
                &run.hop(HopId(4)).unwrap().samples,
                &run.hop(HopId(6)).unwrap().samples,
            )
            .len()
        };
        let m_clean = matched(&clean);
        let m_attacked = matched(&attacked);
        assert!(
            (m_attacked as f64) < 0.7 * m_clean as f64,
            "clean {m_clean} vs attacked {m_attacked}"
        );
        // But markers are *expected* receipts: HOP 4 sampled markers that
        // HOP 6 never reports — standing evidence against X (§5.3).
        let h4 = &attacked.hop(HopId(4)).unwrap().samples;
        let h6_ids: std::collections::HashSet<_> = attacked
            .hop(HopId(6))
            .unwrap()
            .samples
            .iter()
            .map(|r| r.pkt_id)
            .collect();
        let marker = Threshold::from_rate(0.01);
        let vanished_markers = h4
            .iter()
            .filter(|r| marker.passes(r.pkt_id.0) && !h6_ids.contains(&r.pkt_id))
            .count();
        assert!(vanished_markers > 0);
    }

    #[test]
    fn ntp_clocks_still_yield_usable_delays() {
        let t = trace(200, 5);
        let mut cfg = quick_cfg();
        cfg.clocks = ClockMode::NtpGrade;
        let run = run_path(&t, &Figure1::ideal().build(), &cfg);
        let v = vpm_core::verify::Verifier::default();
        let h4 = run.hop(HopId(4)).unwrap();
        let h5 = run.hop(HopId(5)).unwrap();
        let matched = vpm_core::verify::match_samples(&h4.samples, &h5.samples);
        let est = v.estimate_delay(&matched).unwrap();
        // Transit is 100µs; NTP-grade offsets can push readings around by
        // ~±1 ms but not more.
        for q in &est.quantiles {
            assert!(q.value.abs() < 1.5, "{q:?}");
        }
    }
}
