//! The §3 baselines — "Why a New Protocol", quantified.
//!
//! The paper motivates VPM by constructing three straw designs from
//! prior work and showing each fails one of the three requirements:
//!
//! | scheme | computability | verifiability | tunability |
//! |--------|---------------|---------------|------------|
//! | Strawman (per-packet receipts, Packet Obituaries ++) | ✓ exact | ✓ | ✗ cost is per-packet |
//! | Trajectory Sampling ++ (self-keyed hash sampling) | ✓ (probabilistic) | ✗ sample bias, collusion-proof-less | ✓ |
//! | Difference Aggregator ++ (counts + timestamp sums) | ✗ no quantiles; breaks under reordering | ✓-ish | ✓ |
//! | **VPM** | ✓ | ✓ | ✓ |
//!
//! This module implements all three baselines *for real* on the same
//! workload as VPM, so the table above becomes measured numbers
//! (`examples/baseline_comparison.rs`).

// vpm-lint: allow-file(R1, baseline kernels index fixed-shape parallel arrays sized by the same trace; every subscript is bounded by construction)

use serde::{Deserialize, Serialize};
use vpm_core::aggregation::Aggregator;
use vpm_core::sampling::DelaySampler;
use vpm_core::verify::match_samples;
use vpm_hash::{Digest, Threshold};
use vpm_netsim::gilbert::GilbertElliott;
use vpm_packet::{SimDuration, SimTime};
use vpm_stats::accuracy::{quantile_error, DEFAULT_QUANTILES};
use vpm_trace::{TraceConfig, TraceGenerator};

/// A shared workload all schemes are evaluated on.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Packet digests in path order.
    pub digests: Vec<Digest>,
    /// Ingress observation times.
    pub t_in: Vec<SimTime>,
    /// True transit delay of each packet in ms (before loss).
    pub delays_ms: Vec<f64>,
    /// Survival mask (Gilbert-Elliott loss inside the domain).
    pub survives: Vec<bool>,
    /// The injected loss rate.
    pub loss_rate: f64,
}

impl Workload {
    /// Build the standard comparison workload: 50 kpps for `ms`
    /// milliseconds, bimodal congestion delay (0.5 ms fast / spikes up
    /// to ~12 ms), 10% bursty loss.
    pub fn standard(ms: u64, seed: u64) -> Self {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let trace = TraceGenerator::new(TraceConfig {
            target_pps: 50_000.0,
            duration: SimDuration::from_millis(ms),
            ..TraceConfig::paper_default(1, seed)
        })
        .generate();
        let digests: Vec<Digest> = trace.iter().map(|tp| tp.packet.digest()).collect();
        let t_in: Vec<SimTime> = trace.iter().map(|tp| tp.ts).collect();
        // Smooth sawtooth congestion: delay ramps over ~80 ms cycles
        // with jitter — continuous quantile function, no cliffs.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xde1a);
        let delays_ms: Vec<f64> = t_in
            .iter()
            .map(|t| {
                let phase = (t.as_secs_f64() / 0.080).fract();
                0.5 + 11.5 * phase + rng.gen::<f64>() * 0.4
            })
            .collect();
        let loss_rate = 0.10;
        let mut ge = GilbertElliott::with_target(loss_rate, 5.0, seed ^ 0x6e55);
        let mut survives: Vec<bool> = (0..digests.len()).map(|_| ge.survives()).collect();
        if let Some(first) = survives.first_mut() {
            *first = true; // anchor the opening aggregate boundary
        }
        Workload {
            digests,
            t_in,
            delays_ms,
            survives,
            loss_rate,
        }
    }

    /// True delays of delivered packets (what a perfect observer sees).
    pub fn truth_delays(&self) -> Vec<f64> {
        (0..self.digests.len())
            .filter(|&i| self.survives[i])
            .map(|i| self.delays_ms[i])
            .collect()
    }

    /// True loss rate realized by the mask.
    pub fn true_loss(&self) -> f64 {
        1.0 - self.survives.iter().filter(|&&s| s).count() as f64 / self.survives.len() as f64
    }
}

/// Measured report for one scheme on the workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemeReport {
    /// Scheme name.
    pub name: String,
    /// Receipt bytes per observed packet per HOP.
    pub bytes_per_pkt_per_hop: f64,
    /// Worst delay-quantile error, honest domain (ms). `None` = the
    /// scheme cannot produce quantiles at all.
    pub delay_quantile_error_ms: Option<f64>,
    /// Worst delay-quantile error when the domain (with a colluding
    /// neighbor) preferentially treats the packets it knows will be
    /// judged. `None` = attack not applicable / impossible.
    pub delay_error_under_bias_ms: Option<f64>,
    /// |estimated − true| loss rate.
    pub loss_error: f64,
    /// One-line qualitative verdict.
    pub verdict: String,
}

const SAMPLE_RECORD_BYTES: f64 = 7.0;
const AGG_RECEIPT_BYTES: f64 = 22.0;

/// §3.1 strawman: a receipt for every packet.
pub fn strawman(w: &Workload) -> SchemeReport {
    // Ingress records every packet; egress records every delivered one;
    // matching is exact, so delay quantiles and loss are exact.
    let truth = w.truth_delays();
    let est = truth.clone(); // per-packet receipts: the estimate IS the truth
    let qerr = quantile_error(&truth, &est, &DEFAULT_QUANTILES).map_or(f64::NAN, |r| r.max_error);
    SchemeReport {
        name: "Strawman (per-packet receipts)".into(),
        bytes_per_pkt_per_hop: SAMPLE_RECORD_BYTES,
        delay_quantile_error_ms: Some(qerr),
        delay_error_under_bias_ms: Some(qerr), // nothing to bias: all packets judged
        loss_error: 0.0,
        verdict: "exact & verifiable, but per-packet cost — fails tunability".into(),
    }
}

/// §3.2 Trajectory Sampling ++: self-keyed hash sampling at `rate`.
///
/// `biased` simulates the collusion attack: the domain knows the
/// sampled set at forwarding time (it is a pure function of the
/// packet's own digest) and fast-paths exactly those packets; the
/// colluding downstream neighbor samples the same set, so all receipts
/// stay mutually consistent.
pub fn trajectory_sampling(w: &Workload, rate: f64, biased: bool) -> SchemeReport {
    let sigma = Threshold::from_rate(rate);
    let sampled: Vec<bool> = w.digests.iter().map(|d| sigma.passes(d.0)).collect();

    // Actual per-packet delays under the (possibly biased) domain.
    let fast_path_ms = 0.1;
    let actual: Vec<f64> = (0..w.digests.len())
        .map(|i| {
            if biased && sampled[i] {
                fast_path_ms
            } else {
                w.delays_ms[i]
            }
        })
        .collect();
    let truth: Vec<f64> = (0..w.digests.len())
        .filter(|&i| w.survives[i])
        .map(|i| actual[i])
        .collect();
    let est: Vec<f64> = (0..w.digests.len())
        .filter(|&i| w.survives[i] && sampled[i])
        .map(|i| actual[i])
        .collect();
    let qerr =
        quantile_error(&truth, &est, &DEFAULT_QUANTILES).map_or(f64::INFINITY, |r| r.max_error);

    // Loss estimated from sampled packets' fates.
    let s_total = sampled.iter().filter(|&&s| s).count();
    let s_delivered = (0..w.digests.len())
        .filter(|&i| sampled[i] && w.survives[i])
        .count();
    let est_loss = 1.0 - s_delivered as f64 / s_total.max(1) as f64;
    let loss_error = (est_loss - w.true_loss()).abs();

    SchemeReport {
        name: if biased {
            "Trajectory Sampling ++ (colluding bias)".into()
        } else {
            "Trajectory Sampling ++ (honest)".into()
        },
        bytes_per_pkt_per_hop: rate * SAMPLE_RECORD_BYTES,
        delay_quantile_error_ms: Some(qerr),
        delay_error_under_bias_ms: biased.then_some(qerr),
        loss_error,
        verdict: if biased {
            "sampled set predictable ⇒ colluding domains sugarcoat undetected — fails verifiability"
                .into()
        } else {
            "tunable and computable while everyone is honest".into()
        },
    }
}

/// §3.3 Difference Aggregator ++: per-aggregate packet counts and
/// timestamp sums (no per-packet state, no patch-up windows).
///
/// Returns `(report, phantom_loss_under_reordering)` — the second value
/// quantifies the §3.3 reordering failure: |loss error| in packets on a
/// *lossless* reordered copy of the stream.
#[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
pub fn difference_aggregator(w: &Workload, agg_size: u64) -> (SchemeReport, u64) {
    // Loss from counts: exact when no reordering (same cut digests).
    let delta = Aggregator::delta_for_aggregate_size(agg_size);
    let j = SimDuration::ZERO; // DA++ has no reordering window
    let mut up = Aggregator::new(delta, j);
    let mut down = Aggregator::new(delta, j);
    let mut sum_in = 0.0;
    let mut sum_out = 0.0;
    let mut delivered = 0u64;
    for i in 0..w.digests.len() {
        up.observe(w.digests[i], w.t_in[i]);
        if w.survives[i] {
            let t_out = w.t_in[i] + SimDuration::from_secs_f64(w.delays_ms[i] / 1e3);
            down.observe(w.digests[i], t_out);
            // Average delay from timestamp sums is only valid over
            // loss-free aggregates (paper §3.3); for the average-delay
            // error we emulate the loss-free subset by summing both
            // sides over delivered packets.
            sum_in += w.t_in[i].as_secs_f64() * 1e3;
            sum_out += t_out.as_secs_f64() * 1e3;
            delivered += 1;
        }
    }
    up.flush();
    down.flush();
    let up_total: u64 = up.drain().iter().map(|f| f.pkt_cnt).sum();
    let down_total: u64 = down.drain().iter().map(|f| f.pkt_cnt).sum();
    let est_loss = 1.0 - down_total as f64 / up_total as f64;
    let loss_error = (est_loss - w.true_loss()).abs();

    // Average delay (the only delay statistic DA++ can produce).
    let est_avg = (sum_out - sum_in) / delivered as f64;
    let truth = w.truth_delays();
    let true_avg: f64 = truth.iter().sum::<f64>() / truth.len() as f64;
    let _avg_error = (est_avg - true_avg).abs();

    // Reordering failure: lossless stream, bounded reordering, no
    // AggTrans ⇒ phantom loss.
    let model = vpm_netsim::reorder::ReorderModel {
        p_reorder: 0.3,
        max_shift: SimDuration::from_micros(800),
    };
    let mut up2 = Aggregator::new(delta, SimDuration::ZERO);
    let mut down2 = Aggregator::new(delta, SimDuration::ZERO);
    for i in 0..w.digests.len() {
        up2.observe(w.digests[i], w.t_in[i]);
    }
    let shifted: Vec<SimTime> = w
        .t_in
        .iter()
        .map(|&t| t + SimDuration::from_micros(300))
        .collect();
    let order = model.arrival_order(&shifted, 0x0da);
    let perturbed = model.perturb(&shifted, 0x0da);
    for &i in &order {
        down2.observe(w.digests[i], perturbed[i]);
    }
    up2.flush();
    down2.flush();
    let path = vpm_core::receipt::PathId {
        spec: vpm_packet::HeaderSpec::new(
            "10.0.0.0/12".parse().expect("static"),
            "172.16.0.0/14".parse().expect("static"),
        ),
        prev_hop: None,
        next_hop: None,
        max_diff: SimDuration::from_millis(2),
    };
    let rx = |fins: Vec<vpm_core::aggregation::FinishedAggregate>| {
        fins.into_iter()
            .map(|f| vpm_core::receipt::AggReceipt {
                path,
                agg: f.agg,
                pkt_cnt: f.pkt_cnt,
                agg_trans: vec![], // DA++ has no windows
            })
            .collect::<Vec<_>>()
    };
    let res = vpm_core::verify::join_aggregates(&rx(up2.drain()), &rx(down2.drain()));
    let phantom: u64 = res.joined.iter().map(|j| j.lost.unsigned_abs()).sum();

    (
        SchemeReport {
            name: "Difference Aggregator ++".into(),
            bytes_per_pkt_per_hop: AGG_RECEIPT_BYTES / agg_size as f64,
            delay_quantile_error_ms: None, // structurally impossible
            delay_error_under_bias_ms: None,
            loss_error,
            verdict: format!(
                "no delay quantiles (avg only, est {est_avg:.2} vs true {true_avg:.2} ms); \
                 {phantom} phantom lost packets under reordering — fails computability"
            ),
        },
        phantom,
    )
}

/// VPM on the same workload: marker-keyed sampling + aggregation with
/// AggTrans windows.
#[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
pub fn vpm_scheme(w: &Workload, rate: f64, agg_size: u64) -> SchemeReport {
    let marker = Threshold::from_rate(5e-3);
    let sigma = Threshold::from_rate(rate);
    let mut h_in = DelaySampler::new(marker, sigma);
    let mut h_out = DelaySampler::new(marker, sigma);
    for i in 0..w.digests.len() {
        h_in.observe(w.digests[i], w.t_in[i]);
        if w.survives[i] {
            let t_out = w.t_in[i] + SimDuration::from_secs_f64(w.delays_ms[i] / 1e3);
            h_out.observe(w.digests[i], t_out);
        }
    }
    let matched = match_samples(&h_in.drain(), &h_out.drain());
    let est: Vec<f64> = matched.iter().map(|m| m.delay_ms()).collect();
    let truth = w.truth_delays();
    let qerr =
        quantile_error(&truth, &est, &DEFAULT_QUANTILES).map_or(f64::INFINITY, |r| r.max_error);

    // Loss via the aggregate join (exact).
    let delta = Aggregator::delta_for_aggregate_size(agg_size);
    let jwin = SimDuration::from_millis(1);
    let mut up = Aggregator::new(delta, jwin);
    let mut down = Aggregator::new(delta, jwin);
    for i in 0..w.digests.len() {
        up.observe(w.digests[i], w.t_in[i]);
        if w.survives[i] {
            down.observe(
                w.digests[i],
                w.t_in[i] + SimDuration::from_secs_f64(w.delays_ms[i] / 1e3),
            );
        }
    }
    up.flush();
    down.flush();
    let path = vpm_core::receipt::PathId {
        spec: vpm_packet::HeaderSpec::new(
            "10.0.0.0/12".parse().expect("static"),
            "172.16.0.0/14".parse().expect("static"),
        ),
        prev_hop: None,
        next_hop: None,
        max_diff: SimDuration::from_millis(2),
    };
    let rx = |fins: Vec<vpm_core::aggregation::FinishedAggregate>| {
        fins.into_iter()
            .map(|f| vpm_core::receipt::AggReceipt {
                path,
                agg: f.agg,
                pkt_cnt: f.pkt_cnt,
                agg_trans: f.agg_trans,
            })
            .collect::<Vec<_>>()
    };
    let res = vpm_core::verify::join_aggregates(&rx(up.drain()), &rx(down.drain()));
    let loss_error = (res.loss.rate().unwrap_or(f64::NAN) - w.true_loss()).abs();

    SchemeReport {
        name: format!(
            "VPM ({:.1}% sampling, {agg_size}-pkt aggregates)",
            rate * 100.0
        ),
        bytes_per_pkt_per_hop: rate * SAMPLE_RECORD_BYTES + AGG_RECEIPT_BYTES / agg_size as f64,
        delay_quantile_error_ms: Some(qerr),
        delay_error_under_bias_ms: None, // bias impossible (see ablation)
        loss_error,
        verdict: "tunable, quantile-capable, bias-resistant, reorder-tolerant".into(),
    }
}

/// Run the full §3 comparison.
pub fn compare(seed: u64) -> Vec<SchemeReport> {
    let w = Workload::standard(600, seed);
    let mut out = vec![strawman(&w)];
    out.push(trajectory_sampling(&w, 0.01, false));
    out.push(trajectory_sampling(&w, 0.01, true));
    let (da, _) = difference_aggregator(&w, 500);
    out.push(da);
    out.push(vpm_scheme(&w, 0.01, 500));
    out
}

/// Render the comparison as a text table.
pub fn render_table(reports: &[SchemeReport]) -> String {
    let mut s = String::from(
        "§3 baseline comparison (same workload: 10% bursty loss, sawtooth congestion)\n",
    );
    s.push_str(&format!(
        "{:<42} {:>10} {:>12} {:>10}\n",
        "scheme", "B/pkt/HOP", "Δq-err[ms]", "loss-err"
    ));
    for r in reports {
        s.push_str(&format!(
            "{:<42} {:>10.4} {:>12} {:>10.4}\n",
            r.name,
            r.bytes_per_pkt_per_hop,
            r.delay_quantile_error_ms
                .map_or_else(|| "none".into(), |e| format!("{e:.3}")),
            r.loss_error,
        ));
        s.push_str(&format!("{:<6}↳ {}\n", "", r.verdict));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strawman_is_exact_but_expensive() {
        let w = Workload::standard(300, 1);
        let r = strawman(&w);
        assert_eq!(r.delay_quantile_error_ms.unwrap(), 0.0);
        assert_eq!(r.loss_error, 0.0);
        // 7 B per packet ≫ VPM's ~0.1 B per packet.
        let vpm = vpm_scheme(&w, 0.01, 500);
        assert!(r.bytes_per_pkt_per_hop > 50.0 * vpm.bytes_per_pkt_per_hop);
    }

    #[test]
    fn trajectory_sampling_honest_ok_biased_broken() {
        let w = Workload::standard(400, 2);
        let honest = trajectory_sampling(&w, 0.01, false);
        let biased = trajectory_sampling(&w, 0.01, true);
        assert!(honest.delay_quantile_error_ms.unwrap() < 2.0, "{honest:?}");
        // Under collusion the sampled set shows the fast path only: the
        // estimate misses nearly all real congestion.
        assert!(biased.delay_quantile_error_ms.unwrap() > 8.0, "{biased:?}");
    }

    #[test]
    fn difference_aggregator_no_quantiles_and_reorder_phantoms() {
        let w = Workload::standard(400, 3);
        let (r, phantom) = difference_aggregator(&w, 500);
        assert!(r.delay_quantile_error_ms.is_none());
        assert!(r.loss_error < 0.01, "{r:?}");
        assert!(phantom > 0, "reordering must produce phantom loss");
    }

    #[test]
    fn vpm_wins_the_triad() {
        let w = Workload::standard(400, 4);
        let vpm = vpm_scheme(&w, 0.01, 500);
        assert!(vpm.delay_quantile_error_ms.unwrap() < 2.0, "{vpm:?}");
        assert!(vpm.loss_error < 0.01, "{vpm:?}");
        assert!(vpm.bytes_per_pkt_per_hop < 0.2);
    }

    #[test]
    fn compare_produces_all_five_rows() {
        let rows = compare(5);
        assert_eq!(rows.len(), 5);
        let table = render_table(&rows);
        assert!(table.contains("VPM"));
        assert!(table.contains("Strawman"));
    }
}
