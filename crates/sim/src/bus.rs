//! Receipt dissemination.
//!
//! The paper assumes receipts can be disseminated with authenticity and
//! integrity guarantees (assumption #2) and adds a privacy rule (§2.1):
//! "a receipt is made available only to the domains that observed the
//! corresponding traffic." This bus implements both: batches are
//! published with their signing key registered out of band, fetches
//! verify authenticity, and visibility is restricted to on-path
//! domains.
//!
//! The bus is `Sync` (internally locked) so domains can publish from
//! worker threads — receipts in a real deployment arrive
//! asynchronously.

use parking_lot::RwLock;
use std::collections::HashMap;
use vpm_core::processor::ReceiptBatch;
use vpm_packet::{DomainId, HopId};

/// A published batch with its provenance.
#[derive(Debug, Clone)]
pub struct Published {
    /// The publishing domain.
    pub domain: DomainId,
    /// The reporting HOP.
    pub hop: HopId,
    /// The batch itself.
    pub batch: ReceiptBatch,
    /// Domains that observed the corresponding traffic (the batch is
    /// visible only to these).
    pub on_path: Vec<DomainId>,
}

/// Errors from bus operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// The batch's authenticity tag did not verify under the publisher's
    /// registered key.
    BadTag {
        /// Offending HOP.
        hop: HopId,
    },
    /// The requesting domain is not on the path the receipts describe.
    NotOnPath {
        /// The requester.
        requester: DomainId,
    },
    /// No key registered for the HOP.
    UnknownHop(HopId),
}

impl std::fmt::Display for BusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusError::BadTag { hop } => write!(f, "authenticity tag failed for {hop}"),
            BusError::NotOnPath { requester } => {
                write!(f, "{requester} did not observe this traffic")
            }
            BusError::UnknownHop(h) => write!(f, "no key registered for {h}"),
        }
    }
}

impl std::error::Error for BusError {}

#[derive(Default)]
struct Inner {
    keys: HashMap<HopId, u64>,
    entries: Vec<Published>,
}

/// The receipt dissemination bus.
#[derive(Default)]
pub struct ReceiptBus {
    inner: RwLock<Inner>,
}

impl ReceiptBus {
    /// Empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a HOP's signing key (out-of-band trust establishment).
    pub fn register_key(&self, hop: HopId, key: u64) {
        self.inner.write().keys.insert(hop, key);
    }

    /// Publish a batch. Verifies the tag against the registered key so
    /// a tampered batch never enters circulation.
    pub fn publish(
        &self,
        domain: DomainId,
        batch: ReceiptBatch,
        on_path: Vec<DomainId>,
    ) -> Result<(), BusError> {
        let mut inner = self.inner.write();
        let key = *inner
            .keys
            .get(&batch.hop)
            .ok_or(BusError::UnknownHop(batch.hop))?;
        if !batch.verify_tag(key) {
            return Err(BusError::BadTag { hop: batch.hop });
        }
        inner.entries.push(Published {
            domain,
            hop: batch.hop,
            batch,
            on_path,
        });
        Ok(())
    }

    /// Fetch every batch a requester is allowed to see for a given HOP.
    pub fn fetch(&self, requester: DomainId, hop: HopId) -> Result<Vec<Published>, BusError> {
        let inner = self.inner.read();
        let visible: Vec<Published> = inner
            .entries
            .iter()
            .filter(|p| p.hop == hop)
            .filter(|p| p.on_path.contains(&requester))
            .cloned()
            .collect();
        if visible.is_empty()
            && inner
                .entries
                .iter()
                .any(|p| p.hop == hop && !p.on_path.contains(&requester))
        {
            return Err(BusError::NotOnPath { requester });
        }
        Ok(visible)
    }

    /// Total published batches (diagnostics).
    pub fn len(&self) -> usize {
        self.inner.read().entries.len()
    }

    /// Is the bus empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(hop: HopId) -> (ReceiptBatch, u64) {
        let mut b = ReceiptBatch {
            hop,
            batch_seq: 0,
            samples: vec![],
            aggregates: vec![],
            auth_tag: 0,
        };
        let key = 0xabc ^ hop.0 as u64;
        b.auth_tag = b.compute_tag(key);
        (b, key)
    }

    #[test]
    fn publish_and_fetch() {
        let bus = ReceiptBus::new();
        let (b, key) = batch(HopId(5));
        bus.register_key(HopId(5), key);
        bus.publish(DomainId(2), b, vec![DomainId(0), DomainId(1), DomainId(2)])
            .unwrap();
        let got = bus.fetch(DomainId(1), HopId(5)).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].hop, HopId(5));
    }

    #[test]
    fn privacy_rule_enforced() {
        let bus = ReceiptBus::new();
        let (b, key) = batch(HopId(5));
        bus.register_key(HopId(5), key);
        bus.publish(DomainId(2), b, vec![DomainId(2)]).unwrap();
        // An off-path domain gets an explicit refusal, not silence.
        match bus.fetch(DomainId(9), HopId(5)) {
            Err(BusError::NotOnPath { requester }) => assert_eq!(requester, DomainId(9)),
            other => panic!("expected NotOnPath, got {other:?}"),
        }
    }

    #[test]
    fn tampered_batch_rejected() {
        let bus = ReceiptBus::new();
        let (mut b, key) = batch(HopId(3));
        bus.register_key(HopId(3), key);
        b.batch_seq = 99; // tamper after signing
        assert_eq!(
            bus.publish(DomainId(1), b, vec![DomainId(1)]),
            Err(BusError::BadTag { hop: HopId(3) })
        );
        assert!(bus.is_empty());
    }

    #[test]
    fn unknown_hop_rejected() {
        let bus = ReceiptBus::new();
        let (b, _key) = batch(HopId(7));
        assert_eq!(
            bus.publish(DomainId(3), b, vec![DomainId(3)]),
            Err(BusError::UnknownHop(HopId(7)))
        );
    }

    #[test]
    fn concurrent_publishers() {
        let bus = ReceiptBus::new();
        for h in 1..=8u16 {
            let (_, key) = batch(HopId(h));
            bus.register_key(HopId(h), key);
        }
        std::thread::scope(|s| {
            for h in 1..=8u16 {
                let bus = &bus;
                s.spawn(move || {
                    let (b, _) = batch(HopId(h));
                    bus.publish(DomainId(h), b, vec![DomainId(h)]).unwrap();
                });
            }
        });
        assert_eq!(bus.len(), 8);
    }
}
