//! Receipt dissemination — re-export surface.
//!
//! The receipt bus grew up and moved out: dissemination lives in
//! [`vpm_wire::transport`] as the transport-agnostic
//! [`ReceiptTransport`] API (`publish`/`fetch`/`subscribe` over
//! encoded wire frames), with the paper's authenticity and
//! on-path-visibility guarantees enforced at the trait's documented
//! boundaries and two implementations: [`InMemoryBus`] (the
//! single-lock reference store this module used to define) and
//! [`ShardedBus`] (`PathID`-hash sharded for contention-free
//! scale-out). This module re-exports that surface for simulator
//! convenience; the long-deprecated `ReceiptBus`/`BusError` aliases
//! have been removed — import the [`ReceiptTransport`] names.
//!
//! What changed relative to the historical in-module bus:
//!
//! * batches travel as encoded [`vpm_wire::WireFrame`]s carrying an
//!   HMAC-SHA-256 MAC trailer — `publish` decodes the actual wire
//!   bytes and verifies the MAC under the HOP's registered
//!   [`vpm_wire::HopKey`] at the epoch the frame claims (and re-checks
//!   it at `fetch`), so unsigned or forged frames never circulate;
//! * keys are epoch-tagged: `register_key` refuses to overwrite an
//!   established HOP's key and rotation is an explicit
//!   [`ReceiptTransport::rotate_key`];
//! * `fetch` returns [`Arc`](std::sync::Arc)-shared [`Published`]
//!   entries instead of deep-cloning every matching batch per call;
//! * `subscribe`/`poll` expose dissemination as a stream, which is how
//!   the path runner collects receipts now.

pub use vpm_wire::transport::{
    InMemoryBus, Published, ReceiptTransport, ShardedBus, SubscriptionId, TransportError,
};

#[cfg(test)]
mod tests {
    use super::*;
    use vpm_core::processor::ReceiptBatch;
    use vpm_packet::{DomainId, HopId};
    use vpm_wire::{HopKey, Profile};

    fn batch(hop: HopId) -> (ReceiptBatch, HopKey) {
        let mut b = ReceiptBatch {
            hop,
            batch_seq: 0,
            samples: vec![],
            aggregates: vec![],
            auth_tag: 0,
        };
        let key = HopKey::from_seed(0xabc ^ hop.0 as u64);
        b.auth_tag = b.compute_tag(key.tag_key());
        (b, key)
    }

    /// The re-exported surface works from the simulator crate (the
    /// full behavioural suite lives in `vpm_wire::transport`).
    #[test]
    fn reexported_transport_publishes_and_fetches() {
        let bus = InMemoryBus::new();
        let (b, key) = batch(HopId(5));
        bus.register_key(HopId(5), key).unwrap();
        bus.publish_batch(
            DomainId(2),
            &b,
            Profile::Precise,
            vec![DomainId(0), DomainId(1), DomainId(2)],
            &key,
        )
        .unwrap();
        let got = bus.fetch(DomainId(1), HopId(5)).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].hop, HopId(5));
        assert_eq!(got[0].batch, b);
        match bus.fetch(DomainId(9), HopId(5)) {
            Err(TransportError::NotOnPath { requester }) => assert_eq!(requester, DomainId(9)),
            other => panic!("expected NotOnPath, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_publishers() {
        let bus = ShardedBus::new(4);
        for h in 1..=8u16 {
            let (_, key) = batch(HopId(h));
            bus.register_key(HopId(h), key).unwrap();
        }
        std::thread::scope(|s| {
            for h in 1..=8u16 {
                let bus = &bus;
                s.spawn(move || {
                    let (b, key) = batch(HopId(h));
                    bus.publish_batch(DomainId(h), &b, Profile::Precise, vec![DomainId(h)], &key)
                        .unwrap();
                });
            }
        });
        assert_eq!(bus.len(), 8);
    }
}
