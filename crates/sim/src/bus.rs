//! Receipt dissemination — compatibility surface.
//!
//! The receipt bus grew up and moved out: dissemination now lives in
//! `vpm_wire::transport` as the transport-agnostic [`ReceiptTransport`]
//! API (`publish`/`fetch`/`subscribe` over encoded wire frames), with
//! the paper's authenticity and on-path-visibility guarantees enforced
//! at the trait's documented boundaries and two implementations:
//! [`InMemoryBus`] (the single-lock reference store this module used to
//! define) and [`ShardedBus`] (`PathID`-hash sharded for contention-free
//! scale-out). This module re-exports that surface under the historical
//! names so sim-level code and older call sites keep reading naturally.
//!
//! What changed relative to the old `ReceiptBus`:
//!
//! * batches travel as encoded [`vpm_wire::WireFrame`]s — `publish`
//!   decodes and tag-verifies the actual wire bytes, so the codec sits
//!   on the pipeline's critical path rather than beside it;
//! * `fetch` returns [`Arc`](std::sync::Arc)-shared [`Published`]
//!   entries instead of deep-cloning every matching batch per call;
//! * `subscribe`/`poll` expose dissemination as a stream, which is how
//!   the path runner collects receipts now.

pub use vpm_wire::transport::{
    InMemoryBus, Published, ReceiptTransport, ShardedBus, SubscriptionId, TransportError,
};

/// The historical name of the in-memory dissemination bus.
pub type ReceiptBus = InMemoryBus;

/// The historical name of the transport error type.
pub type BusError = TransportError;

#[cfg(test)]
mod tests {
    use super::*;
    use vpm_core::processor::ReceiptBatch;
    use vpm_packet::{DomainId, HopId};
    use vpm_wire::Profile;

    fn batch(hop: HopId) -> (ReceiptBatch, u64) {
        let mut b = ReceiptBatch {
            hop,
            batch_seq: 0,
            samples: vec![],
            aggregates: vec![],
            auth_tag: 0,
        };
        let key = 0xabc ^ hop.0 as u64;
        b.auth_tag = b.compute_tag(key);
        (b, key)
    }

    /// The old module's API shape still works through the aliases (the
    /// full behavioural suite lives in `vpm_wire::transport`).
    #[test]
    fn legacy_names_still_publish_and_fetch() {
        let bus = ReceiptBus::new();
        let (b, key) = batch(HopId(5));
        bus.register_key(HopId(5), key);
        bus.publish_batch(
            DomainId(2),
            &b,
            Profile::Precise,
            vec![DomainId(0), DomainId(1), DomainId(2)],
        )
        .unwrap();
        let got = bus.fetch(DomainId(1), HopId(5)).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].hop, HopId(5));
        assert_eq!(got[0].batch, b);
        match bus.fetch(DomainId(9), HopId(5)) {
            Err(BusError::NotOnPath { requester }) => assert_eq!(requester, DomainId(9)),
            other => panic!("expected NotOnPath, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_publishers() {
        let bus = ShardedBus::new(4);
        for h in 1..=8u16 {
            let (_, key) = batch(HopId(h));
            bus.register_key(HopId(h), key);
        }
        std::thread::scope(|s| {
            for h in 1..=8u16 {
                let bus = &bus;
                s.spawn(move || {
                    let (b, _) = batch(HopId(h));
                    bus.publish_batch(DomainId(h), &b, Profile::Precise, vec![DomainId(h)])
                        .unwrap();
                });
            }
        });
        assert_eq!(bus.len(), 8);
    }
}
