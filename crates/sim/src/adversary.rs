//! Lying-domain strategies (the paper's threat model, §2.1).
//!
//! A lying domain constructs receipts from incomplete or fabricated
//! information; colluding domains may share observations. These
//! helpers doctor a [`crate::run::HopOutput`]'s receipts the way a liar
//! would, so tests and examples can demonstrate the §3.1 exposure
//! story: lies create inconsistencies, and the inconsistency always
//! lands on an inter-domain link adjacent to a liar, exposing it to the
//! neighbor it implicated.

use vpm_core::receipt::{AggReceipt, SampleRecord};
use vpm_packet::{HopId, SimDuration};

use crate::run::{HopOutput, PathRun};

/// How a lying domain doctors its egress receipts.
#[derive(Debug, Clone, Copy)]
pub enum LieStrategy {
    /// Hide loss: claim every packet that *entered* the domain was
    /// delivered, with a small plausible transit delay. (The §3.1
    /// example: X drops p but claims delivering it to N.)
    BlameShiftLoss {
        /// The fake transit delay to stamp on fabricated receipts.
        claimed_delay: SimDuration,
    },
    /// Hide delay: report egress timestamps shaved by a constant.
    SugarcoatDelay {
        /// How much delay to hide.
        shave: SimDuration,
    },
}

/// Apply a lie: rewrite the egress HOP's receipts given the domain's
/// ingress observations. Returns the doctored egress output.
///
/// The receipt batch is re-signed with the HOP's own key — a lying
/// domain signs its own lies; authenticity is not what VPM relies on to
/// catch them (consistency is).
pub fn apply_lie(ingress: &HopOutput, egress: &mut HopOutput, strategy: LieStrategy) {
    match strategy {
        LieStrategy::BlameShiftLoss { claimed_delay } => {
            // Claim the egress saw exactly what the ingress saw.
            egress.samples = ingress
                .samples
                .iter()
                .map(|r| SampleRecord {
                    pkt_id: r.pkt_id,
                    time: r.time + claimed_delay,
                })
                .collect();
            egress.aggregates = ingress
                .aggregates
                .iter()
                .map(|a| AggReceipt {
                    path: egress.path,
                    ..a.clone()
                })
                .collect();
        }
        LieStrategy::SugarcoatDelay { shave } => {
            for r in &mut egress.samples {
                r.time = r.time - shave;
            }
        }
    }
    resign(egress);
}

/// One lying egress: the domain whose egress HOP doctors its receipts
/// from what its ingress HOP observed.
#[derive(Debug, Clone, Copy)]
pub struct LieSite {
    /// The liar's ingress HOP (source of the observations the lie is
    /// constructed from).
    pub ingress: HopId,
    /// The liar's egress HOP (whose receipts are doctored).
    pub egress: HopId,
    /// The lie.
    pub strategy: LieStrategy,
}

/// Apply several independent lies to one run — the multi-liar threat
/// model: each site's domain doctors its own egress from its own
/// ingress observations, without coordination between liars. §3.1's
/// localization argument applies to each liar separately: every lie
/// still surfaces on an inter-domain link adjacent to *that* liar.
#[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
pub fn apply_lies(run: &mut PathRun, sites: &[LieSite]) {
    for site in sites {
        let ingress = run
            .hop(site.ingress)
            .expect("lie site ingress exists") // vpm-lint: allow(R1, the lie site was resolved on this run's path just above)
            .clone();
        let egress = run.hop_mut(site.egress).expect("lie site egress exists"); // vpm-lint: allow(R1, the lie site was resolved on this run's path just above)
        apply_lie(&ingress, egress, site.strategy);
    }
}

/// Collusion: a downstream neighbor covers an upstream liar by claiming
/// to have received exactly what the liar claims to have delivered
/// (§3.1: "N has the option of covering X's lie"). The neighbor's
/// *ingress* receipts become a copy of the liar's egress claims.
pub fn cover_up(liar_egress: &HopOutput, accomplice_ingress: &mut HopOutput) {
    accomplice_ingress.samples = liar_egress
        .samples
        .iter()
        .map(|r| SampleRecord {
            pkt_id: r.pkt_id,
            // Received right after the liar claims to have delivered.
            time: r.time + SimDuration::from_micros(50),
        })
        .collect();
    accomplice_ingress.aggregates = liar_egress
        .aggregates
        .iter()
        .map(|a| AggReceipt {
            path: accomplice_ingress.path,
            ..a.clone()
        })
        .collect();
    resign(accomplice_ingress);
}

fn resign(out: &mut HopOutput) {
    out.batch.samples = vec![vpm_core::receipt::SampleReceipt {
        path: out.path,
        samples: out.samples.clone(),
    }];
    out.batch.aggregates = out.aggregates.clone();
    out.batch.auth_tag = out.batch.compute_tag(out.tag_key());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_path, RunConfig};
    use crate::topology::Figure1;
    use vpm_netsim::channel::{ChannelConfig, DelayModel};
    use vpm_netsim::reorder::ReorderModel;
    use vpm_packet::{HopId, SimDuration};
    use vpm_trace::{TraceConfig, TraceGenerator};

    fn lossy_x_run() -> crate::run::PathRun {
        let t = TraceGenerator::new(TraceConfig {
            target_pps: 50_000.0,
            duration: SimDuration::from_millis(150),
            ..TraceConfig::paper_default(1, 11)
        })
        .generate();
        let mut fig = Figure1::ideal();
        fig.x_transit = ChannelConfig {
            delay: DelayModel::Constant(SimDuration::from_micros(200)),
            loss: Some((0.15, 4.0)),
            reorder: ReorderModel::none(),
            seed: 3,
        };
        let cfg = RunConfig {
            sampling_rate: 0.05,
            aggregate_size: 500,
            marker_rate: 0.01,
            j_window: SimDuration::from_millis(2),
            ..RunConfig::default()
        };
        run_path(&t, &fig.build(), &cfg)
    }

    #[test]
    fn blame_shift_fabricates_full_delivery() {
        let mut run = lossy_x_run();
        let ingress = run.hop(HopId(4)).unwrap().clone();
        let egress = run.hop_mut(HopId(5)).unwrap();
        let before = egress.samples.len();
        apply_lie(
            &ingress,
            egress,
            LieStrategy::BlameShiftLoss {
                claimed_delay: SimDuration::from_micros(200),
            },
        );
        assert!(
            egress.samples.len() > before,
            "lie must add fabricated records"
        );
        assert_eq!(egress.samples.len(), ingress.samples.len());
        // The doctored batch still signs correctly (liars sign lies).
        assert!(run
            .hop(HopId(5))
            .unwrap()
            .batch
            .verify_tag(run.hop(HopId(5)).unwrap().tag_key()));
    }

    #[test]
    fn sugarcoat_shifts_times_down() {
        let mut run = lossy_x_run();
        let ingress = run.hop(HopId(4)).unwrap().clone();
        let before: Vec<_> = run.hop(HopId(5)).unwrap().samples.clone();
        let egress = run.hop_mut(HopId(5)).unwrap();
        apply_lie(
            &ingress,
            egress,
            LieStrategy::SugarcoatDelay {
                shave: SimDuration::from_micros(150),
            },
        );
        for (a, b) in before.iter().zip(&egress.samples) {
            assert!(b.time <= a.time);
            assert_eq!(a.pkt_id, b.pkt_id);
        }
    }

    #[test]
    fn apply_lies_doctors_every_site_independently() {
        let mut run = lossy_x_run();
        let l_ingress = run.hop(HopId(2)).unwrap().samples.len();
        let n_ingress = run.hop(HopId(6)).unwrap().samples.len();
        apply_lies(
            &mut run,
            &[
                LieSite {
                    ingress: HopId(2),
                    egress: HopId(3),
                    strategy: LieStrategy::BlameShiftLoss {
                        claimed_delay: SimDuration::from_micros(200),
                    },
                },
                LieSite {
                    ingress: HopId(6),
                    egress: HopId(7),
                    strategy: LieStrategy::BlameShiftLoss {
                        claimed_delay: SimDuration::from_micros(200),
                    },
                },
            ],
        );
        // Each egress now mirrors its own ingress and still signs.
        for (egress, expect) in [(HopId(3), l_ingress), (HopId(7), n_ingress)] {
            let h = run.hop(egress).unwrap();
            assert_eq!(h.samples.len(), expect, "{egress}");
            assert!(h.batch.verify_tag(h.tag_key()), "{egress}");
        }
    }

    #[test]
    fn cover_up_copies_the_lie() {
        let mut run = lossy_x_run();
        let ingress = run.hop(HopId(4)).unwrap().clone();
        {
            let egress = run.hop_mut(HopId(5)).unwrap();
            apply_lie(
                &ingress,
                egress,
                LieStrategy::BlameShiftLoss {
                    claimed_delay: SimDuration::from_micros(200),
                },
            );
        }
        let liar_egress = run.hop(HopId(5)).unwrap().clone();
        let accomplice = run.hop_mut(HopId(6)).unwrap();
        cover_up(&liar_egress, accomplice);
        assert_eq!(accomplice.samples.len(), liar_egress.samples.len());
        let ids_match = accomplice
            .samples
            .iter()
            .zip(&liar_egress.samples)
            .all(|(a, b)| a.pkt_id == b.pkt_id && a.time >= b.time);
        assert!(ids_match);
    }
}
