//! The deterministic scenario matrix — the repo's primary verification
//! instrument.
//!
//! The ROADMAP's north star asks for "as many scenarios as you can
//! imagine"; this module turns that into one enumerable table. A
//! [`Cell`] fixes every free variable of a Figure-1 experiment — the
//! delay model inside the domain under evaluation (`X`, including
//! congestion-driven delay series from the bottleneck simulator), the
//! loss process (none / uniform / bursty Gilbert-Elliott), the
//! reordering window, the HOPs' sampling rate, the clock quality
//! (ideal vs NTP-grade, §4), the deployment state (full vs partial,
//! §8), the adversary strategy (§2.1, including two independent
//! liars), and the RNG seed — and [`evaluate_cell`] replays it end to
//! end:
//!
//! 1. run the path honestly and check the paper's per-cell invariants:
//!    **consistency** (honest receipts never flag a link — even under
//!    NTP-grade clocks, whose mutual skew stays under the advertised
//!    `MaxDiff` and must never produce a false accusation) and
//!    **accuracy** (receipt-derived loss and delay track the retained
//!    ground truth within tolerances; partially deployed cells check
//!    the bracketing segment from `partial::analyze_partial` instead
//!    of the per-domain report);
//! 2. if the cell names an adversary, re-run (or doctor) the same
//!    scenario with the lie applied and check **exposure**: the lie
//!    surfaces exactly where §3.1 says it must — on an inter-domain
//!    link adjacent to a liar (for two liars, on a link adjacent to
//!    *each* liar), or (for collusion) as blame absorbed inside the
//!    colluding coalition, or (for sampling bias) as a defeated attack
//!    whose estimates still track the truth.
//!
//! Every cell's receipts take the full dissemination path: `run_path`
//! encodes each HOP's batch into a v1 wire frame, publishes it through
//! a `vpm_wire::ReceiptTransport`, and rebuilds the outputs from the
//! fetched, decoded frames — so all 216 cells double as a losslessness
//! proof for the binary codec.
//!
//! Everything is seeded: evaluating the same cell twice produces
//! byte-identical [`CellVerdict`]s, and [`evaluate_grid`] evaluates
//! cells in parallel with `std::thread::scope` while merging results
//! in index order — the result set is byte-identical regardless of the
//! thread count (`tests/scenario_matrix.rs` asserts both via JSON
//! serialization). [`full_grid`] enumerates the default 216-cell
//! sweep; the `vpm matrix` subcommand filters, evaluates and prints it
//! ([`parse_filter`], [`render_matrix_table`]). Future PRs extend the
//! grid rather than writing new one-off scenario tests.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use vpm_hash::Threshold;
use vpm_netsim::channel::{ChannelConfig, DelayModel};
use vpm_netsim::congestion::{foreground_delays, BottleneckConfig, CrossTraffic, PacketFate};
use vpm_netsim::reorder::ReorderModel;
use vpm_packet::{DomainId, HopId, SimDuration};
use vpm_trace::{TraceConfig, TraceGenerator, TracePacket};

use crate::adversary::{apply_lies, cover_up, LieSite, LieStrategy};
use crate::partial::analyze_partial;
use crate::run::{run_path, ClockMode, PathRun, RunConfig};
use crate::topology::{Figure1, Topology};
use crate::verdict::{analyze_path, PathAnalysis};

/// Base seed of the canonical sweep run by the integration suite and
/// the `vpm matrix` subcommand. Changing it changes every cell's
/// traffic and channel randomness — the invariants must hold anyway.
pub const CANONICAL_BASE_SEED: u64 = 0xA110_F7E5;

/// Delay model applied inside domain `X`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DelayAxis {
    /// Constant 300 µs transit.
    Constant,
    /// 100 µs base plus uniform jitter in `[0, 800]` µs.
    Jitter,
    /// Congestion-driven delay series: the cell's trace shares a
    /// drop-tail bottleneck with a bursty UDP flow (the Figure-2
    /// congestion source) and every packet's fate comes out of the
    /// event simulation as a [`DelayModel::Series`].
    Congested,
}

impl DelayAxis {
    /// Every level of this axis, in grid order — the single source of
    /// truth for grid construction and the `--filter` vocabulary.
    pub const ALL: [DelayAxis; 3] = [DelayAxis::Constant, DelayAxis::Jitter, DelayAxis::Congested];

    /// Stable axis label for filters and reports.
    pub fn name(&self) -> &'static str {
        match self {
            DelayAxis::Constant => "constant",
            DelayAxis::Jitter => "jitter",
            DelayAxis::Congested => "congested",
        }
    }

    /// Fast-path delay a biased domain gives packets it wants to look
    /// good on (well below either closed-form model's typical transit).
    fn fast_path(&self) -> SimDuration {
        SimDuration::from_micros(30)
    }
}

/// Loss process applied inside domain `X`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossAxis {
    /// Lossless.
    None,
    /// Independent (uniform) drops at the given rate — Gilbert-Elliott
    /// with mean burst length 1.
    Uniform(f64),
    /// Bursty Gilbert-Elliott drops: `(rate, mean burst)`.
    Gilbert(f64, f64),
}

impl LossAxis {
    fn channel_loss(&self) -> Option<(f64, f64)> {
        match *self {
            LossAxis::None => None,
            LossAxis::Uniform(rate) => Some((rate, 1.0)),
            LossAxis::Gilbert(rate, burst) => Some((rate, burst)),
        }
    }

    /// Target loss rate of the process.
    pub fn rate(&self) -> f64 {
        match *self {
            LossAxis::None => 0.0,
            LossAxis::Uniform(r) | LossAxis::Gilbert(r, _) => r,
        }
    }

    /// Every family label [`Self::family`] can return — the `--filter`
    /// vocabulary (kept adjacent so they cannot drift apart).
    pub const FAMILIES: [&'static str; 3] = ["none", "uniform", "gilbert"];

    /// Stable family label for filters ("none" / "uniform" /
    /// "gilbert").
    pub fn family(&self) -> &'static str {
        match self {
            LossAxis::None => "none",
            LossAxis::Uniform(_) => "uniform",
            LossAxis::Gilbert(_, _) => "gilbert",
        }
    }
}

/// Reordering window inside domain `X`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReorderAxis {
    /// In-order delivery.
    None,
    /// Bounded reordering: hold-back probability with a shift strictly
    /// below the safety threshold `J`.
    Window {
        /// Probability a packet is held back.
        p: f64,
        /// Hold-back bound in microseconds (< `J`).
        shift_us: u64,
    },
}

impl ReorderAxis {
    fn model(&self) -> ReorderModel {
        match *self {
            ReorderAxis::None => ReorderModel::none(),
            ReorderAxis::Window { p, shift_us } => ReorderModel {
                p_reorder: p,
                max_shift: SimDuration::from_micros(shift_us),
            },
        }
    }

    /// Every family label [`Self::family`] can return — the `--filter`
    /// vocabulary (kept adjacent so they cannot drift apart).
    pub const FAMILIES: [&'static str; 2] = ["none", "window"];

    /// Stable family label for filters ("none" / "window").
    pub fn family(&self) -> &'static str {
        match self {
            ReorderAxis::None => "none",
            ReorderAxis::Window { .. } => "window",
        }
    }
}

/// Clock quality at every HOP (§4: VPM needs no synchronized clocks,
/// but delay estimates inherit the HOPs' mutual skew).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClockAxis {
    /// Perfect clocks.
    Ideal,
    /// NTP-grade clocks: offset within ±0.5 ms, drift within ±50 ppm,
    /// 10 µs read jitter — "reasonably synchronized, at the
    /// granularity of a millisecond" (§4).
    NtpGrade,
}

impl ClockAxis {
    /// Every level of this axis — the single source of truth for grid
    /// construction and the `--filter` vocabulary.
    pub const ALL: [ClockAxis; 2] = [ClockAxis::Ideal, ClockAxis::NtpGrade];

    fn mode(&self) -> ClockMode {
        match self {
            ClockAxis::Ideal => ClockMode::Ideal,
            ClockAxis::NtpGrade => ClockMode::NtpGrade,
        }
    }

    /// Stable axis label for filters and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ClockAxis::Ideal => "ideal",
            ClockAxis::NtpGrade => "ntp",
        }
    }

    /// Extra slack the delay-accuracy tolerance gets under this clock:
    /// two NTP-grade HOPs can disagree by up to ~1 ms of offset plus
    /// drift and read jitter, all of which lands in the estimate.
    fn slack_ms(&self) -> f64 {
        match self {
            ClockAxis::Ideal => 0.0,
            ClockAxis::NtpGrade => 1.2,
        }
    }
}

/// Deployment state of the path (§8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeployAxis {
    /// Every domain runs HOPs.
    Full,
    /// `X` does not deploy: it produces no receipts, and its
    /// performance can only be measured end-to-end over the segment
    /// between the nearest deployed HOPs (3→6), which is exactly where
    /// `partial::analyze_partial` must localize it.
    Partial,
}

impl DeployAxis {
    /// Every level of this axis — the `--filter` vocabulary.
    pub const ALL: [DeployAxis; 2] = [DeployAxis::Full, DeployAxis::Partial];

    /// Stable axis label for filters and reports.
    pub fn name(&self) -> &'static str {
        match self {
            DeployAxis::Full => "full",
            DeployAxis::Partial => "partial",
        }
    }
}

/// The lying strategy exercised in a cell (threat model of §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdversaryAxis {
    /// Everyone reports honestly.
    Honest,
    /// `X` hides its loss by fabricating egress receipts for every
    /// packet its ingress saw (§3.1).
    BlameShift,
    /// `X` hides delay by shaving its egress timestamps (§3.1).
    Sugarcoat,
    /// `X` drops the marker packets that drive Algorithm 1 (§5.3).
    MarkerDrop,
    /// `X` blame-shifts and its downstream neighbor `N` covers the lie
    /// (§3.1 collusion).
    Collude,
    /// `X` fast-paths the packets it *guesses* will be sampled — the
    /// bias attack Algorithm 1 is designed to defeat (§5.1).
    SampleBias,
    /// Two non-adjacent domains (`L` and `N`) hide their own loss
    /// independently. §3.1's localization argument applies per liar:
    /// *both* must surface, each on an inter-domain link adjacent to
    /// itself, while the innocent `X` between them stays clean.
    TwoLiars,
}

impl AdversaryAxis {
    /// Every strategy, in cycling order — the single source of truth
    /// for grid construction and the `--filter` vocabulary.
    pub const ALL: [AdversaryAxis; 7] = [
        AdversaryAxis::Honest,
        AdversaryAxis::BlameShift,
        AdversaryAxis::Sugarcoat,
        AdversaryAxis::MarkerDrop,
        AdversaryAxis::Collude,
        AdversaryAxis::SampleBias,
        AdversaryAxis::TwoLiars,
    ];

    /// Stable label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AdversaryAxis::Honest => "honest",
            AdversaryAxis::BlameShift => "blame-shift",
            AdversaryAxis::Sugarcoat => "sugarcoat",
            AdversaryAxis::MarkerDrop => "marker-drop",
            AdversaryAxis::Collude => "collude",
            AdversaryAxis::SampleBias => "sample-bias",
            AdversaryAxis::TwoLiars => "two-liars",
        }
    }

    /// Strategies that only make sense when `X` has loss to hide.
    /// (`TwoLiars` brings its own loss inside `L` and `N`.)
    fn needs_loss(&self) -> bool {
        matches!(self, AdversaryAxis::BlameShift | AdversaryAxis::Collude)
    }

    /// Can this strategy be exercised meaningfully in the given
    /// environment?
    ///
    /// * loss-hiding needs loss to hide;
    /// * the sample-bias attack needs a closed-form slow path to
    ///   fast-path against (not a congestion series) and ideal clocks
    ///   (its "estimate must sit far above the fast path" check is
    ///   meaningless once clock offsets can push the estimate around).
    fn legal(&self, delay: DelayAxis, loss: LossAxis, clock: ClockAxis) -> bool {
        if self.needs_loss() && loss.rate() <= 0.0 {
            return false;
        }
        match self {
            AdversaryAxis::SampleBias => delay != DelayAxis::Congested && clock == ClockAxis::Ideal,
            _ => true,
        }
    }
}

/// One fully specified scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Position in the grid (stable across runs).
    pub id: usize,
    /// Delay model inside `X`.
    pub delay: DelayAxis,
    /// Loss process inside `X`.
    pub loss: LossAxis,
    /// Reordering inside `X`.
    pub reorder: ReorderAxis,
    /// Sampling rate `σ`-rate at every HOP.
    pub sampling_rate: f64,
    /// Clock quality at every HOP.
    pub clock: ClockAxis,
    /// Deployment state of the path.
    pub deploy: DeployAxis,
    /// The lie under test.
    pub adversary: AdversaryAxis,
    /// Master seed; every random choice in the cell derives from it.
    pub seed: u64,
}

impl Cell {
    /// Compact human-readable label.
    pub fn label(&self) -> String {
        format!(
            "cell{:03} {} {} {} σ={:.2} {} {} {}",
            self.id,
            self.delay_token(),
            self.loss_token(),
            self.reorder_token(),
            self.sampling_rate,
            self.clock.name(),
            self.deploy.name(),
            self.adversary.name()
        )
    }

    /// Detailed delay token ("const300us", "jitter100+800us",
    /// "congested").
    pub fn delay_token(&self) -> &'static str {
        match self.delay {
            DelayAxis::Constant => "const300us",
            DelayAxis::Jitter => "jitter100+800us",
            DelayAxis::Congested => "congested",
        }
    }

    /// Detailed loss token.
    pub fn loss_token(&self) -> String {
        match self.loss {
            LossAxis::None => "lossless".to_string(),
            LossAxis::Uniform(r) => format!("uniform{:.0}%", r * 100.0),
            LossAxis::Gilbert(r, b) => format!("gilbert{:.0}%xb{b:.0}", r * 100.0),
        }
    }

    /// Detailed reorder token.
    pub fn reorder_token(&self) -> String {
        match self.reorder {
            ReorderAxis::None => "inorder".to_string(),
            ReorderAxis::Window { p, shift_us } => {
                format!("reorder{:.0}%<{}us", p * 100.0, shift_us)
            }
        }
    }
}

/// What a cell's evaluation concluded. Field order (and therefore the
/// serialized form) is stable; `tests/scenario_matrix.rs` compares two
/// evaluations of one cell byte for byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellVerdict {
    /// The evaluated cell's id.
    pub id: usize,
    /// The evaluated cell's label.
    pub label: String,
    /// Packets injected at the path head.
    pub trace_len: usize,
    /// Honest run: did every inter-domain link check out?
    pub honest_consistent: bool,
    /// Honest run: receipt-derived loss rate for `X` (for partial
    /// deployment, for the segment spanning `X`).
    pub x_loss_est: f64,
    /// Honest run: ground-truth loss rate for `X`.
    pub x_loss_truth: f64,
    /// Honest run: receipt-derived median transit delay for `X` (ms;
    /// for partial deployment, for the segment spanning `X`).
    pub x_delay_est_ms: f64,
    /// Honest run: ground-truth median transit delay for `X` (ms).
    pub x_delay_truth_ms: f64,
    /// Honest run: matched samples backing the `X` delay estimate.
    pub matched_samples: usize,
    /// Adversary run: links flagged inconsistent, as `(up, down)` HOPs.
    pub flagged_links: Vec<(u16, u16)>,
    /// Adversary run: one-line account of how the lie surfaced.
    pub exposure: String,
    /// Every per-cell invariant that failed (empty = cell passes).
    pub failures: Vec<String>,
}

impl CellVerdict {
    /// Did every invariant hold?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Tolerances for the accuracy invariant (the paper's Figures 2/3
/// operate in this regime for comparable sample counts).
const LOSS_TOL: f64 = 0.04;
const DELAY_TOL_MS: f64 = 0.25;
const DELAY_REL_TOL: f64 = 0.25;

/// Loss the two liars of [`AdversaryAxis::TwoLiars`] carry inside
/// their own domains (`L` and `N`), independent of the `X` loss axis.
const TWO_LIAR_LOSS: (f64, f64) = (0.10, 4.0);

/// The delay-accuracy tolerance for a cell given the ground-truth
/// median: base tolerance plus clock-skew slack.
fn delay_tolerance(cell: &Cell, truth_ms: f64) -> f64 {
    DELAY_TOL_MS.max(DELAY_REL_TOL * truth_ms) + cell.clock.slack_ms()
}

/// The ground-truth band the delay estimate must land in. For the
/// closed-form delay models the band collapses to the true median; a
/// congestion series is bimodal (quiet vs. burst), so the *sample*
/// median's realization noise across the gap is unbounded and the
/// estimate is instead checked against the q30–q70 truth band (a
/// ±2σ-of-the-sample-median band for ≥ 90 samples is within ±11
/// percentiles; q30–q70 leaves 4σ of margin).
fn truth_delay_band(cell: &Cell, truth_delays_ms: &[f64]) -> (f64, f64) {
    match cell.delay {
        DelayAxis::Congested => (
            quantile(truth_delays_ms, 0.3),
            quantile(truth_delays_ms, 0.7),
        ),
        _ => {
            let m = median(truth_delays_ms);
            (m, m)
        }
    }
}

/// The default grid: delay (3) × loss (3) × reorder (2) × sampling
/// rate (2) × clock (2) = 72 environments, each contributing three
/// cells — two full-deployment cells cycling deterministically through
/// the legal adversary strategies, plus a third slot that alternates
/// between a partial-deployment (honest) cell and another adversary —
/// 216 cells total.
pub fn full_grid(base_seed: u64) -> Vec<Cell> {
    let delays = DelayAxis::ALL;
    let losses = [
        LossAxis::None,
        LossAxis::Uniform(0.05),
        LossAxis::Gilbert(0.12, 4.0),
    ];
    let reorders = [
        ReorderAxis::None,
        ReorderAxis::Window {
            p: 0.05,
            shift_us: 300,
        },
    ];
    let rates = [0.05, 0.02];
    let clocks = ClockAxis::ALL;
    let all = AdversaryAxis::ALL;
    // Deterministically pick the next strategy legal in the
    // environment; the cursor persists across environments so every
    // strategy lands in many of them.
    fn next_legal(
        all: &[AdversaryAxis],
        cursor: &mut usize,
        delay: DelayAxis,
        loss: LossAxis,
        clock: ClockAxis,
    ) -> AdversaryAxis {
        loop {
            let cand = all[*cursor % all.len()]; // vpm-lint: allow(R1, all is the fixed, non-empty axis table)
            *cursor += 1;
            if cand.legal(delay, loss, clock) {
                return cand;
            }
        }
    }

    let mut cells = Vec::new();
    let mut cursor = 0usize;
    let mut env_idx = 0usize;
    let push = |cells: &mut Vec<Cell>, delay, loss, reorder, rate, clock, deploy, adversary| {
        let id = cells.len();
        cells.push(Cell {
            id,
            delay,
            loss,
            reorder,
            sampling_rate: rate,
            clock,
            deploy,
            adversary,
            seed: base_seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(id as u64),
        });
    };
    for delay in delays {
        for loss in losses {
            for reorder in reorders {
                for rate in rates {
                    for clock in clocks {
                        for _ in 0..2 {
                            let adversary = next_legal(&all, &mut cursor, delay, loss, clock);
                            push(
                                &mut cells,
                                delay,
                                loss,
                                reorder,
                                rate,
                                clock,
                                DeployAxis::Full,
                                adversary,
                            );
                        }
                        // Third slot: every other environment tests
                        // partial deployment (honest — lying with a
                        // non-deployer in the gap is exercised by the
                        // dedicated integration tests).
                        if env_idx.is_multiple_of(2) {
                            push(
                                &mut cells,
                                delay,
                                loss,
                                reorder,
                                rate,
                                clock,
                                DeployAxis::Partial,
                                AdversaryAxis::Honest,
                            );
                        } else {
                            let adversary = next_legal(&all, &mut cursor, delay, loss, clock);
                            push(
                                &mut cells,
                                delay,
                                loss,
                                reorder,
                                rate,
                                clock,
                                DeployAxis::Full,
                                adversary,
                            );
                        }
                        env_idx += 1;
                    }
                }
            }
        }
    }
    cells
}

/// Per-packet fates of the cell's trace through the congested
/// bottleneck (the Figure-2 congestion methodology scaled to the
/// cell's 40 kpps trace: bursty UDP oversubscribes the link while ON,
/// the queue oscillates through several milliseconds, and drops stay
/// rare).
///
/// The series is generated over the full trace schedule and applied
/// positionally to X's input stream. When an upstream domain thins
/// that stream (two-liar cells, where `L` carries loss), the series
/// acts as a fixed *exogenous* congestion schedule rather than a
/// closed-loop function of X's exact arrivals — still a valid bursty
/// delay process (truth and estimates both derive from the applied
/// delays), just not re-simulated per survivor set.
fn congested_fates(cell: &Cell, trace: &[TracePacket]) -> Vec<PacketFate> {
    // Sized against the cell's ~130 Mbps foreground so the queue
    // oscillates through several milliseconds without tail drops, with
    // bursts short enough (~12 ms cycle) that the delay process mixes
    // ~10 times within the 120 ms trace — congestion states must
    // decorrelate across marker windows or the matched-sample median
    // degenerates to a handful of effective observations.
    let bottleneck = BottleneckConfig {
        rate_bps: 200e6,
        queue_limit: SimDuration::from_millis(30),
        prop_delay: SimDuration::from_micros(500),
    };
    let cross = CrossTraffic::BurstyUdp {
        rate_bps: 400e6,
        mean_on: SimDuration::from_millis(2),
        mean_off: SimDuration::from_millis(10),
        pkt_bytes: 1250,
    };
    foreground_delays(trace, &bottleneck, &cross, cell.seed ^ 0x0b07)
}

fn x_channel(cell: &Cell, trace: &[TracePacket]) -> ChannelConfig {
    let delay = match cell.delay {
        DelayAxis::Constant => DelayModel::Constant(SimDuration::from_micros(300)),
        DelayAxis::Jitter => DelayModel::Jitter {
            base: SimDuration::from_micros(100),
            jitter: SimDuration::from_micros(800),
        },
        DelayAxis::Congested => DelayModel::Series(congested_fates(cell, trace)),
    };
    ChannelConfig {
        delay,
        loss: cell.loss.channel_loss(),
        reorder: cell.reorder.model(),
        seed: cell.seed ^ 0xc4a1,
    }
}

fn topology(cell: &Cell, trace: &[TracePacket]) -> Topology {
    let mut fig = Figure1::ideal();
    fig.x_transit = x_channel(cell, trace);
    if cell.adversary == AdversaryAxis::TwoLiars {
        // The liars are L and N; give each loss of its own to hide.
        let (rate, burst) = TWO_LIAR_LOSS;
        fig.l_transit = ChannelConfig {
            delay: DelayModel::Constant(SimDuration::from_micros(300)),
            loss: Some((rate, burst)),
            reorder: ReorderModel::none(),
            seed: cell.seed ^ 0x11a2,
        };
        fig.n_transit = ChannelConfig {
            delay: DelayModel::Constant(SimDuration::from_micros(300)),
            loss: Some((rate, burst)),
            reorder: ReorderModel::none(),
            seed: cell.seed ^ 0x22b3,
        };
    }
    fig.build()
}

fn run_config(cell: &Cell) -> RunConfig {
    RunConfig {
        sampling_rate: cell.sampling_rate,
        aggregate_size: 400,
        // Near the paper's µ = 10⁻³ regime: markers are identifiable
        // (digest above µ) and always sampled, so they MUST stay a
        // small fraction of the sample set or a sample-bias attacker
        // fast-pathing the top of digest space skews the estimate.
        marker_rate: 2e-3,
        j_window: SimDuration::from_millis(2),
        clocks: cell.clock.mode(),
        seed: cell.seed ^ 0x10c5,
        ..RunConfig::default()
    }
}

fn trace(cell: &Cell) -> Vec<TracePacket> {
    TraceGenerator::new(TraceConfig {
        target_pps: 40_000.0,
        duration: SimDuration::from_millis(120),
        ..TraceConfig::paper_default(1, cell.seed ^ 0x7ace)
    })
    .generate()
}

/// Quantile of an unsorted sample (NaN for an empty one), via the same
/// Hyndman-Fan estimator the verifier uses.
fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    vpm_stats::empirical_quantile(&v, q)
}

/// Median of an unsorted sample (NaN for an empty one).
fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// The receipt-derived median delay of an estimate (NaN when no
/// samples matched).
fn est_median(estimate: &vpm_core::verify::DomainEstimate) -> f64 {
    estimate
        .delay
        .as_ref()
        .and_then(|d| {
            d.quantiles
                .iter()
                .find(|q| (q.q - 0.5).abs() < 1e-9)
                .map(|q| q.value)
        })
        .unwrap_or(f64::NAN)
}

fn flagged(analysis: &PathAnalysis) -> Vec<(u16, u16)> {
    analysis
        .flagged_links()
        .iter()
        .map(|l| (l.up.0, l.down.0))
        .collect()
}

/// The L→X inter-domain link (where a lie by `L`'s egress surfaces).
const LX_LINK: (u16, u16) = (3, 4);
/// The X→N inter-domain link, where every lie by `X`'s egress must
/// surface.
const XN_LINK: (u16, u16) = (5, 6);
/// The N→D inter-domain link (where a lie by `N`'s egress surfaces).
const ND_LINK: (u16, u16) = (7, 8);
/// One-way delay of each ideal inter-domain link, in ms.
const LINK_DELAY_MS: f64 = 0.05;

/// Evaluate one cell. Pure: the same cell always produces the same
/// verdict, byte for byte.
#[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
pub fn evaluate_cell(cell: &Cell) -> CellVerdict {
    let t = trace(cell);
    let topo = topology(cell, &t);
    let cfg = run_config(cell);
    let honest_run = run_path(&t, &topo, &cfg);
    let honest = analyze_path(&topo, &honest_run);

    let mut failures = Vec::new();

    // --- Invariant 1: honest receipts are consistent everywhere, ---
    // --- under ideal AND NTP-grade clocks (no false accusations). ---
    let honest_consistent = honest.all_consistent();
    if !honest_consistent {
        failures.push(format!(
            "honest run ({} clocks) flagged links {:?}",
            cell.clock.name(),
            flagged(&honest)
        ));
    }

    // --- Invariant 2: estimates track retained ground truth. ---
    let x_truth = honest_run.truth("X").expect("X is on the path"); // vpm-lint: allow(R1, X is a fixed transit domain of the Figure-1 topology)
    let x_loss_truth = 1.0 - x_truth.delivered as f64 / x_truth.sent as f64;
    let x_delay_truth_ms = median(&x_truth.delays_ms);

    let (band_lo, band_hi) = truth_delay_band(cell, &x_truth.delays_ms);

    // Under full deployment X's own report is checked; under partial
    // deployment X produces no receipts and the bracketing 3→6 segment
    // must localize its behaviour instead (§8).
    let (x_loss_est, x_delay_est_ms, matched_samples, delay_offset_ms) = match cell.deploy {
        DeployAxis::Full => {
            let x_report = honest.domain("X").expect("X is a transit domain"); // vpm-lint: allow(R1, X is a fixed transit domain of the Figure-1 topology)
            (
                x_report.estimate.loss.rate().unwrap_or(f64::NAN),
                est_median(&x_report.estimate),
                x_report.estimate.matched_samples,
                0.0,
            )
        }
        DeployAxis::Partial => {
            let x_id = topo.domain_by_name("X").expect("X exists").id; // vpm-lint: allow(R1, X is a fixed transit domain of the Figure-1 topology)
            let deployed: HashSet<DomainId> = topo
                .domains
                .iter()
                .filter(|d| d.id != x_id)
                .map(|d| d.id)
                .collect();
            let pa = analyze_partial(&topo, &honest_run, &deployed);
            match pa.segment_spanning(x_id) {
                None => {
                    // Impossible on Figure 1 by construction; recorded
                    // as a failure (NaN estimates fail the tolerance
                    // checks below too) rather than special-cased.
                    failures.push("partial analysis produced no segment spanning X".to_string());
                    (f64::NAN, f64::NAN, 0, 0.0)
                }
                Some(seg) => {
                    if (seg.up_hop, seg.down_hop) != (HopId(3), HopId(6)) {
                        failures.push(format!(
                            "segment spanning X is {}→{}, expected 3→6",
                            seg.up_hop, seg.down_hop
                        ));
                    }
                    // The segment includes the two ideal inter-domain
                    // links bracketing X.
                    (
                        seg.estimate.loss.rate().unwrap_or(f64::NAN),
                        est_median(&seg.estimate),
                        seg.estimate.matched_samples,
                        2.0 * LINK_DELAY_MS,
                    )
                }
            }
        }
    };

    // NaN-safe: an unavailable estimate must count as out of tolerance.
    let loss_ok = (x_loss_est - x_loss_truth).abs() <= LOSS_TOL;
    if !loss_ok {
        failures.push(format!(
            "X loss estimate {x_loss_est:.4} strays from truth {x_loss_truth:.4}"
        ));
    }
    let delay_tol = delay_tolerance(cell, x_delay_truth_ms + delay_offset_ms);
    let (lo, hi) = (
        band_lo + delay_offset_ms - delay_tol,
        band_hi + delay_offset_ms + delay_tol,
    );
    // NaN-safe: a NaN estimate must count as out of tolerance.
    let delay_ok = x_delay_est_ms >= lo && x_delay_est_ms <= hi;
    if !delay_ok {
        failures.push(format!(
            "X median delay estimate {x_delay_est_ms:.4} ms outside truth band \
             [{lo:.4}, {hi:.4}] ms"
        ));
    }
    // Neighbors in the honest run: clean — except in two-liar cells,
    // where L and N carry loss of their own and must instead be
    // *measured* accurately before they start lying.
    for name in ["L", "N"] {
        let report = honest.domain(name).expect("transit domain"); // vpm-lint: allow(R1, the name iterates over known Figure-1 transit domains)
        let loss = report.estimate.loss.rate().unwrap_or(f64::NAN);
        if cell.adversary == AdversaryAxis::TwoLiars {
            let truth = honest_run.truth(name).expect("truth retained"); // vpm-lint: allow(R1, truth is retained for every transit domain of the run)
            let truth_rate = 1.0 - truth.delivered as f64 / truth.sent as f64;
            // NaN-safe: an unavailable estimate must count as out of
            // tolerance.
            if loss.is_nan() || (loss - truth_rate).abs() > LOSS_TOL {
                failures.push(format!(
                    "honest liar-to-be {name} measured {loss:.4} vs truth {truth_rate:.4}"
                ));
            }
        } else if loss.is_nan() || loss > 0.02 {
            failures.push(format!("honest neighbor {name} shows loss {loss:.4}"));
        }
    }

    // --- Invariant 3: the cell's lie is exposed where it must be. ---
    let (flagged_links, exposure) = match cell.adversary {
        AdversaryAxis::Honest => match cell.deploy {
            DeployAxis::Full => (Vec::new(), "no adversary".to_string()),
            DeployAxis::Partial => (
                Vec::new(),
                format!(
                    "partial deployment: segment 3→6 localizes X \
                     (loss {x_loss_est:.3} vs truth {x_loss_truth:.3})"
                ),
            ),
        },
        AdversaryAxis::BlameShift => {
            let mut run = honest_run.clone();
            apply_lies(
                &mut run,
                &[LieSite {
                    ingress: HopId(4),
                    egress: HopId(5),
                    strategy: LieStrategy::BlameShiftLoss {
                        claimed_delay: SimDuration::from_micros(300),
                    },
                }],
            );
            let analysis = analyze_path(&topo, &run);
            let fl = flagged(&analysis);
            let x_est = analysis
                .domain("X")
                .expect("X") // vpm-lint: allow(R1, X is a fixed transit domain of the Figure-1 topology)
                .estimate
                .loss
                .rate()
                .unwrap_or(f64::NAN);
            // NaN-safe: a broken post-lie estimate is a failure too.
            let hidden = x_est < 0.02;
            if !hidden {
                failures.push(format!("blame-shift failed to hide X loss ({x_est:.4})"));
            }
            if !fl.contains(&XN_LINK) {
                failures.push(format!("blame-shift not flagged on X→N link ({fl:?})"));
            }
            if fl.iter().any(|&l| l != XN_LINK) {
                failures.push(format!("blame-shift flagged innocent links ({fl:?})"));
            }
            let detail = format!(
                "X hid loss {x_loss_truth:.3}→{x_est:.3}; link 5→6 flagged: {}",
                fl.contains(&XN_LINK)
            );
            (fl, detail)
        }
        AdversaryAxis::Sugarcoat => {
            let mut run = honest_run.clone();
            apply_lies(
                &mut run,
                &[LieSite {
                    ingress: HopId(4),
                    egress: HopId(5),
                    strategy: LieStrategy::SugarcoatDelay {
                        shave: SimDuration::from_millis(5),
                    },
                }],
            );
            let analysis = analyze_path(&topo, &run);
            let fl = flagged(&analysis);
            if !fl.contains(&XN_LINK) {
                failures.push(format!("sugarcoat not flagged on X→N link ({fl:?})"));
            }
            if fl.iter().any(|&l| l != XN_LINK) {
                failures.push(format!("sugarcoat flagged innocent links ({fl:?})"));
            }
            let detail = format!("X shaved 5 ms; link 5→6 flagged: {}", fl.contains(&XN_LINK));
            (fl, detail)
        }
        AdversaryAxis::MarkerDrop => {
            let mut attack_cfg = cfg.clone();
            attack_cfg.marker_dropper = Some(topo.domain_by_name("X").expect("X exists").id); // vpm-lint: allow(R1, X is a fixed transit domain of the Figure-1 topology)
            let attacked = run_path(&t, &topo, &attack_cfg);
            let analysis = analyze_path(&topo, &attacked);
            let fl = flagged(&analysis);
            // §5.3: markers are *expected* receipts. X's ingress sampled
            // markers that no HOP downstream of X ever acknowledges —
            // standing evidence pinned between HOPs 4 and 6.
            let marker = Threshold::from_rate(attack_cfg.marker_rate);
            let downstream: HashSet<_> = attacked
                .hop(HopId(6))
                .expect("N ingress") // vpm-lint: allow(R1, hop 6 is N's ingress in the fixed Figure-1 layout)
                .samples
                .iter()
                .map(|r| r.pkt_id)
                .collect();
            let vanished = attacked
                .hop(HopId(4))
                .expect("X ingress") // vpm-lint: allow(R1, hop 4 is X's ingress in the fixed Figure-1 layout)
                .samples
                .iter()
                .filter(|r| marker.passes(r.pkt_id.0) && !downstream.contains(&r.pkt_id))
                .count();
            let matched = |run: &PathRun| {
                vpm_core::verify::match_samples(
                    &run.hop(HopId(4)).expect("hop 4").samples, // vpm-lint: allow(R1, hop 4 exists in the fixed Figure-1 layout)
                    &run.hop(HopId(6)).expect("hop 6").samples, // vpm-lint: allow(R1, hop 6 exists in the fixed Figure-1 layout)
                )
                .len()
            };
            let m_honest = matched(&honest_run);
            let m_attacked = matched(&attacked);
            if vanished == 0 {
                failures.push("marker-drop left no vanished-marker evidence".to_string());
            }
            if (m_attacked as f64) >= 0.7 * m_honest as f64 {
                failures.push(format!(
                    "marker-drop did not collapse sample matching ({m_honest}→{m_attacked})"
                ));
            }
            let detail = format!(
                "{vanished} expected markers vanished inside X; matches {m_honest}→{m_attacked}"
            );
            (fl, detail)
        }
        AdversaryAxis::Collude => {
            let mut run = honest_run.clone();
            apply_lies(
                &mut run,
                &[LieSite {
                    ingress: HopId(4),
                    egress: HopId(5),
                    strategy: LieStrategy::BlameShiftLoss {
                        claimed_delay: SimDuration::from_micros(300),
                    },
                }],
            );
            let liar_egress = run.hop(HopId(5)).expect("X egress").clone(); // vpm-lint: allow(R1, hop 5 is X's egress in the fixed Figure-1 layout)
            cover_up(&liar_egress, run.hop_mut(HopId(6)).expect("N ingress")); // vpm-lint: allow(R1, hop 6 is N's ingress in the fixed Figure-1 layout)
            let analysis = analyze_path(&topo, &run);
            let fl = flagged(&analysis);
            // The coalition hides the X→N mismatch…
            if fl.contains(&XN_LINK) {
                failures.push("cover-up failed to hide the X→N link".to_string());
            }
            // …but §3.1: the loss does not vanish — the accomplice's own
            // books inherit it.
            let n_est = analysis
                .domain("N")
                .expect("N") // vpm-lint: allow(R1, N is a fixed transit domain of the Figure-1 topology)
                .estimate
                .loss
                .rate()
                .unwrap_or(0.0);
            if n_est < 0.5 * x_loss_truth {
                failures.push(format!(
                    "accomplice N absorbed only {n_est:.4} of X's {x_loss_truth:.4} loss"
                ));
            }
            let detail =
                format!("coalition quiet; N absorbed X's loss ({n_est:.3} vs {x_loss_truth:.3})");
            (fl, detail)
        }
        AdversaryAxis::SampleBias => {
            // X fast-paths packets whose digest passes the σ threshold —
            // its best guess at "will be sampled". Algorithm 1 keys the
            // real sampling decision on a *future marker*, so the guess
            // misses and the estimate still tracks the slow path.
            let digests: Vec<_> = t.iter().map(|tp| tp.packet.digest()).collect();
            let guess = Threshold::from_rate(cell.sampling_rate);
            let mut rng_seed = cell.seed ^ 0xb1a5;
            let fates: Vec<PacketFate> = digests
                .iter()
                .map(|d| {
                    // Deterministic per-packet slow-path delay drawn from
                    // the cell's delay model (splitmix over the seed).
                    rng_seed = rng_seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = rng_seed;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^= z >> 31;
                    let slow = match cell.delay {
                        DelayAxis::Jitter => SimDuration::from_micros(100 + z % 801),
                        // Constant (Congested is never paired with this
                        // adversary — no closed-form slow path exists).
                        _ => SimDuration::from_micros(300),
                    };
                    if guess.passes(d.0) {
                        PacketFate::Delivered(cell.delay.fast_path())
                    } else {
                        PacketFate::Delivered(slow)
                    }
                })
                .collect();
            let mut fig = Figure1::ideal();
            fig.x_transit = ChannelConfig {
                delay: DelayModel::Series(fates),
                loss: cell.loss.channel_loss(),
                reorder: cell.reorder.model(),
                seed: cell.seed ^ 0xc4a1,
            };
            let biased_topo = fig.build();
            let biased_run = run_path(&t, &biased_topo, &cfg);
            let analysis = analyze_path(&biased_topo, &biased_run);
            let fl = flagged(&analysis);
            let truth = biased_run.truth("X").expect("X"); // vpm-lint: allow(R1, X is a fixed transit domain of the Figure-1 topology)
            let truth_med = median(&truth.delays_ms);
            let est_med = est_median(&analysis.domain("X").expect("X").estimate); // vpm-lint: allow(R1, X is a fixed transit domain of the Figure-1 topology)
            let fast_ms = cell.delay.fast_path().as_nanos() as f64 / 1e6;
            let tol = delay_tolerance(cell, truth_med);
            // NaN-safe: a NaN estimate must count as a failure.
            let tracks_truth = (est_med - truth_med).abs() <= tol;
            if !tracks_truth {
                failures.push(format!(
                    "bias skewed the estimate: {est_med:.4} ms vs truth {truth_med:.4} ms"
                ));
            }
            let above_fast_path = est_med > 3.0 * fast_ms;
            if !above_fast_path {
                failures.push(format!(
                    "estimate {est_med:.4} ms collapsed toward the fast path {fast_ms:.4} ms"
                ));
            }
            let detail = format!(
                "bias defeated: estimate {est_med:.3} ms tracks truth {truth_med:.3} ms, \
                 not the {fast_ms:.3} ms fast path"
            );
            (fl, detail)
        }
        AdversaryAxis::TwoLiars => {
            // L and N each hide their own loss by fabricating egress
            // receipts — independently, without coordination.
            let mut run = honest_run.clone();
            apply_lies(
                &mut run,
                &[
                    LieSite {
                        ingress: HopId(2),
                        egress: HopId(3),
                        strategy: LieStrategy::BlameShiftLoss {
                            claimed_delay: SimDuration::from_micros(300),
                        },
                    },
                    LieSite {
                        ingress: HopId(6),
                        egress: HopId(7),
                        strategy: LieStrategy::BlameShiftLoss {
                            claimed_delay: SimDuration::from_micros(300),
                        },
                    },
                ],
            );
            let analysis = analyze_path(&topo, &run);
            let fl = flagged(&analysis);
            // Both liars now look lossless from their own receipts…
            for name in ["L", "N"] {
                let est = analysis
                    .domain(name)
                    .expect("liar domain") // vpm-lint: allow(R1, the liar domain is a fixed transit of the Figure-1 topology)
                    .estimate
                    .loss
                    .rate()
                    .unwrap_or(f64::NAN);
                if est.is_nan() || est >= 0.02 {
                    failures.push(format!("liar {name} failed to hide its loss ({est:.4})"));
                }
            }
            // …and *both* surface, each on an inter-domain link
            // adjacent to itself (§3.1 per liar), with the innocent X
            // between them staying clean.
            for (link, liar) in [(LX_LINK, "L"), (ND_LINK, "N")] {
                if !fl.contains(&link) {
                    failures.push(format!(
                        "liar {liar} not exposed on link {}→{} ({fl:?})",
                        link.0, link.1
                    ));
                }
            }
            if fl.iter().any(|&l| l != LX_LINK && l != ND_LINK) {
                failures.push(format!("two-liar run flagged innocent links ({fl:?})"));
            }
            let detail = format!(
                "both liars exposed: 3→4 flagged {}, 7→8 flagged {}, X clean {}",
                fl.contains(&LX_LINK),
                fl.contains(&ND_LINK),
                !fl.contains(&XN_LINK)
            );
            (fl, detail)
        }
    };

    CellVerdict {
        id: cell.id,
        label: cell.label(),
        trace_len: t.len(),
        honest_consistent,
        x_loss_est,
        x_loss_truth,
        x_delay_est_ms,
        x_delay_truth_ms,
        matched_samples,
        flagged_links,
        exposure,
        failures,
    }
}

/// Evaluate many cells, `jobs` at a time, merging verdicts in cell
/// order. [`evaluate_cell`] is pure and the fan-out runs on
/// [`vpm_core::par_map_indexed`] — so the result (and its serialized
/// form) is byte-identical for every `jobs >= 1`.
pub fn evaluate_grid(cells: &[Cell], jobs: usize) -> Vec<CellVerdict> {
    vpm_core::par_map_indexed(cells, jobs, |_, cell| evaluate_cell(cell))
}

/// One `axis=value` predicate over cells (the `--filter` grammar of
/// `vpm matrix`).
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixFilter {
    /// `delay=<`[`DelayAxis::name`]`>`
    Delay(DelayAxis),
    /// `loss=<`[`LossAxis::family`]`>`
    Loss(&'static str),
    /// `reorder=<`[`ReorderAxis::family`]`>`
    Reorder(&'static str),
    /// `rate=<f64>` (exact sampling-rate match)
    Rate(f64),
    /// `clock=<`[`ClockAxis::name`]`>`
    Clock(ClockAxis),
    /// `deploy=<`[`DeployAxis::name`]`>`
    Deploy(DeployAxis),
    /// `adversary=<`[`AdversaryAxis::name`]`>`
    Adversary(AdversaryAxis),
}

impl MatrixFilter {
    /// Does the cell match the predicate?
    pub fn matches(&self, cell: &Cell) -> bool {
        match *self {
            MatrixFilter::Delay(v) => cell.delay == v,
            MatrixFilter::Loss(v) => cell.loss.family() == v,
            MatrixFilter::Reorder(v) => cell.reorder.family() == v,
            MatrixFilter::Rate(v) => (cell.sampling_rate - v).abs() < 1e-12,
            MatrixFilter::Clock(v) => cell.clock == v,
            MatrixFilter::Deploy(v) => cell.deploy == v,
            MatrixFilter::Adversary(v) => cell.adversary == v,
        }
    }
}

/// Find the axis level whose name matches `value`; the error lists the
/// legal values (derived from the same canonical array the grid is
/// built from, so new axis levels are filterable without touching the
/// parser).
fn lookup<T: Copy>(
    all: &[T],
    name_of: impl Fn(&T) -> &'static str,
    key: &str,
    value: &str,
) -> Result<T, String> {
    all.iter()
        .copied()
        .find(|v| name_of(v) == value)
        .ok_or_else(|| {
            format!(
                "unknown {key} value '{value}' (expected one of: {})",
                all.iter().map(&name_of).collect::<Vec<_>>().join(", ")
            )
        })
}

/// Parse one `axis=value` filter; the error names the axis's legal
/// values.
pub fn parse_filter(arg: &str) -> Result<MatrixFilter, String> {
    let Some((key, value)) = arg.split_once('=') else {
        return Err(format!("filter '{arg}' is not of the form axis=value"));
    };
    match key {
        "delay" => Ok(MatrixFilter::Delay(lookup(
            &DelayAxis::ALL,
            |v| v.name(),
            key,
            value,
        )?)),
        "loss" => Ok(MatrixFilter::Loss(lookup(
            &LossAxis::FAMILIES,
            |v| v,
            key,
            value,
        )?)),
        "reorder" => Ok(MatrixFilter::Reorder(lookup(
            &ReorderAxis::FAMILIES,
            |v| v,
            key,
            value,
        )?)),
        "rate" => value
            .parse::<f64>()
            .map(MatrixFilter::Rate)
            .map_err(|_| format!("rate value '{value}' is not a number")),
        "clock" => Ok(MatrixFilter::Clock(lookup(
            &ClockAxis::ALL,
            |v| v.name(),
            key,
            value,
        )?)),
        "deploy" => Ok(MatrixFilter::Deploy(lookup(
            &DeployAxis::ALL,
            |v| v.name(),
            key,
            value,
        )?)),
        "adversary" => Ok(MatrixFilter::Adversary(lookup(
            &AdversaryAxis::ALL,
            |v| v.name(),
            key,
            value,
        )?)),
        _ => Err(format!(
            "unknown filter axis '{key}' (expected one of: delay, loss, reorder, rate, clock, \
             deploy, adversary)"
        )),
    }
}

/// Render the verdict table the `vpm matrix` subcommand prints.
/// `cells` and `verdicts` must be parallel slices.
pub fn render_matrix_table(cells: &[Cell], verdicts: &[CellVerdict]) -> String {
    assert_eq!(cells.len(), verdicts.len(), "parallel slices");
    let failed = verdicts.iter().filter(|v| !v.passed()).count();
    let mut s = format!(
        "scenario matrix: {} cells, {} failed\n",
        cells.len(),
        failed
    );
    s.push_str(&format!(
        "{:>4}  {:<15} {:<13} {:<15} {:>5}  {:<5} {:<7} {:<11} {:<4}  {}\n",
        "id", "delay", "loss", "reorder", "σ", "clock", "deploy", "adversary", "ok", "exposure"
    ));
    for (c, v) in cells.iter().zip(verdicts) {
        s.push_str(&format!(
            "{:>4}  {:<15} {:<13} {:<15} {:>5.2}  {:<5} {:<7} {:<11} {:<4}  {}\n",
            c.id,
            c.delay_token(),
            c.loss_token(),
            c.reorder_token(),
            c.sampling_rate,
            c.clock.name(),
            c.deploy.name(),
            c.adversary.name(),
            if v.passed() { "pass" } else { "FAIL" },
            v.exposure
        ));
        for f in &v.failures {
            s.push_str(&format!("      !! {f}\n"));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_216_cells_and_covers_every_axis_value() {
        let grid = full_grid(1);
        assert_eq!(grid.len(), 216);
        let mut delays = HashSet::new();
        let mut adversaries = HashSet::new();
        let mut rates = HashSet::new();
        let mut clocks = HashSet::new();
        let mut deploys = HashSet::new();
        for c in &grid {
            delays.insert(c.delay.name());
            adversaries.insert(c.adversary.name());
            rates.insert(format!("{:.3}", c.sampling_rate));
            clocks.insert(c.clock.name());
            deploys.insert(c.deploy.name());
        }
        assert_eq!(delays.len(), 3);
        assert_eq!(rates.len(), 2);
        assert_eq!(clocks.len(), 2);
        assert_eq!(deploys.len(), 2);
        assert_eq!(
            adversaries.len(),
            7,
            "all seven adversary values must appear: {adversaries:?}"
        );
        for c in &grid {
            // Loss-hiding strategies never land on lossless environments.
            if c.adversary.needs_loss() {
                assert!(c.loss.rate() > 0.0, "{}", c.label());
            }
            // The sample-bias attack needs a closed-form slow path and
            // ideal clocks.
            if c.adversary == AdversaryAxis::SampleBias {
                assert_ne!(c.delay, DelayAxis::Congested, "{}", c.label());
                assert_eq!(c.clock, ClockAxis::Ideal, "{}", c.label());
            }
            // Partial-deployment cells are honest.
            if c.deploy == DeployAxis::Partial {
                assert_eq!(c.adversary, AdversaryAxis::Honest, "{}", c.label());
            }
        }
        // Ids are positional and unique.
        for (i, c) in grid.iter().enumerate() {
            assert_eq!(c.id, i);
        }
    }

    #[test]
    fn grid_is_deterministic_in_the_seed() {
        assert_eq!(full_grid(42), full_grid(42));
        assert_ne!(
            full_grid(1)[0].seed,
            full_grid(2)[0].seed,
            "different base seeds give different cell seeds"
        );
    }

    #[test]
    fn labels_are_unique() {
        let grid = full_grid(7);
        let labels: HashSet<String> = grid.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), grid.len());
    }

    #[test]
    fn one_honest_cell_evaluates_clean() {
        let grid = full_grid(3);
        let cell = grid
            .iter()
            .find(|c| {
                c.adversary == AdversaryAxis::Honest
                    && c.deploy == DeployAxis::Full
                    && c.clock == ClockAxis::Ideal
            })
            .expect("grid contains honest cells");
        let v = evaluate_cell(cell);
        assert!(v.failures.is_empty(), "{:?}", v.failures);
        assert!(v.honest_consistent);
        assert!(v.matched_samples > 0);
    }

    #[test]
    fn evaluate_grid_is_identical_for_any_job_count() {
        let grid = full_grid(5);
        let slice = &grid[..4];
        let serial = evaluate_grid(slice, 1);
        let parallel = evaluate_grid(slice, 3);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn filters_parse_and_select() {
        let grid = full_grid(9);
        let f = parse_filter("adversary=two-liars").unwrap();
        let n = grid.iter().filter(|c| f.matches(c)).count();
        assert!(n > 0, "two-liar cells exist");
        for c in grid.iter().filter(|c| f.matches(c)) {
            assert_eq!(c.adversary, AdversaryAxis::TwoLiars);
        }
        let f = parse_filter("clock=ntp").unwrap();
        assert!(grid.iter().filter(|c| f.matches(c)).count() >= 72);
        let f = parse_filter("deploy=partial").unwrap();
        assert_eq!(grid.iter().filter(|c| f.matches(c)).count(), 36);
        let f = parse_filter("rate=0.05").unwrap();
        assert_eq!(grid.iter().filter(|c| f.matches(c)).count(), 108);

        assert!(parse_filter("nonsense").is_err());
        assert!(parse_filter("delay=warp").is_err());
        assert!(parse_filter("rate=fast").is_err());
        assert!(parse_filter("axis=value").is_err());
    }

    #[test]
    fn table_renders_one_row_per_cell() {
        let grid = full_grid(11);
        let cells = &grid[..2];
        let verdicts = evaluate_grid(cells, 2);
        let table = render_matrix_table(cells, &verdicts);
        assert!(table.starts_with("scenario matrix: 2 cells"));
        assert!(table.lines().count() >= 3, "{table}");
        for c in cells {
            assert!(table.contains(c.adversary.name()), "{table}");
        }
    }
}
