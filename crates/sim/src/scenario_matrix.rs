//! The deterministic scenario matrix.
//!
//! The ROADMAP's north star asks for "as many scenarios as you can
//! imagine"; this module turns that into one enumerable table. A
//! [`Cell`] fixes every free variable of a Figure-1 experiment — the
//! delay model inside the domain under evaluation (`X`), the loss
//! process (none / uniform / bursty Gilbert-Elliott), the reordering
//! window, the HOPs' sampling rate, the adversary strategy, and the
//! RNG seed — and [`evaluate_cell`] replays it end to end:
//!
//! 1. run the path honestly and check the three per-cell invariants
//!    the paper promises: **consistency** (honest receipts never flag a
//!    link), **accuracy** (receipt-derived loss and delay track the
//!    retained ground truth within tolerances), and
//! 2. if the cell names an adversary, re-run (or doctor) the same
//!    scenario with the lie applied and check **exposure**: the lie
//!    surfaces exactly where §3.1 says it must — on an inter-domain
//!    link adjacent to a liar, or (for collusion) as blame absorbed
//!    inside the colluding coalition, or (for sampling bias) as a
//!    defeated attack whose estimates still track the truth.
//!
//! Everything is seeded: evaluating the same cell twice produces
//! byte-identical [`CellVerdict`]s (`tests/scenario_matrix.rs` asserts
//! this via JSON serialization). [`full_grid`] enumerates the default
//! 24-cell sweep the integration suite runs; future PRs extend the
//! grid rather than writing new one-off scenario tests.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use vpm_hash::Threshold;
use vpm_netsim::channel::{ChannelConfig, DelayModel};
use vpm_netsim::congestion::PacketFate;
use vpm_netsim::reorder::ReorderModel;
use vpm_packet::{HopId, SimDuration};
use vpm_trace::{TraceConfig, TraceGenerator, TracePacket};

use crate::adversary::{apply_lie, cover_up, LieStrategy};
use crate::run::{run_path, PathRun, RunConfig};
use crate::topology::{Figure1, Topology};
use crate::verdict::{analyze_path, PathAnalysis};

/// Delay model applied inside domain `X`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DelayAxis {
    /// Constant 300 µs transit.
    Constant,
    /// 100 µs base plus uniform jitter in `[0, 800]` µs.
    Jitter,
}

impl DelayAxis {
    fn model(&self) -> DelayModel {
        match self {
            DelayAxis::Constant => DelayModel::Constant(SimDuration::from_micros(300)),
            DelayAxis::Jitter => DelayModel::Jitter {
                base: SimDuration::from_micros(100),
                jitter: SimDuration::from_micros(800),
            },
        }
    }

    /// Fast-path delay a biased domain gives packets it wants to look
    /// good on (well below either model's typical transit).
    fn fast_path(&self) -> SimDuration {
        SimDuration::from_micros(30)
    }
}

/// Loss process applied inside domain `X`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossAxis {
    /// Lossless.
    None,
    /// Independent (uniform) drops at the given rate — Gilbert-Elliott
    /// with mean burst length 1.
    Uniform(f64),
    /// Bursty Gilbert-Elliott drops: `(rate, mean burst)`.
    Gilbert(f64, f64),
}

impl LossAxis {
    fn channel_loss(&self) -> Option<(f64, f64)> {
        match *self {
            LossAxis::None => None,
            LossAxis::Uniform(rate) => Some((rate, 1.0)),
            LossAxis::Gilbert(rate, burst) => Some((rate, burst)),
        }
    }

    /// Target loss rate of the process.
    pub fn rate(&self) -> f64 {
        match *self {
            LossAxis::None => 0.0,
            LossAxis::Uniform(r) | LossAxis::Gilbert(r, _) => r,
        }
    }
}

/// Reordering window inside domain `X`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReorderAxis {
    /// In-order delivery.
    None,
    /// Bounded reordering: hold-back probability with a shift strictly
    /// below the safety threshold `J`.
    Window {
        /// Probability a packet is held back.
        p: f64,
        /// Hold-back bound in microseconds (< `J`).
        shift_us: u64,
    },
}

impl ReorderAxis {
    fn model(&self) -> ReorderModel {
        match *self {
            ReorderAxis::None => ReorderModel::none(),
            ReorderAxis::Window { p, shift_us } => ReorderModel {
                p_reorder: p,
                max_shift: SimDuration::from_micros(shift_us),
            },
        }
    }
}

/// The lying strategy exercised in a cell (threat model of §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdversaryAxis {
    /// Everyone reports honestly.
    Honest,
    /// `X` hides its loss by fabricating egress receipts for every
    /// packet its ingress saw (§3.1).
    BlameShift,
    /// `X` hides delay by shaving its egress timestamps (§3.1).
    Sugarcoat,
    /// `X` drops the marker packets that drive Algorithm 1 (§5.3).
    MarkerDrop,
    /// `X` blame-shifts and its downstream neighbor `N` covers the lie
    /// (§3.1 collusion).
    Collude,
    /// `X` fast-paths the packets it *guesses* will be sampled — the
    /// bias attack Algorithm 1 is designed to defeat (§5.1).
    SampleBias,
}

impl AdversaryAxis {
    /// Stable label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AdversaryAxis::Honest => "honest",
            AdversaryAxis::BlameShift => "blame-shift",
            AdversaryAxis::Sugarcoat => "sugarcoat",
            AdversaryAxis::MarkerDrop => "marker-drop",
            AdversaryAxis::Collude => "collude",
            AdversaryAxis::SampleBias => "sample-bias",
        }
    }

    /// Strategies that only make sense when the domain has loss to
    /// hide.
    fn needs_loss(&self) -> bool {
        matches!(self, AdversaryAxis::BlameShift | AdversaryAxis::Collude)
    }
}

/// One fully specified scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Position in the grid (stable across runs).
    pub id: usize,
    /// Delay model inside `X`.
    pub delay: DelayAxis,
    /// Loss process inside `X`.
    pub loss: LossAxis,
    /// Reordering inside `X`.
    pub reorder: ReorderAxis,
    /// Sampling rate `σ`-rate at every HOP.
    pub sampling_rate: f64,
    /// The lie under test.
    pub adversary: AdversaryAxis,
    /// Master seed; every random choice in the cell derives from it.
    pub seed: u64,
}

impl Cell {
    /// Compact human-readable label.
    pub fn label(&self) -> String {
        let delay = match self.delay {
            DelayAxis::Constant => "const300us",
            DelayAxis::Jitter => "jitter100+800us",
        };
        let loss = match self.loss {
            LossAxis::None => "lossless".to_string(),
            LossAxis::Uniform(r) => format!("uniform{:.0}%", r * 100.0),
            LossAxis::Gilbert(r, b) => format!("gilbert{:.0}%xb{b:.0}", r * 100.0),
        };
        let reorder = match self.reorder {
            ReorderAxis::None => "inorder".to_string(),
            ReorderAxis::Window { p, shift_us } => {
                format!("reorder{:.0}%<{}us", p * 100.0, shift_us)
            }
        };
        format!(
            "cell{:02} {delay} {loss} {reorder} σ={:.2} {}",
            self.id,
            self.sampling_rate,
            self.adversary.name()
        )
    }
}

/// What a cell's evaluation concluded. Field order (and therefore the
/// serialized form) is stable; `tests/scenario_matrix.rs` compares two
/// evaluations of one cell byte for byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellVerdict {
    /// The evaluated cell's id.
    pub id: usize,
    /// The evaluated cell's label.
    pub label: String,
    /// Packets injected at the path head.
    pub trace_len: usize,
    /// Honest run: did every inter-domain link check out?
    pub honest_consistent: bool,
    /// Honest run: receipt-derived loss rate for `X`.
    pub x_loss_est: f64,
    /// Honest run: ground-truth loss rate for `X`.
    pub x_loss_truth: f64,
    /// Honest run: receipt-derived median transit delay for `X` (ms).
    pub x_delay_est_ms: f64,
    /// Honest run: ground-truth median transit delay for `X` (ms).
    pub x_delay_truth_ms: f64,
    /// Honest run: matched samples backing the `X` delay estimate.
    pub matched_samples: usize,
    /// Adversary run: links flagged inconsistent, as `(up, down)` HOPs.
    pub flagged_links: Vec<(u16, u16)>,
    /// Adversary run: one-line account of how the lie surfaced.
    pub exposure: String,
    /// Every per-cell invariant that failed (empty = cell passes).
    pub failures: Vec<String>,
}

/// Tolerances for the accuracy invariant (the paper's Figures 2/3
/// operate in this regime for comparable sample counts).
const LOSS_TOL: f64 = 0.04;
const DELAY_TOL_MS: f64 = 0.25;
const DELAY_REL_TOL: f64 = 0.25;

/// The default grid: every combination of delay × loss × reorder
/// (2 × 3 × 2 = 12 environments) evaluated at two sampling rates, with
/// the adversary axis cycling so that each strategy appears several
/// times — 24 cells total.
pub fn full_grid(base_seed: u64) -> Vec<Cell> {
    let delays = [DelayAxis::Constant, DelayAxis::Jitter];
    let losses = [
        LossAxis::None,
        LossAxis::Uniform(0.05),
        LossAxis::Gilbert(0.12, 4.0),
    ];
    let reorders = [
        ReorderAxis::None,
        ReorderAxis::Window {
            p: 0.05,
            shift_us: 300,
        },
    ];
    let rates = [0.05, 0.02];
    let all = [
        AdversaryAxis::Honest,
        AdversaryAxis::BlameShift,
        AdversaryAxis::Sugarcoat,
        AdversaryAxis::MarkerDrop,
        AdversaryAxis::Collude,
        AdversaryAxis::SampleBias,
    ];

    let mut cells = Vec::new();
    let mut cursor = 0usize;
    for delay in delays {
        for loss in losses {
            for reorder in reorders {
                for rate in rates {
                    // Deterministically pick the next strategy that is
                    // legal for this environment.
                    let adversary = loop {
                        let cand = all[cursor % all.len()];
                        cursor += 1;
                        if !cand.needs_loss() || loss.rate() > 0.0 {
                            break cand;
                        }
                    };
                    let id = cells.len();
                    cells.push(Cell {
                        id,
                        delay,
                        loss,
                        reorder,
                        sampling_rate: rate,
                        adversary,
                        seed: base_seed
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            .wrapping_add(id as u64),
                    });
                }
            }
        }
    }
    cells
}

fn x_channel(cell: &Cell) -> ChannelConfig {
    ChannelConfig {
        delay: cell.delay.model(),
        loss: cell.loss.channel_loss(),
        reorder: cell.reorder.model(),
        seed: cell.seed ^ 0xc4a1,
    }
}

fn topology(cell: &Cell) -> Topology {
    let mut fig = Figure1::ideal();
    fig.x_transit = x_channel(cell);
    fig.build()
}

fn run_config(cell: &Cell) -> RunConfig {
    RunConfig {
        sampling_rate: cell.sampling_rate,
        aggregate_size: 400,
        marker_rate: 0.01,
        j_window: SimDuration::from_millis(2),
        seed: cell.seed ^ 0x10c5,
        ..RunConfig::default()
    }
}

fn trace(cell: &Cell) -> Vec<TracePacket> {
    TraceGenerator::new(TraceConfig {
        target_pps: 40_000.0,
        duration: SimDuration::from_millis(120),
        ..TraceConfig::paper_default(1, cell.seed ^ 0x7ace)
    })
    .generate()
}

/// Median of an unsorted sample (NaN for an empty one), via the same
/// Hyndman-Fan estimator the verifier uses.
fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("delays are finite"));
    vpm_stats::empirical_quantile(&v, 0.5)
}

/// The receipt-derived median delay of a domain report (NaN when no
/// samples matched).
fn est_median(report: &crate::verdict::DomainReport) -> f64 {
    report
        .estimate
        .delay
        .as_ref()
        .and_then(|d| {
            d.quantiles
                .iter()
                .find(|q| (q.q - 0.5).abs() < 1e-9)
                .map(|q| q.value)
        })
        .unwrap_or(f64::NAN)
}

fn flagged(analysis: &PathAnalysis) -> Vec<(u16, u16)> {
    analysis
        .flagged_links()
        .iter()
        .map(|l| (l.up.0, l.down.0))
        .collect()
}

/// The X→N inter-domain link, where every lie by `X`'s egress must
/// surface.
const XN_LINK: (u16, u16) = (5, 6);

/// Evaluate one cell. Pure: the same cell always produces the same
/// verdict, byte for byte.
pub fn evaluate_cell(cell: &Cell) -> CellVerdict {
    let t = trace(cell);
    let topo = topology(cell);
    let cfg = run_config(cell);
    let honest_run = run_path(&t, &topo, &cfg);
    let honest = analyze_path(&topo, &honest_run);

    let mut failures = Vec::new();

    // --- Invariant 1: honest receipts are consistent everywhere. ---
    let honest_consistent = honest.all_consistent();
    if !honest_consistent {
        failures.push(format!("honest run flagged links {:?}", flagged(&honest)));
    }

    // --- Invariant 2: estimates track retained ground truth. ---
    let x_truth = honest_run.truth("X").expect("X is on the path");
    let x_loss_truth = 1.0 - x_truth.delivered as f64 / x_truth.sent as f64;
    let x_report = honest.domain("X").expect("X is a transit domain");
    let x_loss_est = x_report.estimate.loss.rate().unwrap_or(f64::NAN);
    // NaN-safe: an unavailable estimate must count as out of tolerance.
    let loss_ok = (x_loss_est - x_loss_truth).abs() <= LOSS_TOL;
    if !loss_ok {
        failures.push(format!(
            "X loss estimate {x_loss_est:.4} strays from truth {x_loss_truth:.4}"
        ));
    }
    let x_delay_truth_ms = median(&x_truth.delays_ms);
    let matched_samples = x_report.estimate.matched_samples;
    let x_delay_est_ms = est_median(x_report);
    let delay_tol = DELAY_TOL_MS.max(DELAY_REL_TOL * x_delay_truth_ms);
    // NaN-safe: a NaN estimate must count as out of tolerance.
    let delay_ok = (x_delay_est_ms - x_delay_truth_ms).abs() <= delay_tol;
    if !delay_ok {
        failures.push(format!(
            "X median delay estimate {x_delay_est_ms:.4} ms strays from truth \
             {x_delay_truth_ms:.4} ms (tol {delay_tol:.4})"
        ));
    }
    // Innocent neighbors measure clean in the honest run.
    for name in ["L", "N"] {
        let loss = honest
            .domain(name)
            .expect("transit domain")
            .estimate
            .loss
            .rate()
            .unwrap_or(0.0);
        if loss > 0.02 {
            failures.push(format!("honest neighbor {name} shows loss {loss:.4}"));
        }
    }

    // --- Invariant 3: the cell's lie is exposed where it must be. ---
    let (flagged_links, exposure) = match cell.adversary {
        AdversaryAxis::Honest => (Vec::new(), "no adversary".to_string()),
        AdversaryAxis::BlameShift => {
            let mut run = honest_run.clone();
            let ingress = run.hop(HopId(4)).expect("X ingress").clone();
            apply_lie(
                &ingress,
                run.hop_mut(HopId(5)).expect("X egress"),
                LieStrategy::BlameShiftLoss {
                    claimed_delay: SimDuration::from_micros(300),
                },
            );
            let analysis = analyze_path(&topo, &run);
            let fl = flagged(&analysis);
            let x_est = analysis
                .domain("X")
                .expect("X")
                .estimate
                .loss
                .rate()
                .unwrap_or(f64::NAN);
            // NaN-safe: a broken post-lie estimate is a failure too.
            let hidden = x_est < 0.02;
            if !hidden {
                failures.push(format!("blame-shift failed to hide X loss ({x_est:.4})"));
            }
            if !fl.contains(&XN_LINK) {
                failures.push(format!("blame-shift not flagged on X→N link ({fl:?})"));
            }
            if fl.iter().any(|&l| l != XN_LINK) {
                failures.push(format!("blame-shift flagged innocent links ({fl:?})"));
            }
            let detail = format!(
                "X hid loss {x_loss_truth:.3}→{x_est:.3}; link 5→6 flagged: {}",
                fl.contains(&XN_LINK)
            );
            (fl, detail)
        }
        AdversaryAxis::Sugarcoat => {
            let mut run = honest_run.clone();
            let ingress = run.hop(HopId(4)).expect("X ingress").clone();
            apply_lie(
                &ingress,
                run.hop_mut(HopId(5)).expect("X egress"),
                LieStrategy::SugarcoatDelay {
                    shave: SimDuration::from_millis(5),
                },
            );
            let analysis = analyze_path(&topo, &run);
            let fl = flagged(&analysis);
            if !fl.contains(&XN_LINK) {
                failures.push(format!("sugarcoat not flagged on X→N link ({fl:?})"));
            }
            if fl.iter().any(|&l| l != XN_LINK) {
                failures.push(format!("sugarcoat flagged innocent links ({fl:?})"));
            }
            let detail = format!("X shaved 5 ms; link 5→6 flagged: {}", fl.contains(&XN_LINK));
            (fl, detail)
        }
        AdversaryAxis::MarkerDrop => {
            let mut attack_cfg = cfg.clone();
            attack_cfg.marker_dropper = Some(topo.domain_by_name("X").expect("X exists").id);
            let attacked = run_path(&t, &topo, &attack_cfg);
            let analysis = analyze_path(&topo, &attacked);
            let fl = flagged(&analysis);
            // §5.3: markers are *expected* receipts. X's ingress sampled
            // markers that no HOP downstream of X ever acknowledges —
            // standing evidence pinned between HOPs 4 and 6.
            let marker = Threshold::from_rate(attack_cfg.marker_rate);
            let downstream: HashSet<_> = attacked
                .hop(HopId(6))
                .expect("N ingress")
                .samples
                .iter()
                .map(|r| r.pkt_id)
                .collect();
            let vanished = attacked
                .hop(HopId(4))
                .expect("X ingress")
                .samples
                .iter()
                .filter(|r| marker.passes(r.pkt_id.0) && !downstream.contains(&r.pkt_id))
                .count();
            let matched = |run: &PathRun| {
                vpm_core::verify::match_samples(
                    &run.hop(HopId(4)).expect("hop 4").samples,
                    &run.hop(HopId(6)).expect("hop 6").samples,
                )
                .len()
            };
            let m_honest = matched(&honest_run);
            let m_attacked = matched(&attacked);
            if vanished == 0 {
                failures.push("marker-drop left no vanished-marker evidence".to_string());
            }
            if (m_attacked as f64) >= 0.7 * m_honest as f64 {
                failures.push(format!(
                    "marker-drop did not collapse sample matching ({m_honest}→{m_attacked})"
                ));
            }
            let detail = format!(
                "{vanished} expected markers vanished inside X; matches {m_honest}→{m_attacked}"
            );
            (fl, detail)
        }
        AdversaryAxis::Collude => {
            let mut run = honest_run.clone();
            let ingress = run.hop(HopId(4)).expect("X ingress").clone();
            apply_lie(
                &ingress,
                run.hop_mut(HopId(5)).expect("X egress"),
                LieStrategy::BlameShiftLoss {
                    claimed_delay: SimDuration::from_micros(300),
                },
            );
            let liar_egress = run.hop(HopId(5)).expect("X egress").clone();
            cover_up(&liar_egress, run.hop_mut(HopId(6)).expect("N ingress"));
            let analysis = analyze_path(&topo, &run);
            let fl = flagged(&analysis);
            // The coalition hides the X→N mismatch…
            if fl.contains(&XN_LINK) {
                failures.push("cover-up failed to hide the X→N link".to_string());
            }
            // …but §3.1: the loss does not vanish — the accomplice's own
            // books inherit it.
            let n_est = analysis
                .domain("N")
                .expect("N")
                .estimate
                .loss
                .rate()
                .unwrap_or(0.0);
            if n_est < 0.5 * x_loss_truth {
                failures.push(format!(
                    "accomplice N absorbed only {n_est:.4} of X's {x_loss_truth:.4} loss"
                ));
            }
            let detail =
                format!("coalition quiet; N absorbed X's loss ({n_est:.3} vs {x_loss_truth:.3})");
            (fl, detail)
        }
        AdversaryAxis::SampleBias => {
            // X fast-paths packets whose digest passes the σ threshold —
            // its best guess at "will be sampled". Algorithm 1 keys the
            // real sampling decision on a *future marker*, so the guess
            // misses and the estimate still tracks the slow path.
            let digests: Vec<_> = t.iter().map(|tp| tp.packet.digest()).collect();
            let guess = Threshold::from_rate(cell.sampling_rate);
            let mut rng_seed = cell.seed ^ 0xb1a5;
            let fates: Vec<PacketFate> = digests
                .iter()
                .map(|d| {
                    // Deterministic per-packet slow-path delay drawn from
                    // the cell's delay model (splitmix over the seed).
                    rng_seed = rng_seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = rng_seed;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^= z >> 31;
                    let slow = match cell.delay {
                        DelayAxis::Constant => SimDuration::from_micros(300),
                        DelayAxis::Jitter => SimDuration::from_micros(100 + z % 801),
                    };
                    if guess.passes(d.0) {
                        PacketFate::Delivered(cell.delay.fast_path())
                    } else {
                        PacketFate::Delivered(slow)
                    }
                })
                .collect();
            let mut fig = Figure1::ideal();
            fig.x_transit = ChannelConfig {
                delay: DelayModel::Series(fates),
                loss: cell.loss.channel_loss(),
                reorder: cell.reorder.model(),
                seed: cell.seed ^ 0xc4a1,
            };
            let biased_topo = fig.build();
            let biased_run = run_path(&t, &biased_topo, &cfg);
            let analysis = analyze_path(&biased_topo, &biased_run);
            let fl = flagged(&analysis);
            let truth = biased_run.truth("X").expect("X");
            let truth_med = median(&truth.delays_ms);
            let est_med = est_median(analysis.domain("X").expect("X"));
            let fast_ms = cell.delay.fast_path().as_nanos() as f64 / 1e6;
            let tol = DELAY_TOL_MS.max(DELAY_REL_TOL * truth_med);
            // NaN-safe: a NaN estimate must count as a failure.
            let tracks_truth = (est_med - truth_med).abs() <= tol;
            if !tracks_truth {
                failures.push(format!(
                    "bias skewed the estimate: {est_med:.4} ms vs truth {truth_med:.4} ms"
                ));
            }
            let above_fast_path = est_med > 3.0 * fast_ms;
            if !above_fast_path {
                failures.push(format!(
                    "estimate {est_med:.4} ms collapsed toward the fast path {fast_ms:.4} ms"
                ));
            }
            let detail = format!(
                "bias defeated: estimate {est_med:.3} ms tracks truth {truth_med:.3} ms, \
                 not the {fast_ms:.3} ms fast path"
            );
            (fl, detail)
        }
    };

    CellVerdict {
        id: cell.id,
        label: cell.label(),
        trace_len: t.len(),
        honest_consistent,
        x_loss_est,
        x_loss_truth,
        x_delay_est_ms,
        x_delay_truth_ms,
        matched_samples,
        flagged_links,
        exposure,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_24_cells_and_covers_every_axis_value() {
        let grid = full_grid(1);
        assert_eq!(grid.len(), 24);
        let mut delays = HashSet::new();
        let mut adversaries = HashSet::new();
        let mut rates = HashSet::new();
        for c in &grid {
            delays.insert(format!("{:?}", c.delay));
            adversaries.insert(c.adversary.name());
            rates.insert(format!("{:.3}", c.sampling_rate));
        }
        assert_eq!(delays.len(), 2);
        assert_eq!(rates.len(), 2);
        assert_eq!(
            adversaries.len(),
            6,
            "all six adversary values must appear: {adversaries:?}"
        );
        // Loss-hiding strategies never land on lossless environments.
        for c in &grid {
            if c.adversary.needs_loss() {
                assert!(c.loss.rate() > 0.0, "{}", c.label());
            }
        }
        // Ids are positional and unique.
        for (i, c) in grid.iter().enumerate() {
            assert_eq!(c.id, i);
        }
    }

    #[test]
    fn grid_is_deterministic_in_the_seed() {
        assert_eq!(full_grid(42), full_grid(42));
        assert_ne!(
            full_grid(1)[0].seed,
            full_grid(2)[0].seed,
            "different base seeds give different cell seeds"
        );
    }

    #[test]
    fn labels_are_unique() {
        let grid = full_grid(7);
        let labels: HashSet<String> = grid.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), grid.len());
    }

    #[test]
    fn one_honest_cell_evaluates_clean() {
        let grid = full_grid(3);
        let cell = grid
            .iter()
            .find(|c| c.adversary == AdversaryAxis::Honest)
            .expect("grid contains honest cells");
        let v = evaluate_cell(cell);
        assert!(v.failures.is_empty(), "{:?}", v.failures);
        assert!(v.honest_consistent);
        assert!(v.matched_samples > 0);
    }
}
