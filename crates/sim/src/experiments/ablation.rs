//! Design-choice ablations.
//!
//! Two of VPM's mechanisms exist to defeat specific failure modes; the
//! ablations demonstrate that removing the mechanism re-opens the hole:
//!
//! 1. **Future-marker keying** (§5.1). If sampling were keyed on the
//!    packet's own digest (Trajectory-Sampling style), a domain could
//!    compute at forwarding time which packets will be sampled and give
//!    them priority treatment — making its estimated delay far better
//!    than what ordinary traffic experiences. With the future-marker
//!    scheme, the sampled set is unknowable at forwarding time, so the
//!    same adversary gains ~nothing.
//!
//! 2. **AggTrans re-alignment** (§6.3). Without the patch-up windows,
//!    reordering near cutting points makes honest HOPs' counts
//!    disagree, producing phantom loss (or negative loss) on a
//!    perfectly lossless domain.

use serde::{Deserialize, Serialize};
use vpm_core::aggregation::{Aggregator, FinishedAggregate};
use vpm_core::receipt::{AggReceipt, PathId};
use vpm_core::sampling::DelaySampler;
use vpm_core::verify::{join_aggregates, match_samples};
use vpm_hash::{Digest, Threshold};
use vpm_netsim::reorder::ReorderModel;
use vpm_packet::{HeaderSpec, SimDuration, SimTime};
use vpm_stats::quantile::{empirical_quantile, sort_samples};
use vpm_trace::{TraceConfig, TraceGenerator};

/// Result of the sampling-bias ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BiasAblation {
    /// True 90th-percentile delay of all traffic under the adversary's
    /// policy, ms.
    pub true_p90_ms: f64,
    /// P90 estimated from VPM (future-marker) samples, ms.
    pub vpm_est_p90_ms: f64,
    /// P90 estimated from naive (self-keyed) samples after the
    /// adversary prioritizes the predictable sample set, ms.
    pub naive_est_p90_ms: f64,
    /// How much delay the adversary hides under each scheme, ms.
    pub vpm_bias_ms: f64,
    /// Bias under the naive scheme (large = attack works).
    pub naive_bias_ms: f64,
}

/// Configuration shared by the ablations.
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// Packets in the sequence.
    pub pps: f64,
    /// Duration.
    pub duration: SimDuration,
    /// Sampling rate under test.
    pub sampling_rate: f64,
    /// Marker rate.
    pub marker_rate: f64,
    /// Congested-path delay for ordinary packets, ms.
    pub congested_delay_ms: f64,
    /// Fast-path delay the adversary grants predicted samples, ms.
    pub fast_delay_ms: f64,
    /// Seed.
    pub seed: u64,
}

impl AblationConfig {
    /// Default scenario: 10 ms congested delay vs 0.1 ms fast path.
    pub fn default_scenario(seed: u64) -> Self {
        AblationConfig {
            pps: 50_000.0,
            duration: SimDuration::from_millis(600),
            sampling_rate: 0.01,
            marker_rate: 5e-3,
            congested_delay_ms: 10.0,
            fast_delay_ms: 0.1,
            seed,
        }
    }
}

/// Run the sampling-bias ablation.
pub fn sampling_bias(cfg: &AblationConfig) -> BiasAblation {
    let trace = TraceGenerator::new(TraceConfig {
        target_pps: cfg.pps,
        duration: cfg.duration,
        ..TraceConfig::paper_default(1, cfg.seed)
    })
    .generate();
    let digests: Vec<Digest> = trace.iter().map(|tp| tp.packet.digest()).collect();
    let t_in: Vec<SimTime> = trace.iter().map(|tp| tp.ts).collect();
    let n = trace.len();

    let sigma = Threshold::from_rate(cfg.sampling_rate);
    let marker = Threshold::from_rate(cfg.marker_rate);

    // --- Naive scheme: sampled iff digest > σ, knowable in advance. ---
    // The adversary fast-paths exactly that set.
    let naive_sampled: Vec<bool> = digests.iter().map(|d| sigma.passes(d.0)).collect();
    let naive_delays: Vec<f64> = (0..n)
        .map(|i| {
            // vpm-lint: allow(R1, parallel per-packet arrays share one length)
            if naive_sampled[i] {
                cfg.fast_delay_ms
            } else {
                cfg.congested_delay_ms
            }
        })
        .collect();
    let naive_true_p90 = empirical_quantile(&sort_samples(naive_delays.clone()), 0.9);
    let naive_est: Vec<f64> = (0..n)
        .filter(|&i| naive_sampled[i]) // vpm-lint: allow(R1, parallel per-packet arrays share one length)
        .map(|i| naive_delays[i]) // vpm-lint: allow(R1, parallel per-packet arrays share one length)
        .collect();
    let naive_est_p90 = empirical_quantile(&sort_samples(naive_est), 0.9);

    // --- VPM scheme: the adversary cannot identify the sample set at
    // forwarding time, so the best it can do is treat everyone alike
    // (fast-pathing everything would mean not being congested at all).
    let vpm_delays: Vec<f64> = vec![cfg.congested_delay_ms; n];
    let true_p90 = empirical_quantile(&sort_samples(vpm_delays.clone()), 0.9);
    let mut hop_in = DelaySampler::new(marker, sigma);
    let mut hop_out = DelaySampler::new(marker, sigma);
    for i in 0..n {
        hop_in.observe(digests[i], t_in[i]); // vpm-lint: allow(R1, parallel per-packet arrays share one length)
        let t_out = t_in[i] + SimDuration::from_secs_f64(vpm_delays[i] / 1e3); // vpm-lint: allow(R1, parallel per-packet arrays share one length)
        hop_out.observe(digests[i], t_out); // vpm-lint: allow(R1, parallel per-packet arrays share one length)
    }
    let matched = match_samples(&hop_in.drain(), &hop_out.drain());
    let vpm_est: Vec<f64> = matched.iter().map(|m| m.delay_ms()).collect();
    let vpm_est_p90 = if vpm_est.is_empty() {
        f64::NAN
    } else {
        empirical_quantile(&sort_samples(vpm_est), 0.9)
    };

    BiasAblation {
        true_p90_ms: true_p90,
        vpm_est_p90_ms: vpm_est_p90,
        naive_est_p90_ms: naive_est_p90,
        vpm_bias_ms: (true_p90 - vpm_est_p90).abs(),
        naive_bias_ms: (naive_true_p90 - naive_est_p90).abs(),
    }
}

/// Result of the AggTrans-alignment ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggTransAblation {
    /// Total |loss error| (packets) with alignment, on a lossless
    /// reordered stream.
    pub aligned_abs_error: u64,
    /// Total |loss error| without the patch-up windows.
    pub stripped_abs_error: u64,
    /// Boundaries where alignment changed a count.
    pub alignments_applied: u64,
    /// Joined aggregates compared.
    pub joined: usize,
}

/// Run the AggTrans ablation: a lossless domain that reorders packets
/// near boundaries. Honest counts disagree unless windows re-align
/// them.
#[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
pub fn aggtrans_alignment(seed: u64) -> AggTransAblation {
    let trace = TraceGenerator::new(TraceConfig {
        target_pps: 50_000.0,
        duration: SimDuration::from_millis(800),
        ..TraceConfig::paper_default(1, seed)
    })
    .generate();
    let digests: Vec<Digest> = trace.iter().map(|tp| tp.packet.digest()).collect();
    let times: Vec<SimTime> = trace.iter().map(|tp| tp.ts).collect();

    let j = SimDuration::from_millis(1);
    let delta = Aggregator::delta_for_aggregate_size(500);
    let path = PathId {
        spec: HeaderSpec::new(
            "10.0.0.0/12".parse().expect("static"), // vpm-lint: allow(R1, parses a fixed literal prefix)
            "172.16.0.0/14".parse().expect("static"), // vpm-lint: allow(R1, parses a fixed literal prefix)
        ),
        prev_hop: None,
        next_hop: None,
        max_diff: SimDuration::from_millis(2),
    };
    let to_receipts = |fins: &[FinishedAggregate]| -> Vec<AggReceipt> {
        fins.iter()
            .map(|f| AggReceipt {
                path,
                agg: f.agg,
                pkt_cnt: f.pkt_cnt,
                agg_trans: f.agg_trans.clone(),
            })
            .collect()
    };

    // Upstream HOP: pristine order.
    let mut up = Aggregator::new(delta, j);
    for (i, &t) in times.iter().enumerate() {
        up.observe(digests[i], t); // vpm-lint: allow(R1, i ranges over the trace arrays)
    }
    up.flush();
    let up_receipts = to_receipts(&up.drain());

    // Downstream HOP: same packets, reordered within a bounded window
    // (strictly less than J), constant transit delay, zero loss.
    let transit = SimDuration::from_micros(300);
    let shifted: Vec<SimTime> = times.iter().map(|&t| t + transit).collect();
    let model = ReorderModel {
        p_reorder: 0.3,
        max_shift: SimDuration::from_micros(800),
    };
    let order = model.arrival_order(&shifted, seed ^ 0x0f);
    let mut down = Aggregator::new(delta, j);
    let perturbed = model.perturb(&shifted, seed ^ 0x0f);
    for &i in &order {
        down.observe(digests[i], perturbed[i]); // vpm-lint: allow(R1, parallel per-packet arrays share one length)
    }
    down.flush();
    let down_receipts = to_receipts(&down.drain());

    // With alignment.
    let aligned = join_aggregates(&up_receipts, &down_receipts);
    let aligned_err: u64 = aligned.joined.iter().map(|j| j.lost.unsigned_abs()).sum();

    // Without: strip the windows and re-join.
    let strip = |rs: &[AggReceipt]| -> Vec<AggReceipt> {
        rs.iter()
            .map(|r| AggReceipt {
                agg_trans: vec![],
                ..r.clone()
            })
            .collect()
    };
    let stripped = join_aggregates(&strip(&up_receipts), &strip(&down_receipts));
    let stripped_err: u64 = stripped.joined.iter().map(|j| j.lost.unsigned_abs()).sum();

    AggTransAblation {
        aligned_abs_error: aligned_err,
        stripped_abs_error: stripped_err,
        alignments_applied: aligned.alignments_applied,
        joined: aligned.joined.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_sampling_is_exploitable_vpm_is_not() {
        let r = sampling_bias(&AblationConfig::default_scenario(3));
        // Under the naive scheme the adversary hides ~all congestion
        // delay from the estimate.
        assert!(
            r.naive_bias_ms > 5.0,
            "naive scheme should be badly biased: {r:?}"
        );
        // Under VPM the estimate matches the truth.
        assert!(r.vpm_bias_ms < 0.5, "VPM must stay unbiased: {r:?}");
    }

    #[test]
    fn aggtrans_fixes_reordering_miscounts() {
        let r = aggtrans_alignment(5);
        assert!(r.joined > 10, "need enough aggregates: {r:?}");
        assert!(
            r.aligned_abs_error < r.stripped_abs_error,
            "alignment must strictly reduce count error: {r:?}"
        );
        assert_eq!(
            r.aligned_abs_error, 0,
            "bounded reordering with windows must align perfectly: {r:?}"
        );
        assert!(r.alignments_applied > 0, "no boundary needed fixing?");
    }
}
