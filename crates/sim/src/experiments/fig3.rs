//! Figure 3 — "The granularity at which domain X's loss performance is
//! computed as a function of the loss rate introduced by X, when X uses
//! our aggregation algorithm."
//!
//! The paper fixes X's aggregation at one aggregate per 100 000
//! packets (1 s of traffic at the 100 kpps workload) and sweeps
//! Gilbert-Elliott loss from 0 to 50%. The metric is the average time
//! span over which loss can still be computed after joining HOP 4's
//! and HOP 5's receipts: lost cutting points merge aggregates, so
//! granularity degrades — but smoothly (1 s at no loss, ~1.5 s at 25%).

use serde::{Deserialize, Serialize};
use vpm_core::aggregation::{Aggregator, FinishedAggregate};
use vpm_core::receipt::{AggReceipt, PathId};
use vpm_core::verify::join_aggregates;
use vpm_hash::Digest;
use vpm_netsim::gilbert::GilbertElliott;
use vpm_packet::{HeaderSpec, SimDuration, SimTime};
use vpm_trace::{TraceConfig, TraceGenerator};

/// Configuration of the Figure 3 experiment.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Path rate (paper: 100 kpps).
    pub pps: f64,
    /// Sequence duration (needs to cover many aggregates).
    pub duration: SimDuration,
    /// Packets per aggregate (paper: 100 000).
    pub aggregate_size: u64,
    /// Loss rates to sweep (x-axis, paper: 0–50%).
    pub loss_rates: Vec<f64>,
    /// Gilbert-Elliott mean burst length.
    pub loss_burst: f64,
    /// Safety threshold `J`.
    pub j_window: SimDuration,
    /// Constant transit delay inside X (does not affect granularity).
    pub transit: SimDuration,
    /// Seed.
    pub seed: u64,
}

impl Fig3Config {
    /// The paper's configuration at a chosen duration.
    pub fn paper(duration: SimDuration, seed: u64) -> Self {
        Fig3Config {
            pps: 100_000.0,
            duration,
            aggregate_size: 100_000,
            loss_rates: vec![
                0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50,
            ],
            loss_burst: 5.0,
            j_window: SimDuration::from_millis(10),
            transit: SimDuration::from_micros(200),
            seed,
        }
    }

    /// Scaled-down configuration for fast tests: 1000-packet aggregates
    /// over a short sequence (granularity then is ~20 ms, not 1 s, but
    /// the *shape* — smooth degradation with loss — is the invariant).
    pub fn quick(seed: u64) -> Self {
        Fig3Config {
            pps: 50_000.0,
            duration: SimDuration::from_millis(800),
            aggregate_size: 1000,
            loss_rates: vec![0.0, 0.25, 0.50],
            loss_burst: 4.0,
            j_window: SimDuration::from_millis(1),
            transit: SimDuration::from_micros(200),
            seed,
        }
    }
}

/// One point of the figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Point {
    /// Loss rate (x-axis).
    pub loss_rate: f64,
    /// Mean joined-aggregate span in seconds (y-axis).
    pub granularity_secs: f64,
    /// Mean joined-aggregate span in packets.
    pub granularity_pkts: f64,
    /// Joined aggregates the verifier could compute loss over.
    pub joined: usize,
    /// Aggregates HOP 4 produced.
    pub up_aggregates: usize,
    /// Loss rate computed from the joined receipts (sanity).
    pub computed_loss: f64,
}

fn to_receipts(fins: &[FinishedAggregate], path: PathId) -> Vec<AggReceipt> {
    fins.iter()
        .map(|f| AggReceipt {
            path,
            agg: f.agg,
            pkt_cnt: f.pkt_cnt,
            agg_trans: f.agg_trans.clone(),
        })
        .collect()
}

/// Run the experiment.
#[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
pub fn run(cfg: &Fig3Config) -> Vec<Fig3Point> {
    let trace = TraceGenerator::new(TraceConfig {
        target_pps: cfg.pps,
        duration: cfg.duration,
        ..TraceConfig::paper_default(1, cfg.seed)
    })
    .generate();
    let digests: Vec<Digest> = trace.iter().map(|tp| tp.packet.digest()).collect();
    let times: Vec<SimTime> = trace.iter().map(|tp| tp.ts).collect();

    let delta = Aggregator::delta_for_aggregate_size(cfg.aggregate_size);
    let path = PathId {
        spec: HeaderSpec::new(
            "10.0.0.0/12".parse().expect("static"), // vpm-lint: allow(R1, parses a fixed literal prefix)
            "172.16.0.0/14".parse().expect("static"), // vpm-lint: allow(R1, parses a fixed literal prefix)
        ),
        prev_hop: None,
        next_hop: None,
        max_diff: SimDuration::from_millis(2),
    };

    // HOP 4 sees everything; compute once.
    let mut up = Aggregator::new(delta, cfg.j_window);
    for (i, &t) in times.iter().enumerate() {
        up.observe(digests[i], t); // vpm-lint: allow(R1, i ranges over the trace arrays)
    }
    up.flush();
    let up_fins = up.drain();
    let up_receipts = to_receipts(&up_fins, path);

    let mut out = Vec::new();
    for &loss in &cfg.loss_rates {
        let mut ge = GilbertElliott::with_target(loss, cfg.loss_burst, cfg.seed ^ 0x6e);
        let mut down = Aggregator::new(delta, cfg.j_window);
        let mut delivered = 0u64;
        for (i, &t) in times.iter().enumerate() {
            if loss == 0.0 || ge.survives() {
                down.observe(digests[i], t + cfg.transit); // vpm-lint: allow(R1, i ranges over the trace arrays)
                delivered += 1;
            }
        }
        down.flush();
        let down_receipts = to_receipts(&down.drain(), path);

        let res = join_aggregates(&up_receipts, &down_receipts);
        // Granularity in seconds: the trace-time span of each joined
        // aggregate, from HOP 4's (complete) view.
        let mut spans = Vec::new();
        for j in &res.joined {
            let (s, e) = j.up_range;
            let span = up_fins[e - 1] // vpm-lint: allow(R1, s < e <= up_fins.len() by construction of the span)
                .last_time
                .saturating_since(up_fins[s].first_time); // vpm-lint: allow(R1, s < e <= up_fins.len() by construction of the span)
            spans.push(span.as_secs_f64());
        }
        let granularity = if spans.is_empty() {
            f64::INFINITY
        } else {
            spans.iter().sum::<f64>() / spans.len() as f64
        };
        out.push(Fig3Point {
            loss_rate: loss,
            granularity_secs: granularity,
            granularity_pkts: res.mean_span_pkts,
            joined: res.joined.len(),
            up_aggregates: up_receipts.len(),
            computed_loss: res.loss.rate().unwrap_or(f64::NAN),
        });
        let _ = delivered;
    }
    out
}

/// Render the figure as a text table.
pub fn render_table(points: &[Fig3Point]) -> String {
    let mut s = String::from(
        "Figure 3: loss granularity [sec] vs loss rate [%]\n  loss%   granularity[s]   (pkts)   joined   computed-loss%\n",
    );
    for p in points {
        s.push_str(&format!(
            "{:>6.0} {:>16.3} {:>9.0} {:>8} {:>14.2}\n",
            p.loss_rate * 100.0,
            p.granularity_secs,
            p.granularity_pkts,
            p.joined,
            p.computed_loss * 100.0,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_granularity_equals_aggregate_size() {
        let cfg = Fig3Config::quick(1);
        let points = run(&cfg);
        let p0 = &points[0];
        assert_eq!(p0.loss_rate, 0.0);
        // With no loss, every aggregate joins 1:1 — granularity equals
        // the configured aggregate size (in packets).
        assert!(
            (p0.granularity_pkts - cfg.aggregate_size as f64).abs()
                < 0.35 * cfg.aggregate_size as f64,
            "granularity {} pkts",
            p0.granularity_pkts
        );
        assert!(p0.computed_loss.abs() < 1e-9);
    }

    #[test]
    fn granularity_degrades_smoothly_with_loss() {
        let points = run(&Fig3Config::quick(2));
        let g = |l: f64| {
            points
                .iter()
                .find(|p| (p.loss_rate - l).abs() < 1e-9)
                .unwrap()
                .granularity_pkts
        };
        // Monotone-ish growth, and bounded: at 25% loss the paper sees
        // 1.5× the base granularity; allow up to ~2.5×.
        assert!(g(0.25) >= g(0.0) * 0.99);
        assert!(
            g(0.25) < g(0.0) * 2.5,
            "25% loss: {} vs {}",
            g(0.25),
            g(0.0)
        );
        assert!(g(0.50) >= g(0.25) * 0.9);
        assert!(
            g(0.50) < g(0.0) * 5.0,
            "50% loss: {} vs {}",
            g(0.50),
            g(0.0)
        );
    }

    #[test]
    fn computed_loss_tracks_injected_loss() {
        let points = run(&Fig3Config::quick(3));
        for p in &points {
            if p.joined > 5 {
                assert!(
                    (p.computed_loss - p.loss_rate).abs() < 0.05,
                    "injected {} computed {}",
                    p.loss_rate,
                    p.computed_loss
                );
            }
        }
    }

    #[test]
    fn table_renders() {
        let t = render_table(&run(&Fig3Config::quick(4)));
        assert!(t.contains("Figure 3"));
        assert!(t.lines().count() >= 5);
    }
}
