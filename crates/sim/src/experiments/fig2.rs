//! Figure 2 — "The accuracy with which domain X's delay performance is
//! estimated as a function of X's sampling rate, for different levels
//! of loss, when X uses our sampling algorithm. Congestion is caused by
//! a bursty, high-rate UDP flow."
//!
//! Methodology (paper §7.2, reproduced step by step):
//! 1. extract a packet sequence `Ŝ` (synthetic CAIDA substitute);
//! 2. congest the intra-domain path between HOPs 4 and 5 (bursty UDP
//!    through a drop-tail bottleneck, via `vpm-netsim`);
//! 3. inject Gilbert-Elliott loss at the configured rate;
//! 4. generate X's receipts (both HOPs run Algorithm 1);
//! 5. estimate X's delay as a verifier would (quantiles from matched
//!    samples) and compare to ground truth (all delivered packets).

use serde::{Deserialize, Serialize};
use vpm_core::sampling::DelaySampler;
use vpm_hash::{Digest, Threshold};
use vpm_netsim::channel::{apply, arrivals, ChannelConfig, DelayModel};
use vpm_netsim::congestion::{foreground_delays, BottleneckConfig, CrossTraffic};
use vpm_netsim::reorder::ReorderModel;
use vpm_packet::{SimDuration, SimTime};
use vpm_stats::accuracy::{quantile_error, DEFAULT_QUANTILES};
use vpm_trace::{TraceConfig, TraceGenerator};

/// Configuration of the Figure 2 experiment.
#[derive(Debug, Clone)]
pub struct Fig2Config {
    /// Foreground path rate (the paper uses 100 kpps sequences).
    pub pps: f64,
    /// Sequence duration.
    pub duration: SimDuration,
    /// Sampling rates to sweep (the figure's x-axis).
    pub sampling_rates: Vec<f64>,
    /// Loss rates to sweep (the figure's curves).
    pub loss_rates: Vec<f64>,
    /// Marker rate `µ`.
    pub marker_rate: f64,
    /// Gilbert-Elliott mean burst length.
    pub loss_burst: f64,
    /// Bottleneck parameters.
    pub bottleneck: BottleneckConfig,
    /// Cross traffic causing congestion.
    pub cross: CrossTraffic,
    /// Quantiles over which accuracy is evaluated.
    pub quantiles: Vec<f64>,
    /// Seed.
    pub seed: u64,
}

impl Fig2Config {
    /// The paper's configuration: 100 kpps, rates {5, 1, 0.5, 0.1}%,
    /// loss {0, 10, 25, 50}%, bursty UDP congestion.
    pub fn paper(duration: SimDuration, seed: u64) -> Self {
        Fig2Config {
            pps: 100_000.0,
            duration,
            sampling_rates: vec![0.05, 0.01, 0.005, 0.001],
            loss_rates: vec![0.0, 0.10, 0.25, 0.50],
            marker_rate: 1e-3,
            loss_burst: 5.0,
            bottleneck: BottleneckConfig::paper_default(),
            cross: CrossTraffic::paper_bursty_udp(),
            quantiles: DEFAULT_QUANTILES.to_vec(),
            seed,
        }
    }

    /// A scaled-down configuration for fast tests.
    pub fn quick(seed: u64) -> Self {
        let mut c = Self::paper(SimDuration::from_millis(500), seed);
        c.pps = 50_000.0;
        c.sampling_rates = vec![0.05, 0.01];
        c.loss_rates = vec![0.0, 0.25];
        c.marker_rate = 5e-3;
        c
    }
}

/// One point of the figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Point {
    /// Sampling rate (x-axis).
    pub sampling_rate: f64,
    /// Loss rate (curve).
    pub loss_rate: f64,
    /// Delay-estimation accuracy: worst quantile error in ms (y-axis).
    pub accuracy_ms: f64,
    /// Mean quantile error in ms.
    pub mean_error_ms: f64,
    /// Matched samples the estimate used.
    pub matched: usize,
    /// Packets delivered through X.
    pub delivered: usize,
}

/// Run the experiment.
pub fn run(cfg: &Fig2Config) -> Vec<Fig2Point> {
    // Step 1: the packet sequence.
    let trace = TraceGenerator::new(TraceConfig {
        target_pps: cfg.pps,
        duration: cfg.duration,
        ..TraceConfig::paper_default(1, cfg.seed)
    })
    .generate();
    let digests: Vec<Digest> = trace.iter().map(|tp| tp.packet.digest()).collect();
    let t_in: Vec<SimTime> = trace.iter().map(|tp| tp.ts).collect();

    // Step 2: congestion delays between HOPs 4 and 5.
    let fates = foreground_delays(&trace, &cfg.bottleneck, &cfg.cross, cfg.seed ^ 0xc0);

    let marker = Threshold::from_rate(cfg.marker_rate);
    let mut out = Vec::new();
    for &loss in &cfg.loss_rates {
        // Step 3: loss injection on top of congestion.
        let channel = ChannelConfig {
            delay: DelayModel::Series(fates.clone()),
            loss: (loss > 0.0).then_some((loss, cfg.loss_burst)),
            reorder: ReorderModel::none(),
            seed: cfg.seed ^ (loss * 1000.0) as u64,
        };
        let fate = apply(&t_in, &channel);
        let deliveries = arrivals(&fate);
        // Ground truth: the delay of every delivered packet.
        let truth: Vec<f64> = deliveries
            .iter()
            .map(|d| d.ts_out.signed_delta(t_in[d.idx]) as f64 / 1e6) // vpm-lint: allow(R1, d.idx indexes the trace the deliveries came from)
            .collect();

        for &rate in &cfg.sampling_rates {
            // Step 4: both HOPs run Algorithm 1.
            let sigma = Threshold::from_rate(rate);
            let mut hop4 = DelaySampler::new(marker, sigma);
            for (i, &t) in t_in.iter().enumerate() {
                hop4.observe(digests[i], t); // vpm-lint: allow(R1, i ranges over the trace arrays)
            }
            let mut hop5 = DelaySampler::new(marker, sigma);
            for d in &deliveries {
                hop5.observe(digests[d.idx], d.ts_out); // vpm-lint: allow(R1, d.idx indexes the trace the deliveries came from)
            }
            // Step 5: verifier-side estimation vs ground truth.
            let matched = vpm_core::verify::match_samples(&hop4.drain(), &hop5.drain());
            let est: Vec<f64> = matched.iter().map(|m| m.delay_ms()).collect();
            let report = quantile_error(&truth, &est, &cfg.quantiles);
            let (acc, mean) = report.map_or((f64::INFINITY, f64::INFINITY), |r| {
                (r.max_error, r.mean_error)
            });
            out.push(Fig2Point {
                sampling_rate: rate,
                loss_rate: loss,
                accuracy_ms: acc,
                mean_error_ms: mean,
                matched: matched.len(),
                delivered: deliveries.len(),
            });
        }
    }
    out
}

/// Run the experiment averaged over several seeds (single-seed cells
/// show realization noise of the bursty congestion process; the paper
/// likewise reports results consistent across traces).
pub fn run_averaged(cfg: &Fig2Config, n_seeds: u64) -> Vec<Fig2Point> {
    assert!(n_seeds > 0);
    let mut acc: Vec<Fig2Point> = Vec::new();
    for k in 0..n_seeds {
        let mut c = cfg.clone();
        c.seed = cfg.seed.wrapping_add(k * 7919);
        let pts = run(&c);
        if acc.is_empty() {
            acc = pts;
        } else {
            for (a, p) in acc.iter_mut().zip(&pts) {
                debug_assert_eq!(a.sampling_rate, p.sampling_rate);
                debug_assert_eq!(a.loss_rate, p.loss_rate);
                a.accuracy_ms += p.accuracy_ms;
                a.mean_error_ms += p.mean_error_ms;
                a.matched += p.matched;
                a.delivered += p.delivered;
            }
        }
    }
    for a in &mut acc {
        a.accuracy_ms /= n_seeds as f64;
        a.mean_error_ms /= n_seeds as f64;
        a.matched /= n_seeds as usize;
        a.delivered /= n_seeds as usize;
    }
    acc
}

/// Render the figure's series as a text table (sampling rate columns ×
/// loss-rate rows), mirroring the published plot.
pub fn render_table(points: &[Fig2Point]) -> String {
    let mut rates: Vec<f64> = points.iter().map(|p| p.sampling_rate).collect();
    rates.sort_by(|a, b| b.total_cmp(a));
    rates.dedup();
    let mut losses: Vec<f64> = points.iter().map(|p| p.loss_rate).collect();
    losses.sort_by(|a, b| a.total_cmp(b));
    losses.dedup();

    let mut s = String::from("Figure 2: delay accuracy [ms] vs sampling rate [%]\n");
    s.push_str("loss \\ rate");
    for r in &rates {
        s.push_str(&format!("{:>9.1}%", r * 100.0));
    }
    s.push('\n');
    for &l in &losses {
        s.push_str(&format!("{:>10.0}%", l * 100.0));
        for &r in &rates {
            let p = points
                .iter()
                .find(|p| p.sampling_rate == r && p.loss_rate == l);
            match p {
                Some(p) if p.accuracy_ms.is_finite() => {
                    s.push_str(&format!("{:>10.3}", p.accuracy_ms))
                }
                _ => s.push_str("       n/a"),
            }
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shapes() {
        let cfg = Fig2Config::quick(3);
        let points = run(&cfg);
        assert_eq!(
            points.len(),
            cfg.sampling_rates.len() * cfg.loss_rates.len()
        );
        for p in &points {
            assert!(p.accuracy_ms.is_finite(), "{p:?}");
            assert!(p.matched > 0, "{p:?}");
            assert!(p.mean_error_ms <= p.accuracy_ms + 1e-12);
        }
    }

    #[test]
    fn more_sampling_is_more_accurate() {
        let cfg = Fig2Config::quick(5);
        let points = run(&cfg);
        // At a fixed loss level, 5% sampling beats 1% (allowing noise:
        // compare against 2× slack).
        for &loss in &cfg.loss_rates {
            let acc = |rate: f64| {
                points
                    .iter()
                    .find(|p| p.sampling_rate == rate && p.loss_rate == loss)
                    .unwrap()
                    .accuracy_ms
            };
            assert!(
                acc(0.05) <= acc(0.01) * 2.0 + 0.3,
                "loss {loss}: 5% gives {}, 1% gives {}",
                acc(0.05),
                acc(0.01)
            );
        }
    }

    #[test]
    fn loss_degrades_match_count() {
        let cfg = Fig2Config::quick(7);
        let points = run(&cfg);
        let matched = |loss: f64| {
            points
                .iter()
                .find(|p| p.sampling_rate == 0.05 && p.loss_rate == loss)
                .unwrap()
                .matched
        };
        assert!(matched(0.25) < matched(0.0));
    }

    #[test]
    fn table_renders_all_cells() {
        let cfg = Fig2Config::quick(9);
        let table = render_table(&run(&cfg));
        assert!(table.contains("Figure 2"));
        assert!(table.contains("5.0%"));
        assert!(table.contains("25%"));
        assert!(!table.contains("n/a"));
    }

    #[test]
    fn averaging_reduces_to_single_run_for_one_seed() {
        let cfg = Fig2Config::quick(11);
        let single = run(&cfg);
        let avg = run_averaged(&cfg, 1);
        for (a, b) in single.iter().zip(&avg) {
            assert!((a.accuracy_ms - b.accuracy_ms).abs() < 1e-12);
            assert_eq!(a.matched, b.matched);
        }
    }

    #[test]
    fn averaged_accuracy_monotone_in_loss_at_fixed_rate() {
        // The smoothness claim of the figure, tested on means of 3
        // seeds: at 5% sampling, more loss must not *improve* accuracy
        // beyond noise.
        let cfg = Fig2Config::quick(13);
        let pts = run_averaged(&cfg, 3);
        let acc = |loss: f64| {
            pts.iter()
                .find(|p| p.sampling_rate == 0.05 && p.loss_rate == loss)
                .unwrap()
                .accuracy_ms
        };
        assert!(acc(0.25) + 0.4 >= acc(0.0), "loss improved accuracy?");
    }
}
