//! Experiment drivers regenerating the paper's evaluation (§7).
//!
//! Each submodule produces the rows/series of one published artifact;
//! the Criterion benches in `vpm-bench` and the runnable examples call
//! into these drivers so figures are regenerated from one code path.
//!
//! | driver | artifact |
//! |--------|----------|
//! | [`fig2`] | Figure 2: delay-estimation accuracy vs sampling rate × loss |
//! | [`fig3`] | Figure 3: loss-computation granularity vs loss rate |
//! | [`verifiability`] | §7.2 "Verifiability": cross-domain verification accuracy |
//! | [`ablation`] | design-choice ablations (future-marker keying, AggTrans) |

pub mod ablation;
pub mod fig2;
pub mod fig3;
pub mod verifiability;
