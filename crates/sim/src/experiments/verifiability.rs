//! §7.2 "Verifiability" — how well can *neighbors* verify a domain's
//! claims?
//!
//! The paper's concrete numbers: if X samples at 1% and loses 25% of
//! its traffic, a collector can estimate X's delay to ~2 ms from X's
//! own receipts; if neighbor N samples at the same rate the collector
//! can *verify* the estimate at the same accuracy from N's (and L's)
//! receipts — but if N samples at only 0.1%, verification accuracy
//! degrades to ~5 ms. A domain's tunability choice therefore bounds
//! both how well it is measured and how well it can police others.
//!
//! We reproduce this by estimating X's delay twice: once from X's own
//! HOPs (4, 5) and once from the surrounding honest HOPs (3 at L's
//! egress, 6 at N's ingress), sweeping the neighbor sampling rate.

use serde::{Deserialize, Serialize};
use vpm_core::sampling::DelaySampler;
use vpm_core::verify::match_samples;
use vpm_hash::{Digest, Threshold};
use vpm_netsim::channel::{apply, arrivals, ChannelConfig, DelayModel};
use vpm_netsim::congestion::{foreground_delays, BottleneckConfig, CrossTraffic};
use vpm_netsim::reorder::ReorderModel;
use vpm_packet::{SimDuration, SimTime};
use vpm_stats::accuracy::{quantile_error, DEFAULT_QUANTILES};
use vpm_trace::{TraceConfig, TraceGenerator};

/// Configuration of the verifiability sweep.
#[derive(Debug, Clone)]
pub struct VerifiabilityConfig {
    /// Path rate.
    pub pps: f64,
    /// Sequence duration.
    pub duration: SimDuration,
    /// X's own sampling rate (paper: 1%).
    pub x_rate: f64,
    /// Neighbor sampling rates to sweep (paper compares 1% and 0.1%).
    pub neighbor_rates: Vec<f64>,
    /// Loss inside X (paper: 25%).
    pub loss: f64,
    /// Gilbert-Elliott burst length.
    pub loss_burst: f64,
    /// Marker rate.
    pub marker_rate: f64,
    /// Inter-domain link delay on each side of X.
    pub link_delay: SimDuration,
    /// Bottleneck and cross traffic congesting X.
    pub bottleneck: BottleneckConfig,
    /// Cross traffic model.
    pub cross: CrossTraffic,
    /// Seed.
    pub seed: u64,
}

impl VerifiabilityConfig {
    /// The paper's scenario.
    pub fn paper(duration: SimDuration, seed: u64) -> Self {
        VerifiabilityConfig {
            pps: 100_000.0,
            duration,
            x_rate: 0.01,
            neighbor_rates: vec![0.01, 0.001],
            loss: 0.25,
            loss_burst: 5.0,
            marker_rate: 1e-3,
            link_delay: SimDuration::from_micros(50),
            bottleneck: BottleneckConfig::paper_default(),
            cross: CrossTraffic::paper_bursty_udp(),
            seed,
        }
    }

    /// Scaled-down version for tests.
    pub fn quick(seed: u64) -> Self {
        let mut c = Self::paper(SimDuration::from_millis(500), seed);
        c.pps = 50_000.0;
        c.marker_rate = 5e-3;
        c.neighbor_rates = vec![0.05, 0.005];
        c.x_rate = 0.05;
        c
    }
}

/// One sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerifiabilityPoint {
    /// Neighbor sampling rate.
    pub neighbor_rate: f64,
    /// Accuracy of X's *self-reported* estimate (HOPs 4→5), ms.
    pub self_accuracy_ms: f64,
    /// Accuracy of the *verification* estimate (HOPs 3→6), ms.
    pub verify_accuracy_ms: f64,
    /// Matched samples backing each estimate.
    pub matched_self: usize,
    /// Matched samples backing verification.
    pub matched_verify: usize,
}

/// Run the sweep.
pub fn run(cfg: &VerifiabilityConfig) -> Vec<VerifiabilityPoint> {
    let trace = TraceGenerator::new(TraceConfig {
        target_pps: cfg.pps,
        duration: cfg.duration,
        ..TraceConfig::paper_default(1, cfg.seed)
    })
    .generate();
    let digests: Vec<Digest> = trace.iter().map(|tp| tp.packet.digest()).collect();
    // HOP 3 (L's egress) sees the stream link_delay before HOP 4.
    let t4: Vec<SimTime> = trace.iter().map(|tp| tp.ts).collect();
    let t3: Vec<SimTime> = t4.iter().map(|&t| t - cfg.link_delay).collect();

    // X's transit: congestion + loss between HOPs 4 and 5.
    let fates = foreground_delays(&trace, &cfg.bottleneck, &cfg.cross, cfg.seed ^ 0xa1);
    let channel = ChannelConfig {
        delay: DelayModel::Series(fates),
        loss: (cfg.loss > 0.0).then_some((cfg.loss, cfg.loss_burst)),
        reorder: ReorderModel::none(),
        seed: cfg.seed ^ 0xb2,
    };
    let out5 = apply(&t4, &channel);
    let deliveries = arrivals(&out5); // observation order at HOP 5

    // Ground truth for the verification segment (HOP 3 → HOP 6): delay
    // through X plus both links.
    let truth_3_to_6: Vec<f64> = deliveries
        .iter()
        .map(|d| (d.ts_out + cfg.link_delay).signed_delta(t3[d.idx]) as f64 / 1e6) // vpm-lint: allow(R1, d.idx indexes the trace the deliveries came from)
        .collect();
    // Ground truth for X's own segment (HOP 4 → HOP 5).
    let truth_4_to_5: Vec<f64> = deliveries
        .iter()
        .map(|d| d.ts_out.signed_delta(t4[d.idx]) as f64 / 1e6) // vpm-lint: allow(R1, d.idx indexes the trace the deliveries came from)
        .collect();

    let marker = Threshold::from_rate(cfg.marker_rate);
    let sample_stream =
        |rate: f64, idx_times: &[(usize, SimTime)]| -> Vec<vpm_core::receipt::SampleRecord> {
            let mut s = DelaySampler::new(marker, Threshold::from_rate(rate));
            for &(i, t) in idx_times {
                s.observe(digests[i], t); // vpm-lint: allow(R1, i ranges over the trace arrays)
            }
            s.drain()
        };

    let all4: Vec<(usize, SimTime)> = t4.iter().copied().enumerate().collect();
    let all3: Vec<(usize, SimTime)> = t3.iter().copied().enumerate().collect();
    let at5: Vec<(usize, SimTime)> = deliveries.iter().map(|d| (d.idx, d.ts_out)).collect();
    let at6: Vec<(usize, SimTime)> = deliveries
        .iter()
        .map(|d| (d.idx, d.ts_out + cfg.link_delay))
        .collect();

    // X's self-report at its own rate — computed once.
    let s4 = sample_stream(cfg.x_rate, &all4);
    let s5 = sample_stream(cfg.x_rate, &at5);
    let matched_self = match_samples(&s4, &s5);
    let est_self: Vec<f64> = matched_self.iter().map(|m| m.delay_ms()).collect();
    let self_acc = quantile_error(&truth_4_to_5, &est_self, &DEFAULT_QUANTILES)
        .map_or(f64::INFINITY, |r| r.max_error);

    let mut points = Vec::new();
    for &n_rate in &cfg.neighbor_rates {
        let s3 = sample_stream(n_rate, &all3);
        let s6 = sample_stream(n_rate, &at6);
        let matched_verify = match_samples(&s3, &s6);
        let est_verify: Vec<f64> = matched_verify.iter().map(|m| m.delay_ms()).collect();
        let verify_acc = quantile_error(&truth_3_to_6, &est_verify, &DEFAULT_QUANTILES)
            .map_or(f64::INFINITY, |r| r.max_error);
        points.push(VerifiabilityPoint {
            neighbor_rate: n_rate,
            self_accuracy_ms: self_acc,
            verify_accuracy_ms: verify_acc,
            matched_self: matched_self.len(),
            matched_verify: matched_verify.len(),
        });
    }
    points
}

/// Render as a text table.
pub fn render_table(points: &[VerifiabilityPoint]) -> String {
    let mut s = String::from(
        "Verifiability (§7.2): X at fixed rate, neighbors swept\n  nbr-rate%   self-acc[ms]   verify-acc[ms]   matched(self/verify)\n",
    );
    for p in points {
        s.push_str(&format!(
            "{:>10.2} {:>14.3} {:>16.3}   {}/{}\n",
            p.neighbor_rate * 100.0,
            p.self_accuracy_ms,
            p.verify_accuracy_ms,
            p.matched_self,
            p.matched_verify,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_neighbor_rate_worsens_verification() {
        let cfg = VerifiabilityConfig::quick(3);
        let points = run(&cfg);
        assert_eq!(points.len(), 2);
        let hi = &points[0]; // 5%
        let lo = &points[1]; // 0.5%
        assert!(hi.matched_verify > lo.matched_verify);
        assert!(
            lo.verify_accuracy_ms >= hi.verify_accuracy_ms * 0.8,
            "verification should not improve with fewer samples: {} vs {}",
            lo.verify_accuracy_ms,
            hi.verify_accuracy_ms
        );
    }

    #[test]
    fn matched_neighbor_rate_verifies_at_self_accuracy() {
        let cfg = VerifiabilityConfig::quick(5);
        let points = run(&cfg);
        // Neighbor at X's own rate: verification accuracy within ~3× of
        // self accuracy (same information content, different segment).
        let p = &points[0];
        assert!(
            p.verify_accuracy_ms <= p.self_accuracy_ms * 3.0 + 0.5,
            "verify {} vs self {}",
            p.verify_accuracy_ms,
            p.self_accuracy_ms
        );
    }

    #[test]
    fn table_renders() {
        let t = render_table(&run(&VerifiabilityConfig::quick(7)));
        assert!(t.contains("Verifiability"));
    }
}
