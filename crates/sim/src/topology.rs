//! Domain-level topologies.
//!
//! A topology is an ordered chain of domains along one HOP path, each
//! contributing up to two HOPs (ingress and egress), connected by
//! inter-domain links. The canonical instance is the paper's Figure 1:
//! source domain `S` (HOP 1), transit domains `L` (HOPs 2,3), `X`
//! (HOPs 4,5), `N` (HOPs 6,7) and destination `D` (HOP 8).

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;
use vpm_core::receipt::PathId;
use vpm_netsim::channel::ChannelConfig;
use vpm_packet::{DomainId, HeaderSpec, HopId, Ipv4Prefix, SimDuration};

/// What part a domain plays on the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainRole {
    /// Originates the traffic; has only an egress HOP.
    Source,
    /// Forwards the traffic; has ingress and egress HOPs.
    Transit,
    /// Terminates the traffic; has only an ingress HOP.
    Destination,
}

/// One domain on the path.
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// Identifier.
    pub id: DomainId,
    /// Human-readable name ("S", "L", "X", …).
    pub name: String,
    /// Role on this path.
    pub role: DomainRole,
    /// Ingress HOP (absent for the source).
    pub ingress: Option<HopId>,
    /// Egress HOP (absent for the destination).
    pub egress: Option<HopId>,
    /// What the domain does to transit traffic between its HOPs.
    /// Ignored for source/destination domains.
    pub transit: ChannelConfig,
}

/// An inter-domain link between the egress HOP of one domain and the
/// ingress HOP of the next.
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Delivering HOP.
    pub up: HopId,
    /// Receiving HOP.
    pub down: HopId,
    /// Link behaviour (normally near-ideal).
    pub channel: ChannelConfig,
    /// The `MaxDiff` both ends advertise for this link.
    pub max_diff: SimDuration,
}

/// An ordered chain of domains and the links between them.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Domains in path order.
    pub domains: Vec<DomainSpec>,
    /// Links in path order (`domains.len() - 1` of them).
    pub links: Vec<LinkSpec>,
    /// The prefix pair naming this HOP path.
    pub spec: HeaderSpec,
}

impl Topology {
    /// All HOPs in path order.
    pub fn hops(&self) -> Vec<HopId> {
        let mut v = Vec::new();
        for d in &self.domains {
            if let Some(h) = d.ingress {
                v.push(h);
            }
            if let Some(h) = d.egress {
                v.push(h);
            }
        }
        v
    }

    /// The domain owning a HOP.
    pub fn domain_of(&self, hop: HopId) -> Option<&DomainSpec> {
        self.domains
            .iter()
            .find(|d| d.ingress == Some(hop) || d.egress == Some(hop))
    }

    /// The `MaxDiff` of the link a HOP sits on (every HOP is on exactly
    /// one inter-domain link).
    pub fn link_max_diff(&self, hop: HopId) -> Option<SimDuration> {
        self.links
            .iter()
            .find(|l| l.up == hop || l.down == hop)
            .map(|l| l.max_diff)
    }

    /// Domain ids in path order.
    pub fn domain_ids(&self) -> Vec<DomainId> {
        self.domains.iter().map(|d| d.id).collect()
    }

    /// Index of a domain by name.
    pub fn domain_by_name(&self, name: &str) -> Option<&DomainSpec> {
        self.domains.iter().find(|d| d.name == name)
    }

    /// The `PathID` each HOP stamps on its receipts, in path order —
    /// the single source of truth shared by the path runner (which
    /// registers these on every pipeline) and path-scoped verification
    /// (which uses them to fetch a HOP's frames from exactly one shard
    /// of a sharded transport).
    pub fn hop_path_ids(&self) -> Vec<(HopId, PathId)> {
        let hops = self.hops();
        hops.iter()
            .enumerate()
            .map(|(pos, &hop)| {
                let max_diff = self
                    .link_max_diff(hop)
                    .unwrap_or(SimDuration::from_millis(2));
                let path = PathId {
                    spec: self.spec,
                    prev_hop: (pos > 0).then(|| hops[pos - 1]), // vpm-lint: allow(R1, guarded by pos > 0)
                    next_hop: hops.get(pos + 1).copied(),
                    max_diff,
                };
                (hop, path)
            })
            .collect()
    }
}

/// Builder for the paper's Figure 1 topology.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// What domain `X` does to transit traffic (the domain under
    /// evaluation; Figure 2 congests it).
    pub x_transit: ChannelConfig,
    /// What domain `L` does (near-ideal by default).
    pub l_transit: ChannelConfig,
    /// What domain `N` does (near-ideal by default).
    pub n_transit: ChannelConfig,
    /// Inter-domain link delay.
    pub link_delay: SimDuration,
    /// Advertised `MaxDiff` on every link.
    pub max_diff: SimDuration,
    /// The path's prefix pair.
    pub spec: HeaderSpec,
    /// First HOP id (the canonical Figure 1 starts at HOP 1; fleet
    /// instances use disjoint ranges).
    pub hop_base: u16,
    /// First domain id (the canonical Figure 1 starts at domain 0).
    pub domain_base: u16,
}

/// HOPs a [`Figure1`] chain occupies (S:1, L:2, X:2, N:2, D:1).
pub const FIGURE1_HOPS: u16 = 8;
/// Domains a [`Figure1`] chain occupies (S, L, X, N, D).
pub const FIGURE1_DOMAINS: u16 = 5;

impl Figure1 {
    /// Defaults: ideal 100 µs transits everywhere, 50 µs links,
    /// `MaxDiff` = 2 ms, the trace generator's default prefix pair.
    pub fn ideal() -> Self {
        Figure1 {
            x_transit: ChannelConfig::ideal(SimDuration::from_micros(100)),
            l_transit: ChannelConfig::ideal(SimDuration::from_micros(100)),
            n_transit: ChannelConfig::ideal(SimDuration::from_micros(100)),
            link_delay: SimDuration::from_micros(50),
            max_diff: SimDuration::from_millis(2),
            spec: vpm_trace::TraceConfig::paper_default(1, 0).spec,
            hop_base: 1,
            domain_base: 0,
        }
    }

    /// The `idx`-th independent Figure-1 instance of a fleet: HOPs
    /// `8·idx+1 ..= 8·idx+8`, domains `5·idx ..= 5·idx+4`, and a
    /// per-instance `/24` prefix pair — so every instance's receipts,
    /// keys, and `PathID`s are disjoint from every other's and many
    /// instances can share one transport.
    ///
    /// # Panics
    /// When `idx` would overflow the 16-bit HOP id space
    /// (`idx > 8190`).
    #[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
    pub fn numbered(idx: usize) -> Self {
        assert!(
            (idx as u64 + 1) * FIGURE1_HOPS as u64 <= u16::MAX as u64,
            "fleet index {idx} overflows the HOP id space"
        );
        let (hi, lo) = ((idx >> 8) as u8, idx as u8);
        Figure1 {
            spec: HeaderSpec::new(
                Ipv4Prefix::new(Ipv4Addr::new(10, hi, lo, 0), 24).expect("/24 is valid"), // vpm-lint: allow(R1, a /24 prefix is valid for any octet values)
                Ipv4Prefix::new(Ipv4Addr::new(20, hi, lo, 0), 24).expect("/24 is valid"), // vpm-lint: allow(R1, a /24 prefix is valid for any octet values)
            ),
            hop_base: 1 + idx as u16 * FIGURE1_HOPS,
            domain_base: idx as u16 * FIGURE1_DOMAINS,
            ..Figure1::ideal()
        }
    }

    /// Materialize the topology: S(1) – L(2,3) – X(4,5) – N(6,7) – D(8)
    /// (HOP and domain numbers shifted by `hop_base - 1` and
    /// `domain_base`).
    pub fn build(self) -> Topology {
        let hop = |n: u16| self.hop_base + n - 1;
        let d = |i: u16, name: &str, role, ing: Option<u16>, eg: Option<u16>, ch: ChannelConfig| {
            DomainSpec {
                id: DomainId(self.domain_base + i),
                name: name.to_string(),
                role,
                ingress: ing.map(|n| HopId(hop(n))),
                egress: eg.map(|n| HopId(hop(n))),
                transit: ch,
            }
        };
        let ideal_transit = ChannelConfig::ideal(SimDuration::from_micros(10));
        let domains = vec![
            d(
                0,
                "S",
                DomainRole::Source,
                None,
                Some(1),
                ideal_transit.clone(),
            ),
            d(
                1,
                "L",
                DomainRole::Transit,
                Some(2),
                Some(3),
                self.l_transit,
            ),
            d(
                2,
                "X",
                DomainRole::Transit,
                Some(4),
                Some(5),
                self.x_transit,
            ),
            d(
                3,
                "N",
                DomainRole::Transit,
                Some(6),
                Some(7),
                self.n_transit,
            ),
            d(
                4,
                "D",
                DomainRole::Destination,
                Some(8),
                None,
                ideal_transit,
            ),
        ];
        let link = |up: u16, down: u16| LinkSpec {
            up: HopId(hop(up)),
            down: HopId(hop(down)),
            channel: ChannelConfig::ideal(self.link_delay),
            max_diff: self.max_diff,
        };
        Topology {
            domains,
            links: vec![link(1, 2), link(3, 4), link(5, 6), link(7, 8)],
            spec: self.spec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let t = Figure1::ideal().build();
        assert_eq!(t.domains.len(), 5);
        assert_eq!(t.links.len(), 4);
        assert_eq!(
            t.hops(),
            (1..=8).map(HopId).collect::<Vec<_>>(),
            "HOPs 1..8 in path order"
        );
    }

    #[test]
    fn hop_ownership() {
        let t = Figure1::ideal().build();
        assert_eq!(t.domain_of(HopId(4)).unwrap().name, "X");
        assert_eq!(t.domain_of(HopId(5)).unwrap().name, "X");
        assert_eq!(t.domain_of(HopId(1)).unwrap().name, "S");
        assert!(t.domain_of(HopId(9)).is_none());
    }

    #[test]
    fn every_hop_on_exactly_one_link() {
        let t = Figure1::ideal().build();
        for h in t.hops() {
            let n = t.links.iter().filter(|l| l.up == h || l.down == h).count();
            assert_eq!(n, 1, "{h} on {n} links");
        }
        assert_eq!(t.link_max_diff(HopId(5)), Some(SimDuration::from_millis(2)));
    }

    #[test]
    fn lookup_by_name() {
        let t = Figure1::ideal().build();
        assert_eq!(t.domain_by_name("X").unwrap().id, DomainId(2));
        assert!(t.domain_by_name("Z").is_none());
        assert_eq!(t.domain_ids().len(), 5);
    }

    #[test]
    fn numbered_instances_occupy_disjoint_id_spaces() {
        assert_eq!(
            Figure1::numbered(0).build().hops(),
            Figure1::ideal().build().hops()
        );
        let a = Figure1::numbered(3).build();
        let b = Figure1::numbered(4).build();
        assert_eq!(a.hops(), (25..=32).map(HopId).collect::<Vec<_>>());
        assert_eq!(b.hops(), (33..=40).map(HopId).collect::<Vec<_>>());
        assert_eq!(a.domain_ids(), (15..20).map(DomainId).collect::<Vec<_>>());
        assert_ne!(a.spec, b.spec, "per-instance prefix pairs differ");
        // The shifted chain keeps the Figure-1 shape.
        assert_eq!(a.domain_by_name("X").unwrap().ingress, Some(HopId(28)));
        assert_eq!(a.links.len(), 4);
        for h in a.hops() {
            assert_eq!(
                a.links.iter().filter(|l| l.up == h || l.down == h).count(),
                1,
                "{h}"
            );
        }
    }

    #[test]
    fn hop_path_ids_chain_prev_and_next() {
        let t = Figure1::numbered(2).build();
        let ids = t.hop_path_ids();
        assert_eq!(ids.len(), 8);
        for (pos, (hop, path)) in ids.iter().enumerate() {
            assert_eq!(*hop, t.hops()[pos]);
            assert_eq!(path.spec, t.spec);
            assert_eq!(path.prev_hop, (pos > 0).then(|| t.hops()[pos - 1]));
            assert_eq!(path.next_hop, t.hops().get(pos + 1).copied());
            assert_eq!(path.max_diff, t.link_max_diff(*hop).unwrap());
        }
        // All eight PathIDs are distinct (they disambiguate shards).
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                assert_ne!(ids[i].1, ids[j].1, "{i} vs {j}");
            }
        }
    }
}
