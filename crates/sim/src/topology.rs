//! Domain-level topologies.
//!
//! A topology is an ordered chain of domains along one HOP path, each
//! contributing up to two HOPs (ingress and egress), connected by
//! inter-domain links. The canonical instance is the paper's Figure 1:
//! source domain `S` (HOP 1), transit domains `L` (HOPs 2,3), `X`
//! (HOPs 4,5), `N` (HOPs 6,7) and destination `D` (HOP 8).

use serde::{Deserialize, Serialize};
use vpm_netsim::channel::ChannelConfig;
use vpm_packet::{DomainId, HeaderSpec, HopId, SimDuration};

/// What part a domain plays on the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainRole {
    /// Originates the traffic; has only an egress HOP.
    Source,
    /// Forwards the traffic; has ingress and egress HOPs.
    Transit,
    /// Terminates the traffic; has only an ingress HOP.
    Destination,
}

/// One domain on the path.
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// Identifier.
    pub id: DomainId,
    /// Human-readable name ("S", "L", "X", …).
    pub name: String,
    /// Role on this path.
    pub role: DomainRole,
    /// Ingress HOP (absent for the source).
    pub ingress: Option<HopId>,
    /// Egress HOP (absent for the destination).
    pub egress: Option<HopId>,
    /// What the domain does to transit traffic between its HOPs.
    /// Ignored for source/destination domains.
    pub transit: ChannelConfig,
}

/// An inter-domain link between the egress HOP of one domain and the
/// ingress HOP of the next.
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Delivering HOP.
    pub up: HopId,
    /// Receiving HOP.
    pub down: HopId,
    /// Link behaviour (normally near-ideal).
    pub channel: ChannelConfig,
    /// The `MaxDiff` both ends advertise for this link.
    pub max_diff: SimDuration,
}

/// An ordered chain of domains and the links between them.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Domains in path order.
    pub domains: Vec<DomainSpec>,
    /// Links in path order (`domains.len() - 1` of them).
    pub links: Vec<LinkSpec>,
    /// The prefix pair naming this HOP path.
    pub spec: HeaderSpec,
}

impl Topology {
    /// All HOPs in path order.
    pub fn hops(&self) -> Vec<HopId> {
        let mut v = Vec::new();
        for d in &self.domains {
            if let Some(h) = d.ingress {
                v.push(h);
            }
            if let Some(h) = d.egress {
                v.push(h);
            }
        }
        v
    }

    /// The domain owning a HOP.
    pub fn domain_of(&self, hop: HopId) -> Option<&DomainSpec> {
        self.domains
            .iter()
            .find(|d| d.ingress == Some(hop) || d.egress == Some(hop))
    }

    /// The `MaxDiff` of the link a HOP sits on (every HOP is on exactly
    /// one inter-domain link).
    pub fn link_max_diff(&self, hop: HopId) -> Option<SimDuration> {
        self.links
            .iter()
            .find(|l| l.up == hop || l.down == hop)
            .map(|l| l.max_diff)
    }

    /// Domain ids in path order.
    pub fn domain_ids(&self) -> Vec<DomainId> {
        self.domains.iter().map(|d| d.id).collect()
    }

    /// Index of a domain by name.
    pub fn domain_by_name(&self, name: &str) -> Option<&DomainSpec> {
        self.domains.iter().find(|d| d.name == name)
    }
}

/// Builder for the paper's Figure 1 topology.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// What domain `X` does to transit traffic (the domain under
    /// evaluation; Figure 2 congests it).
    pub x_transit: ChannelConfig,
    /// What domain `L` does (near-ideal by default).
    pub l_transit: ChannelConfig,
    /// What domain `N` does (near-ideal by default).
    pub n_transit: ChannelConfig,
    /// Inter-domain link delay.
    pub link_delay: SimDuration,
    /// Advertised `MaxDiff` on every link.
    pub max_diff: SimDuration,
    /// The path's prefix pair.
    pub spec: HeaderSpec,
}

impl Figure1 {
    /// Defaults: ideal 100 µs transits everywhere, 50 µs links,
    /// `MaxDiff` = 2 ms, the trace generator's default prefix pair.
    pub fn ideal() -> Self {
        Figure1 {
            x_transit: ChannelConfig::ideal(SimDuration::from_micros(100)),
            l_transit: ChannelConfig::ideal(SimDuration::from_micros(100)),
            n_transit: ChannelConfig::ideal(SimDuration::from_micros(100)),
            link_delay: SimDuration::from_micros(50),
            max_diff: SimDuration::from_millis(2),
            spec: vpm_trace::TraceConfig::paper_default(1, 0).spec,
        }
    }

    /// Materialize the topology: S(1) – L(2,3) – X(4,5) – N(6,7) – D(8).
    pub fn build(self) -> Topology {
        let d = |i: u16, name: &str, role, ing: Option<u16>, eg: Option<u16>, ch: ChannelConfig| {
            DomainSpec {
                id: DomainId(i),
                name: name.to_string(),
                role,
                ingress: ing.map(HopId),
                egress: eg.map(HopId),
                transit: ch,
            }
        };
        let ideal_transit = ChannelConfig::ideal(SimDuration::from_micros(10));
        let domains = vec![
            d(
                0,
                "S",
                DomainRole::Source,
                None,
                Some(1),
                ideal_transit.clone(),
            ),
            d(
                1,
                "L",
                DomainRole::Transit,
                Some(2),
                Some(3),
                self.l_transit,
            ),
            d(
                2,
                "X",
                DomainRole::Transit,
                Some(4),
                Some(5),
                self.x_transit,
            ),
            d(
                3,
                "N",
                DomainRole::Transit,
                Some(6),
                Some(7),
                self.n_transit,
            ),
            d(
                4,
                "D",
                DomainRole::Destination,
                Some(8),
                None,
                ideal_transit,
            ),
        ];
        let link = |up: u16, down: u16| LinkSpec {
            up: HopId(up),
            down: HopId(down),
            channel: ChannelConfig::ideal(self.link_delay),
            max_diff: self.max_diff,
        };
        Topology {
            domains,
            links: vec![link(1, 2), link(3, 4), link(5, 6), link(7, 8)],
            spec: self.spec,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let t = Figure1::ideal().build();
        assert_eq!(t.domains.len(), 5);
        assert_eq!(t.links.len(), 4);
        assert_eq!(
            t.hops(),
            (1..=8).map(HopId).collect::<Vec<_>>(),
            "HOPs 1..8 in path order"
        );
    }

    #[test]
    fn hop_ownership() {
        let t = Figure1::ideal().build();
        assert_eq!(t.domain_of(HopId(4)).unwrap().name, "X");
        assert_eq!(t.domain_of(HopId(5)).unwrap().name, "X");
        assert_eq!(t.domain_of(HopId(1)).unwrap().name, "S");
        assert!(t.domain_of(HopId(9)).is_none());
    }

    #[test]
    fn every_hop_on_exactly_one_link() {
        let t = Figure1::ideal().build();
        for h in t.hops() {
            let n = t.links.iter().filter(|l| l.up == h || l.down == h).count();
            assert_eq!(n, 1, "{h} on {n} links");
        }
        assert_eq!(t.link_max_diff(HopId(5)), Some(SimDuration::from_millis(2)));
    }

    #[test]
    fn lookup_by_name() {
        let t = Figure1::ideal().build();
        assert_eq!(t.domain_by_name("X").unwrap().id, DomainId(2));
        assert!(t.domain_by_name("Z").is_none());
        assert_eq!(t.domain_ids().len(), 5);
    }
}
