//! The many-path fleet workload and its parallel verifier.
//!
//! The paper's regulator must verify receipts from *every* monitored
//! path, not just the one Figure-1 chain the experiments replay. This
//! module scales the verifier plane the way the collector (PR 3) and
//! wire (PR 4) planes were scaled:
//!
//! * [`build_fleet`] lays out N independent Figure-1 instances
//!   ([`Figure1::numbered`]) with disjoint HOP/domain id spaces and
//!   per-path prefix pairs, each cell's environment (delay model, loss
//!   process, honest vs lying) sampled deterministically from the
//!   scenario-matrix axes;
//! * [`run_fleet`] drives every path end to end and publishes all
//!   receipts through **one shared transport** from concurrent
//!   publisher threads — interleaved frames, racing sequence numbers,
//!   some paths leading with an empty quiet-interval batch (the PR 4
//!   edge case) — exactly the traffic shape a production receipt bus
//!   sees;
//! * [`analyze_fleet_from_transport`] fans per-path verification
//!   ([`crate::verdict::analyze_from_transport_scoped`], which touches
//!   only each HOP's shard) across a `vpm_core::par_map_indexed`
//!   worker pool. Verdicts are merged in path order, so the output is
//!   **byte-identical for every `jobs` count** — and byte-identical to
//!   folding `analyze_from_transport` over the paths sequentially
//!   (`tests/fleet.rs` pins both, the latter under proptest).
//!
//! A [`FleetPathVerdict`] fails on any **false accusation** (an honest
//! path with a flagged link, or a liar's lie spilling onto an innocent
//! link) and on any **missed liar** — `vpm fleet` exits non-zero if any
//! path fails, which is how CI gates the verifier plane.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use vpm_netsim::channel::{ChannelConfig, DelayModel};
use vpm_netsim::reorder::ReorderModel;
use vpm_packet::{DomainId, HopId, SimDuration};
use vpm_trace::{TraceConfig, TraceGenerator};
use vpm_wire::{Profile, ReceiptTransport};

use crate::adversary::{apply_lies, LieSite, LieStrategy};
use crate::run::{run_path, RunConfig};
use crate::topology::{Figure1, Topology};
use crate::verdict::{analyze_from_transport_scoped, PathAnalysis};

/// Base seed of the canonical fleet (`vpm fleet` default).
pub const FLEET_BASE_SEED: u64 = 0xF1EE_7000;

/// Shape of a fleet run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Independent paths (Figure-1 instances).
    pub paths: usize,
    /// Paths that lie (spread evenly across the fleet).
    pub liars: usize,
    /// Concurrent publisher threads feeding the shared transport.
    pub publishers: usize,
    /// Master seed; every path derives its randomness from it.
    pub base_seed: u64,
    /// Trace duration per path (ms).
    pub trace_ms: u64,
    /// Trace rate per path (packets per second).
    pub target_pps: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            paths: 64,
            liars: 8,
            publishers: 4,
            base_seed: FLEET_BASE_SEED,
            trace_ms: 80,
            target_pps: 25_000.0,
        }
    }
}

/// The lie a lying fleet path tells (a subset of the matrix's
/// adversary axis — the two receipt-doctoring strategies that need no
/// re-run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FleetLie {
    /// `X` fabricates egress receipts to hide its loss.
    BlameShift,
    /// `X` shaves its egress timestamps to hide delay.
    Sugarcoat,
}

impl FleetLie {
    /// Stable label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            FleetLie::BlameShift => "blame-shift",
            FleetLie::Sugarcoat => "sugarcoat",
        }
    }

    fn strategy(&self) -> LieStrategy {
        match self {
            FleetLie::BlameShift => LieStrategy::BlameShiftLoss {
                claimed_delay: SimDuration::from_micros(300),
            },
            FleetLie::Sugarcoat => LieStrategy::SugarcoatDelay {
                shave: SimDuration::from_millis(5),
            },
        }
    }
}

/// One path of the fleet: its topology, run configuration, and (for
/// lying paths) the lie.
#[derive(Debug, Clone)]
pub struct FleetPath {
    /// Position in the fleet (stable across runs).
    pub index: usize,
    /// The path's Figure-1 instance (disjoint HOP/domain ids).
    pub topology: Topology,
    /// The path's runner configuration.
    pub run_config: RunConfig,
    /// The lie this path's `X` tells, if any.
    pub lie: Option<FleetLie>,
    /// Does the path lead with an empty quiet-interval batch?
    pub quiet_first_interval: bool,
    /// Trace duration for this path (ms).
    pub trace_ms: u64,
    /// Trace rate for this path (packets per second).
    pub target_pps: f64,
    /// The path's derived seed.
    pub seed: u64,
}

impl FleetPath {
    /// The lying domain's HOP pair: `X`'s ingress (the observations
    /// the lie is constructed from) and egress (whose receipts are
    /// doctored), read from the path's own topology.
    #[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
    pub fn liar_hops(&self) -> (HopId, HopId) {
        let x = self
            .topology
            .domain_by_name("X")
            .expect("fleet paths are Figure-1 chains"); // vpm-lint: allow(R1, fleet topologies are Figure-1 chains by construction)
        (
            x.ingress.expect("transit has ingress"), // vpm-lint: allow(R1, Figure-1 transit domains always carry both HOPs)
            x.egress.expect("transit has egress"), // vpm-lint: allow(R1, Figure-1 transit domains always carry both HOPs)
        )
    }

    /// The inter-domain link a lie by this path's `X` must surface on:
    /// `X` egress → `N` ingress, read from the path's own topology so
    /// it can never drift from the instance's HOP numbering.
    #[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
    pub fn expected_liar_link(&self) -> (u16, u16) {
        let (_, egress) = self.liar_hops();
        let link = self
            .topology
            .links
            .iter()
            .find(|l| l.up == egress)
            .expect("X egress sits on an inter-domain link"); // vpm-lint: allow(R1, the Figure-1 builder places X's egress on an inter-domain link)
        (link.up.0, link.down.0)
    }

    /// The domain the fleet verifier analyzes this path as (the
    /// path's source domain — always on-path).
    pub fn collector_domain(&self) -> DomainId {
        self.topology.domain_ids()[0] // vpm-lint: allow(R1, built topologies always have at least one domain)
    }
}

/// A built fleet, ready to run and verify.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// The shape it was built from.
    pub config: FleetConfig,
    /// Every path, in index order.
    pub paths: Vec<FleetPath>,
}

/// Is path `i` of `n` a liar, with `k` liars spread evenly?
fn is_liar(i: usize, n: usize, k: usize) -> bool {
    // Bresenham-style spread: exactly k of n indices, evenly spaced.
    (i + 1) * k / n > i * k / n
}

/// Deterministic splitmix64 stream over the fleet seed (shared with
/// the audit workload's churn process).
pub(crate) fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Lay out a fleet: `config.paths` independent Figure-1 instances with
/// environments cycled deterministically through the matrix's delay
/// and loss axes, `config.liars` lying paths spread evenly (blame-shift
/// paths are guaranteed loss to hide), and every fifth path leading
/// with an empty quiet-interval batch.
pub fn build_fleet(config: &FleetConfig) -> Fleet {
    assert!(config.paths >= 1, "a fleet has at least one path");
    assert!(config.liars <= config.paths, "more liars than paths");
    let mut liar_count = 0usize;
    let paths = (0..config.paths)
        .map(|i| {
            let seed = mix(config.base_seed, i as u64 + 1);
            let lying = is_liar(i, config.paths, config.liars);
            let lie = lying.then(|| {
                liar_count += 1;
                if liar_count % 2 == 1 {
                    FleetLie::BlameShift
                } else {
                    FleetLie::Sugarcoat
                }
            });
            let delay = match i % 2 {
                0 => DelayModel::Constant(SimDuration::from_micros(300)),
                _ => DelayModel::Jitter {
                    base: SimDuration::from_micros(100),
                    jitter: SimDuration::from_micros(800),
                },
            };
            // Loss axis: none / uniform / bursty — except a blame-shift
            // liar always carries loss (there is nothing to hide
            // otherwise).
            let loss = match (lie, i % 3) {
                (Some(FleetLie::BlameShift), _) | (_, 1) => Some((0.05, 1.0)),
                (_, 2) => Some((0.12, 4.0)),
                _ => None,
            };
            let mut fig = Figure1::numbered(i);
            fig.x_transit = ChannelConfig {
                delay,
                loss,
                reorder: ReorderModel::none(),
                seed: seed ^ 0xc4a1,
            };
            let run_config = RunConfig {
                sampling_rate: 0.05,
                // ~13 aggregates per fleet trace. Blame-shift exposure
                // is the §4 count-mismatch over *joined* aggregates,
                // and joining needs boundary digests that survived the
                // liar's own loss: at 400-packet aggregates a
                // digest-poor 2k-packet trace can realize a single
                // interior boundary, lose it inside X, and leave the
                // verifier nothing to join.
                aggregate_size: 150,
                // The paper's µ = 10⁻² regime (~20 markers per fleet
                // trace). The matrix runs µ = 2·10⁻³ to starve its
                // sample-bias attacker, but at fleet trace lengths
                // that leaves ~4 expected markers — a path whose few
                // markers all die inside a lossy X flushes no samples
                // downstream (Algorithm 1 buffers until a future
                // marker) and a liar there would have nothing to
                // cross-check. The fleet has no sample-bias cell, so
                // it keeps markers plentiful.
                marker_rate: 0.01,
                j_window: SimDuration::from_millis(2),
                seed: seed ^ 0x10c5,
                ..RunConfig::default()
            };
            FleetPath {
                index: i,
                topology: fig.build(),
                run_config,
                lie,
                quiet_first_interval: i % 5 == 3,
                trace_ms: config.trace_ms,
                target_pps: config.target_pps,
                seed,
            }
        })
        .collect();
    Fleet {
        config: *config,
        paths,
    }
}

/// Run one path end to end and publish its receipts (doctored by its
/// lie, if any) through `transport`. Returns the number of frames
/// published.
#[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
fn publish_path(path: &FleetPath, transport: &dyn ReceiptTransport) -> usize {
    let trace = TraceGenerator::new(TraceConfig {
        target_pps: path.target_pps,
        duration: SimDuration::from_millis(path.trace_ms),
        spec: path.topology.spec,
        ..TraceConfig::paper_default(1, path.seed ^ 0x7ace)
    })
    .generate();
    let mut run = run_path(&trace, &path.topology, &path.run_config);
    if let Some(lie) = path.lie {
        let (ingress, egress) = path.liar_hops();
        apply_lies(
            &mut run,
            &[LieSite {
                ingress,
                egress,
                strategy: lie.strategy(),
            }],
        );
    }
    let on_path = path.topology.domain_ids();
    let mut frames = 0usize;
    for h in &run.hops {
        let key = h.hop_key();
        transport
            .register_key(h.hop, key)
            .expect("fleet HOP keys are consistent"); // vpm-lint: allow(R1, every fleet HOP key was registered in the loop above)
        if path.quiet_first_interval {
            // Interval 0: nothing matured yet — an empty, signed batch
            // (the PR 4 quiet-first-interval edge, now a standing part
            // of the fleet's traffic shape).
            let mut empty = vpm_core::processor::ReceiptBatch {
                hop: h.hop,
                batch_seq: 0,
                samples: vec![],
                aggregates: vec![],
                auth_tag: 0,
            };
            empty.auth_tag = empty.compute_tag(key.tag_key());
            transport
                .publish_batch(h.domain, &empty, Profile::Precise, on_path.clone(), &key)
                .expect("signed empty batches publish"); // vpm-lint: allow(R1, encoding a batch this code just built cannot exceed wire limits)
            frames += 1;
        }
        transport
            .publish_batch(h.domain, &h.batch, Profile::Precise, on_path.clone(), &key)
            .expect("signed batches publish"); // vpm-lint: allow(R1, encoding a batch this code just built cannot exceed wire limits)
        frames += 1;
    }
    frames
}

/// Drive every path of the fleet through `transport` from
/// `config.publishers` concurrent threads: paths are claimed from an
/// atomic work list, so frames from different paths interleave on the
/// bus and sequence numbers race — the traffic shape the per-shard
/// cursor design exists for. Returns the total frames published.
pub fn run_fleet(fleet: &Fleet, transport: &dyn ReceiptTransport) -> usize {
    let workers = fleet.config.publishers.clamp(1, fleet.paths.len());
    let next = AtomicUsize::new(0);
    let total = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= fleet.paths.len() {
                    break;
                }
                let frames = publish_path(&fleet.paths[i], transport); // vpm-lint: allow(R1, i ranges over fleet.paths indices)
                total.fetch_add(frames, Ordering::Relaxed);
            });
        }
    });
    total.load(Ordering::Relaxed)
}

/// One path's verification verdict, as serialized by `vpm fleet
/// --json`. Field order is stable; the `--jobs` byte-identity tests
/// compare serialized verdicts directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetPathVerdict {
    /// The path's fleet index.
    pub path: usize,
    /// The lie the path was built to tell, if any.
    pub lie: Option<String>,
    /// Receipt-derived loss estimate for the path's `X` domain.
    pub x_loss_est: Option<f64>,
    /// Links flagged inconsistent, as `(up, down)` HOP ids.
    pub flagged_links: Vec<(u16, u16)>,
    /// Per-transit-domain summaries, in path order.
    pub domains: Vec<crate::verdict::DomainSummary>,
    /// Every verification invariant that failed (empty = path passes):
    /// false accusations on honest paths or innocent links, missed
    /// liars.
    pub failures: Vec<String>,
}

impl FleetPathVerdict {
    /// Did the verifier reach the right verdict for this path?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Judge one path's analysis against what the fleet built it to be.
    pub fn from_analysis(path: &FleetPath, analysis: &PathAnalysis) -> FleetPathVerdict {
        let flagged: Vec<(u16, u16)> = analysis
            .flagged_links()
            .iter()
            .map(|l| (l.up.0, l.down.0))
            .collect();
        let x_loss_est = analysis.domain("X").and_then(|d| d.estimate.loss.rate());
        let mut failures = Vec::new();
        match path.lie {
            None => {
                if !flagged.is_empty() {
                    failures.push(format!(
                        "false accusation: honest path flagged links {flagged:?}"
                    ));
                }
            }
            Some(lie) => {
                let expected = path.expected_liar_link();
                if !flagged.contains(&expected) {
                    failures.push(format!(
                        "liar not exposed: {} missing from {flagged:?}",
                        format_args!("{}→{}", expected.0, expected.1)
                    ));
                }
                if let Some(&link) = flagged.iter().find(|&&l| l != expected) {
                    failures.push(format!(
                        "false accusation: innocent link {}→{} flagged",
                        link.0, link.1
                    ));
                }
                if lie == FleetLie::BlameShift {
                    // The lie's whole point: X must *look* lossless.
                    match x_loss_est {
                        Some(est) if est < 0.02 => {}
                        other => {
                            failures.push(format!("blame-shift failed to hide X loss ({other:?})"))
                        }
                    }
                }
            }
        }
        FleetPathVerdict {
            path: path.index,
            lie: path.lie.map(|l| l.name().to_string()),
            x_loss_est,
            flagged_links: flagged,
            domains: analysis.domains.iter().map(|d| d.summary()).collect(),
            failures,
        }
    }
}

/// Verify every path of the fleet purely from disseminated frames,
/// `jobs` paths at a time.
///
/// Each worker runs [`analyze_from_transport_scoped`] for one path —
/// on a sharded transport that touches only the shards holding that
/// path's frames — and verdicts are merged in path order via
/// [`vpm_core::par_map_indexed`], so the result (and its serialized
/// form) is byte-identical for every `jobs >= 1` and equal to the
/// sequential per-path fold.
#[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
pub fn analyze_fleet_from_transport(
    fleet: &Fleet,
    transport: &dyn ReceiptTransport,
    jobs: usize,
) -> Vec<FleetPathVerdict> {
    vpm_core::par_map_indexed(&fleet.paths, jobs, |_, path| {
        let analysis =
            analyze_from_transport_scoped(&path.topology, transport, path.collector_domain())
                .expect("the fleet collector is on-path"); // vpm-lint: allow(R1, the collector domain is taken from the path being verified)
        FleetPathVerdict::from_analysis(path, &analysis)
    })
}

/// Render the verdict table the `vpm fleet` subcommand prints.
pub fn render_fleet_table(fleet: &Fleet, verdicts: &[FleetPathVerdict]) -> String {
    use std::fmt::Write;
    assert_eq!(fleet.paths.len(), verdicts.len(), "parallel slices");
    let failed = verdicts.iter().filter(|v| !v.passed()).count();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "fleet: {} paths ({} liars), {} failed",
        fleet.paths.len(),
        fleet.config.liars,
        failed
    );
    let _ = writeln!(
        s,
        "{:>5}  {:<12} {:>9}  {:<18} verdict",
        "path", "adversary", "X loss", "flagged links"
    );
    for (p, v) in fleet.paths.iter().zip(verdicts) {
        let links = if v.flagged_links.is_empty() {
            "-".to_string()
        } else {
            v.flagged_links
                .iter()
                .map(|(u, d)| format!("{u}→{d}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = writeln!(
            s,
            "{:>5}  {:<12} {:>9}  {:<18} {}",
            p.index,
            v.lie.as_deref().unwrap_or("honest"),
            v.x_loss_est
                .map_or_else(|| "-".to_string(), |l| format!("{l:.3}")),
            links,
            if v.passed() { "pass" } else { "FAIL" }
        );
        for f in &v.failures {
            let _ = writeln!(s, "       !! {f}");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn liar_spread_is_even_and_exact() {
        for (n, k) in [(64, 8), (10, 3), (5, 5), (7, 0), (1, 1)] {
            let liars: Vec<usize> = (0..n).filter(|&i| is_liar(i, n, k)).collect();
            assert_eq!(liars.len(), k, "n={n} k={k}");
            if k >= 2 {
                let gaps: Vec<usize> = liars.windows(2).map(|w| w[1] - w[0]).collect();
                let (lo, hi) = (*gaps.iter().min().unwrap(), *gaps.iter().max().unwrap());
                assert!(hi - lo <= 1, "uneven spread for n={n} k={k}: {liars:?}");
            }
        }
    }

    #[test]
    fn build_is_deterministic_and_well_formed() {
        let cfg = FleetConfig {
            paths: 12,
            liars: 4,
            ..FleetConfig::default()
        };
        let a = build_fleet(&cfg);
        let b = build_fleet(&cfg);
        assert_eq!(a.paths.len(), 12);
        for (pa, pb) in a.paths.iter().zip(&b.paths) {
            assert_eq!(pa.seed, pb.seed);
            assert_eq!(pa.lie, pb.lie);
            assert_eq!(pa.topology.hops(), pb.topology.hops());
        }
        assert_eq!(a.paths.iter().filter(|p| p.lie.is_some()).count(), 4);
        // Blame-shift paths always have loss to hide.
        for p in &a.paths {
            if p.lie == Some(FleetLie::BlameShift) {
                assert!(
                    p.topology
                        .domain_by_name("X")
                        .unwrap()
                        .transit
                        .loss
                        .is_some(),
                    "path {}",
                    p.index
                );
            }
            // Disjoint id spaces.
            assert_eq!(
                p.topology.hops()[0],
                HopId(1 + p.index as u16 * crate::topology::FIGURE1_HOPS)
            );
        }
        // Both lie flavours appear.
        let lies: std::collections::HashSet<_> = a.paths.iter().filter_map(|p| p.lie).collect();
        assert_eq!(lies.len(), 2);
    }

    #[test]
    fn expected_liar_link_matches_instance_numbering() {
        let fleet = build_fleet(&FleetConfig {
            paths: 3,
            liars: 3,
            ..FleetConfig::default()
        });
        // Path 0 is the canonical Figure 1: X egress 5 → N ingress 6.
        assert_eq!(fleet.paths[0].expected_liar_link(), (5, 6));
        assert_eq!(fleet.paths[2].expected_liar_link(), (21, 22));
    }
}
