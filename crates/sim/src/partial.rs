//! Partial deployment (paper §8).
//!
//! VPM does not need universal adoption to be useful — and its
//! incentives bite hardest on the domains that stay out:
//!
//! * a **non-deployer produces no receipts**, so the segment of the
//!   path it occupies can only be measured end-to-end between the
//!   nearest deployed HOPs; whatever happens there — including a
//!   deployed neighbor's own lies — lands on the non-deployer, who has
//!   no receipts to refute it ("a domain has to report on its
//!   performance in order to prevent its neighbors from blaming their
//!   problems on it");
//! * a **sole deployer**'s receipts are not independently verified, but
//!   they are *verifiable*: honest, internally consistent records it
//!   can hand to customers during an incident.

use std::collections::HashSet;
use vpm_core::verify::{DomainEstimate, Verifier};
use vpm_packet::{DomainId, HopId};

use crate::run::PathRun;
use crate::topology::{DomainRole, Topology};
use crate::verdict::DomainReport;

/// A path segment between two deployed HOPs that spans at least one
/// non-deploying domain.
#[derive(Debug, Clone)]
pub struct SegmentReport {
    /// The deployed HOP at the segment's upstream edge.
    pub up_hop: HopId,
    /// The deployed HOP at the downstream edge.
    pub down_hop: HopId,
    /// Non-deploying domains inside the segment — the parties that
    /// will absorb whatever this segment's numbers show.
    pub spans: Vec<DomainId>,
    /// The receipt-derived estimate over the whole segment.
    pub estimate: DomainEstimate,
}

/// Analysis of a partially deployed path.
#[derive(Debug, Clone)]
pub struct PartialAnalysis {
    /// Per-domain estimates for fully deployed transit domains.
    pub domains: Vec<DomainReport>,
    /// Estimates over segments that span non-deployers.
    pub segments: Vec<SegmentReport>,
    /// Domains that deployed VPM.
    pub deployed: Vec<DomainId>,
}

impl PartialAnalysis {
    /// The segment report spanning a given non-deployer, if any.
    pub fn segment_spanning(&self, domain: DomainId) -> Option<&SegmentReport> {
        self.segments.iter().find(|s| s.spans.contains(&domain))
    }
}

/// Analyze a path where only `deployed` domains produce receipts.
///
/// Receipts from non-deployed domains' HOPs are ignored (in a real
/// deployment they would not exist); measurement falls back to the
/// nearest deployed HOPs bracketing each gap.
pub fn analyze_partial(
    topology: &Topology,
    run: &PathRun,
    deployed: &HashSet<DomainId>,
) -> PartialAnalysis {
    let verifier = Verifier::default();

    // Fully deployed transit domains: per-domain estimates as usual.
    let mut domains = Vec::new();
    for dom in &topology.domains {
        if dom.role != DomainRole::Transit || !deployed.contains(&dom.id) {
            continue;
        }
        let (Some(hi), Some(he)) = (
            dom.ingress.and_then(|h| run.hop(h)),
            dom.egress.and_then(|h| run.hop(h)),
        ) else {
            continue;
        };
        domains.push(DomainReport {
            domain: dom.id,
            name: dom.name.clone(),
            hops: (hi.hop, he.hop),
            estimate: verifier.estimate_domain(
                &hi.samples,
                &hi.aggregates,
                &he.samples,
                &he.aggregates,
            ),
        });
    }

    // Walk the path; each maximal run of non-deployed domains becomes a
    // segment bracketed by the nearest deployed HOPs.
    let mut segments = Vec::new();
    let mut last_deployed_hop: Option<HopId> = None;
    let mut gap: Vec<DomainId> = Vec::new();
    for dom in &topology.domains {
        if deployed.contains(&dom.id) {
            if !gap.is_empty() {
                if let (Some(up), Some(down_h)) = (last_deployed_hop, dom.ingress) {
                    if let (Some(u), Some(d)) = (run.hop(up), run.hop(down_h)) {
                        segments.push(SegmentReport {
                            up_hop: up,
                            down_hop: down_h,
                            spans: std::mem::take(&mut gap),
                            estimate: verifier.estimate_domain(
                                &u.samples,
                                &u.aggregates,
                                &d.samples,
                                &d.aggregates,
                            ),
                        });
                    }
                }
                gap.clear();
            }
            // The most-downstream deployed HOP so far.
            if let Some(h) = dom.egress.or(dom.ingress) {
                last_deployed_hop = Some(h);
            }
        } else {
            gap.push(dom.id);
        }
    }

    // The deployment set arrives as a `HashSet`; the report must not
    // inherit its per-process iteration order.
    let mut deployed_sorted: Vec<DomainId> = deployed.iter().copied().collect(); // vpm-lint: allow(R2, hash order erased by the sort below)
    deployed_sorted.sort_unstable();
    PartialAnalysis {
        domains,
        segments,
        deployed: deployed_sorted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{apply_lie, LieStrategy};
    use crate::run::{run_path, RunConfig};
    use crate::topology::Figure1;
    use vpm_netsim::channel::{ChannelConfig, DelayModel};
    use vpm_netsim::reorder::ReorderModel;
    use vpm_packet::SimDuration;
    use vpm_trace::{TraceConfig, TraceGenerator};

    fn scenario(x_loss: f64, l_loss: f64) -> (Topology, PathRun) {
        let t = TraceGenerator::new(TraceConfig {
            target_pps: 50_000.0,
            duration: SimDuration::from_millis(250),
            ..TraceConfig::paper_default(1, 61)
        })
        .generate();
        let mut fig = Figure1::ideal();
        let ch = |loss: f64, seed: u64| ChannelConfig {
            delay: DelayModel::Constant(SimDuration::from_micros(300)),
            loss: (loss > 0.0).then_some((loss, 4.0)),
            reorder: ReorderModel::none(),
            seed,
        };
        fig.x_transit = ch(x_loss, 3);
        fig.l_transit = ch(l_loss, 5);
        let topo = fig.build();
        let cfg = RunConfig {
            sampling_rate: 0.05,
            aggregate_size: 500,
            marker_rate: 0.01,
            j_window: SimDuration::from_millis(2),
            ..RunConfig::default()
        };
        let run = run_path(&t, &topo, &cfg);
        (topo, run)
    }

    fn deployed_except(topo: &Topology, name: &str) -> HashSet<DomainId> {
        topo.domains
            .iter()
            .filter(|d| d.name != name)
            .map(|d| d.id)
            .collect()
    }

    #[test]
    fn non_deployer_measured_by_bracketing_hops() {
        let (topo, run) = scenario(0.15, 0.0);
        let deployed = deployed_except(&topo, "X");
        let a = analyze_partial(&topo, &run, &deployed);
        // X has no per-domain report…
        assert!(a.domains.iter().all(|d| d.name != "X"));
        // …but the 3→6 segment spans it and carries its loss.
        let x_id = topo.domain_by_name("X").unwrap().id;
        let seg = a.segment_spanning(x_id).expect("segment over X");
        assert_eq!(seg.up_hop, HopId(3));
        assert_eq!(seg.down_hop, HopId(6));
        let loss = seg.estimate.loss.rate().unwrap();
        assert!((loss - 0.15).abs() < 0.04, "segment loss {loss}");
        // Deployed neighbors stay clean.
        for d in &a.domains {
            assert!(d.estimate.loss.rate().unwrap_or(0.0) < 0.02, "{}", d.name);
        }
    }

    #[test]
    fn non_deployer_absorbs_a_neighbors_lie() {
        // §8: "its neighbors are free to blame their performance
        // problems on X (since X does not produce any receipts to
        // refute their claims)". L drops 15% itself, then fabricates
        // egress receipts claiming full delivery — with X out of the
        // protocol, the fabricated loss lands on the 3→6 segment, i.e.
        // on X.
        let (topo, mut run) = scenario(0.0, 0.15);
        let ingress2 = run.hop(HopId(2)).unwrap().clone();
        apply_lie(
            &ingress2,
            run.hop_mut(HopId(3)).unwrap(),
            LieStrategy::BlameShiftLoss {
                claimed_delay: SimDuration::from_micros(300),
            },
        );
        let deployed = deployed_except(&topo, "X");
        let a = analyze_partial(&topo, &run, &deployed);
        // L's books look clean.
        let l = a.domains.iter().find(|d| d.name == "L").unwrap();
        assert!(l.estimate.loss.rate().unwrap() < 0.01);
        // The segment spanning X shows L's loss — blame successfully
        // shifted onto the non-deployer.
        let x_id = topo.domain_by_name("X").unwrap().id;
        let seg = a.segment_spanning(x_id).unwrap();
        let loss = seg.estimate.loss.rate().unwrap();
        assert!(loss > 0.10, "shifted blame {loss}");
    }

    #[test]
    fn sole_deployer_still_self_reports() {
        let (topo, run) = scenario(0.10, 0.0);
        // Only X deploys.
        let deployed: HashSet<DomainId> =
            [topo.domain_by_name("X").unwrap().id].into_iter().collect();
        let a = analyze_partial(&topo, &run, &deployed);
        assert!(a.segments.is_empty(), "no bracketing HOPs exist");
        let x = a.domains.iter().find(|d| d.name == "X").unwrap();
        // X's self-report is available and accurate — verifiable even if
        // not currently verified (§8).
        let loss = x.estimate.loss.rate().unwrap();
        assert!((loss - 0.10).abs() < 0.03, "self-reported loss {loss}");
        assert!(x.estimate.delay.is_some());
    }

    #[test]
    fn full_deployment_degenerates_to_standard_analysis() {
        let (topo, run) = scenario(0.10, 0.0);
        let deployed: HashSet<DomainId> = topo.domain_ids().into_iter().collect();
        let a = analyze_partial(&topo, &run, &deployed);
        assert!(a.segments.is_empty());
        assert_eq!(a.domains.len(), 3); // L, X, N
    }
}
