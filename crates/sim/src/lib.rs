//! VPM scenario orchestration.
//!
//! This crate assembles the substrates into the paper's world: multi-
//! domain topologies (Figure 1), end-to-end path runs that push a
//! trace through domains and feed every HOP's pipeline, a receipt
//! dissemination bus with the paper's visibility rule, adversarial
//! receipt policies (the threat model of §2.1), path-level verdicts
//! (who is exposed when someone lies), and the drivers that regenerate
//! every experiment of §7.
//!
//! * [`topology`] — domains, HOPs, inter-domain links; the canonical
//!   Figure 1 topology `S–L–X–N–D`.
//! * [`run`] — the path runner: trace in at HOP 1, receipts out of all
//!   HOPs — every batch encoded into a v1 wire frame, published through
//!   a `vpm_wire::ReceiptTransport`, fetched and decoded back — with
//!   ground truth retained for evaluation.
//! * [`bus`] — receipt dissemination ("each receipt is made available
//!   only to the domains that observed the corresponding traffic");
//!   now a compatibility surface over `vpm_wire::transport`.
//! * [`adversary`] — lying-domain strategies: blame shifting, delay
//!   sugarcoating, marker dropping, collusive cover-up, and the
//!   sample-bias attempt VPM is designed to defeat.
//! * [`verdict`] — the receipt collector's path analysis: per-domain
//!   estimates, per-link consistency, liar exposure — from a run's
//!   outputs or purely from transport-fetched frames
//!   ([`verdict::analyze_from_transport`], or the path-scoped
//!   [`verdict::analyze_from_transport_scoped`] that touches one shard
//!   per HOP).
//! * [`fleet`] — the many-path workload: N independent Figure-1
//!   instances publishing interleaved through one shared `ShardedBus`
//!   from concurrent threads, verified in parallel
//!   ([`fleet::analyze_fleet_from_transport`]) with verdicts
//!   byte-identical for every `--jobs` count — surfaced as
//!   `vpm fleet`.
//! * [`experiments`] — Figure 2, Figure 3, the §7.2 verifiability
//!   sweep and the design-choice ablations.
//! * [`scenario_matrix`] — the deterministic scenario grid: delay
//!   model (incl. congestion series), loss process, reorder window,
//!   sampling rate, clock quality, deployment state and adversary
//!   strategy (incl. two independent liars) as one enumerable,
//!   reproducible, parallel-evaluable table — the repo's primary
//!   verification instrument, surfaced as `vpm matrix`.
//! * [`audit`] — continuous operation: a streaming [`audit::Auditor`]
//!   that follows the bus under churn for thousands of intervals with
//!   bounded memory (epoch GC below its own cursor), checkpoints into
//!   `vpm_wire::AuditCheckpoint` snapshots, and restores from them
//!   with byte-identical verdicts — surfaced as `vpm audit`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Mirror vpm-lint's R1 (panic-freedom) in the compiler's own
// diagnostics for non-test code; sites vpm-lint allows carry a
// matching narrow `#[allow]`.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod adversary;
pub mod audit;
pub mod baselines;
pub mod bus;
pub mod experiments;
pub mod fleet;
pub mod partial;
pub mod run;
pub mod scenario_matrix;
pub mod topology;
pub mod verdict;

pub use audit::{
    run_audit, AuditConfig, AuditError, AuditOutcome, AuditRunStats, AuditVerdict, Auditor,
};
pub use fleet::{
    analyze_fleet_from_transport, build_fleet, render_fleet_table, run_fleet, Fleet, FleetConfig,
    FleetLie, FleetPath, FleetPathVerdict,
};
pub use run::{run_path, run_path_with_transport, PathRun, RunConfig, RunError};
pub use scenario_matrix::{
    evaluate_cell, evaluate_grid, full_grid, parse_filter, render_matrix_table, Cell, CellVerdict,
    MatrixFilter, CANONICAL_BASE_SEED,
};
pub use topology::{DomainRole, Figure1, LinkSpec, Topology};
pub use verdict::{analyze_path, PathAnalysis};
