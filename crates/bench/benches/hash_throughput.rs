//! Micro-benchmarks for the hashing substrate: the per-packet digest is
//! the single hash the §7.1 processing model budgets per packet, so its
//! cost bounds the collector's line rate.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use vpm_hash::{digest_bytes, sample_fcn, Digest, DEFAULT_DIGEST_SEED};

fn bench_lookup3(c: &mut Criterion) {
    let mut g = c.benchmark_group("lookup3");
    for size in [16usize, 24, 64, 256, 1500] {
        let data: Vec<u8> = (0..size).map(|i| i as u8).collect();
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("hashlittle2_{size}B"), |b| {
            b.iter(|| vpm_hash::lookup3::hashlittle2(black_box(&data), 0, 0))
        });
    }
    g.finish();
}

fn bench_digest(c: &mut Criterion) {
    // 24 bytes is the canonical packet digest input length.
    let input = [0xabu8; 24];
    c.bench_function("packet_digest_24B", |b| {
        b.iter(|| digest_bytes(black_box(&input), DEFAULT_DIGEST_SEED))
    });
}

fn bench_sample_fcn(c: &mut Criterion) {
    c.bench_function("sample_fcn", |b| {
        b.iter(|| {
            sample_fcn(
                black_box(Digest(0x0123_4567_89ab_cdef)),
                black_box(Digest(0xfedc_ba98_7654_3210)),
            )
        })
    });
}

criterion_group!(benches, bench_lookup3, bench_digest, bench_sample_fcn);
criterion_main!(benches);
