//! Ablation: future-marker keying vs naive self-keyed sampling under an
//! adversary that fast-paths predictable samples (DESIGN.md ablation 1,
//! motivating §5.1).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vpm_bench::banner;
use vpm_sim::experiments::ablation::{sampling_bias, AblationConfig};

fn regenerate() {
    banner("Ablation — bias resistance of future-marker sampling");
    let r = sampling_bias(&AblationConfig::default_scenario(1));
    eprintln!(
        "true p90 delay under adversary policy : {:>8.3} ms",
        r.true_p90_ms
    );
    eprintln!(
        "VPM-estimated p90                     : {:>8.3} ms (bias {:.3} ms)",
        r.vpm_est_p90_ms, r.vpm_bias_ms
    );
    eprintln!(
        "naive-scheme estimated p90            : {:>8.3} ms (bias {:.3} ms)",
        r.naive_est_p90_ms, r.naive_bias_ms
    );
    eprintln!("\n(with self-keyed sampling the adversary hides ~all congestion");
    eprintln!(" from the estimate; with future-marker keying it gains nothing)");
}

fn bench_ablation(c: &mut Criterion) {
    regenerate();
    let cfg = AblationConfig {
        duration: vpm_packet::SimDuration::from_millis(200),
        ..AblationConfig::default_scenario(2)
    };
    c.bench_function("ablation_sampling_bias_200ms", |b| {
        b.iter(|| black_box(sampling_bias(&cfg)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation
}
criterion_main!(benches);
