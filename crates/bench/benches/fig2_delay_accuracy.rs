//! E1 / Figure 2: delay-estimation accuracy vs sampling rate × loss.
//!
//! Prints the regenerated figure (same rows/series as the paper) once,
//! then times a representative cell of the sweep so regressions in the
//! experiment pipeline are visible.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vpm_bench::banner;
use vpm_packet::SimDuration;
use vpm_sim::experiments::fig2;

fn regenerate_figure() {
    banner("Figure 2 — delay accuracy [ms] vs sampling rate, by loss level");
    let cfg = fig2::Fig2Config::paper(SimDuration::from_secs(2), 1);
    let points = fig2::run(&cfg);
    eprintln!("{}", fig2::render_table(&points));
    eprintln!("(paper shape: sub-ms at 5%/no-loss; ~2 ms at 1% with 25% loss;");
    eprintln!(" smooth degradation with both lower rates and higher loss)");
}

fn bench_fig2_cell(c: &mut Criterion) {
    regenerate_figure();
    let mut cfg = fig2::Fig2Config::paper(SimDuration::from_millis(300), 2);
    cfg.sampling_rates = vec![0.01];
    cfg.loss_rates = vec![0.25];
    c.bench_function("fig2_cell_1pct_25loss_300ms", |b| {
        b.iter(|| black_box(fig2::run(&cfg)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2_cell
}
criterion_main!(benches);
