//! E7 / §7.2 "Verifiability": how a neighbor's tunability choice bounds
//! how well it can verify another domain's claims.
//!
//! Prints the regenerated sweep (X at 1% sampling and 25% loss;
//! neighbors at 1% and 0.1%), then times a reduced run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vpm_bench::banner;
use vpm_packet::SimDuration;
use vpm_sim::experiments::verifiability;

fn regenerate() {
    banner("§7.2 Verifiability — verification accuracy vs neighbor rate");
    let cfg = verifiability::VerifiabilityConfig::paper(SimDuration::from_secs(2), 1);
    let points = verifiability::run(&cfg);
    eprintln!("{}", verifiability::render_table(&points));
    eprintln!("(paper: neighbor at 1% verifies at ~2 ms — X's own accuracy —");
    eprintln!(" while a neighbor at 0.1% only manages ~5 ms)");
}

fn bench_verifiability(c: &mut Criterion) {
    regenerate();
    let cfg = verifiability::VerifiabilityConfig::quick(2);
    c.bench_function("verifiability_quick_sweep", |b| {
        b.iter(|| black_box(verifiability::run(&cfg)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_verifiability
}
criterion_main!(benches);
