//! E4 + E6 (§7.1 memory & bandwidth): regenerate every overhead number
//! and time the verifier-side receipt processing (match + join) that a
//! receipt collector runs per reporting interval.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vpm_bench::{banner, bench_trace};
use vpm_core::overhead;
use vpm_core::receipt::PathId;
use vpm_core::verify::{join_aggregates, match_samples};
use vpm_core::{Collector, HopConfig, Ingest, Processor};
use vpm_packet::{DomainId, HopId, SimDuration};

fn regenerate() {
    banner("§7.1 overhead model — paper vs this implementation");
    let report = overhead::section_7_1_report();
    eprintln!("{:<48} {:>10} {:>10}", "quantity", "paper", "ours");
    for (label, paper, ours) in &report.rows {
        let p = if paper.is_nan() {
            "—".to_string()
        } else {
            format!("{paper:.3}")
        };
        eprintln!("{label:<48} {p:>10} {ours:>10.3}");
    }
}

type HopData = (
    Vec<vpm_core::receipt::SampleRecord>,
    Vec<vpm_core::receipt::AggReceipt>,
    Vec<vpm_core::receipt::SampleRecord>,
    Vec<vpm_core::receipt::AggReceipt>,
);

fn hop_outputs() -> HopData {
    let trace = bench_trace(500, 5);
    let spec = vpm_trace::TraceConfig::paper_default(1, 0).spec;
    let path = PathId {
        spec,
        prev_hop: None,
        next_hop: None,
        max_diff: SimDuration::from_millis(2),
    };
    let mk = |hop: u16| {
        let mut col = Collector::new(
            HopConfig::new(HopId(hop), DomainId(2))
                .with_sampling_rate(0.01)
                .with_aggregate_size(5_000),
        );
        col.register_path(path);
        (col, Processor::new(HopId(hop)))
    };
    let (mut c4, mut p4) = mk(4);
    let (mut c5, mut p5) = mk(5);
    let batch4: Vec<_> = trace
        .iter()
        .map(|tp| (0usize, tp.packet.digest(), tp.ts))
        .collect();
    let batch5: Vec<_> = batch4
        .iter()
        .map(|&(idx, d, t)| (idx, d, t + SimDuration::from_micros(300)))
        .collect();
    assert!(c4.ingest(&batch4).is_clean());
    assert!(c5.ingest(&batch5).is_clean());
    c4.flush();
    c5.flush();
    let b4 = p4.report(&mut c4);
    let b5 = p5.report(&mut c5);
    let flat = |b: &vpm_core::processor::ReceiptBatch| {
        b.samples
            .iter()
            .flat_map(|r| r.samples.iter().copied())
            .collect::<Vec<_>>()
    };
    (
        flat(&b4),
        b4.aggregates.clone(),
        flat(&b5),
        b5.aggregates.clone(),
    )
}

fn bench_verifier_side(c: &mut Criterion) {
    regenerate();
    let (s4, a4, s5, a5) = hop_outputs();
    eprintln!(
        "\nverifier input: {} + {} samples, {} + {} aggregate receipts",
        s4.len(),
        s5.len(),
        a4.len(),
        a5.len()
    );
    c.bench_function("verifier_match_samples", |b| {
        b.iter(|| black_box(match_samples(&s4, &s5)))
    });
    c.bench_function("verifier_join_aggregates", |b| {
        b.iter(|| black_box(join_aggregates(&a4, &a5)))
    });
}

criterion_group!(benches, bench_verifier_side);
criterion_main!(benches);
