//! Ablation: AggTrans boundary re-alignment vs none, under bounded
//! reordering on a lossless domain (DESIGN.md ablation 2, motivating
//! §6.3).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vpm_bench::banner;
use vpm_sim::experiments::ablation::aggtrans_alignment;

fn regenerate() {
    banner("Ablation — AggTrans re-alignment under reordering (lossless domain)");
    let r = aggtrans_alignment(1);
    eprintln!("joined aggregates           : {}", r.joined);
    eprintln!("boundaries re-aligned       : {}", r.alignments_applied);
    eprintln!(
        "|loss error| with windows   : {} packets",
        r.aligned_abs_error
    );
    eprintln!(
        "|loss error| without        : {} packets",
        r.stripped_abs_error
    );
    eprintln!("\n(without the §6.3 patch-up windows an honest, lossless domain");
    eprintln!(" shows phantom loss at every boundary that reordering straddled)");
}

fn bench_ablation(c: &mut Criterion) {
    regenerate();
    c.bench_function("ablation_aggtrans_800ms", |b| {
        b.iter(|| black_box(aggtrans_alignment(2)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation
}
criterion_main!(benches);
