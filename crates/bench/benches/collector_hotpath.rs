//! E5 (§7.1 processing): the collector's per-packet hot path.
//!
//! The paper's proof of concept showed a software router's 25 Gbps
//! forwarding rate unchanged with the VPM modules loaded, i.e. the
//! collector is not the bottleneck. The substitute measurement here is
//! direct: ns/packet through the full collector (classification,
//! digest, Algorithm 1, Algorithm 2, counters), reported as packets
//! per second per core. At 400 B average packets, 10 Gbps is ~3.1 Mpps
//! per direction — compare with the measured element throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use vpm_bench::bench_trace;
use vpm_core::receipt::PathId;
use vpm_core::{Collector, HopConfig};
use vpm_hash::Digest;
use vpm_packet::{DomainId, HopId, SimDuration, SimTime};

fn mk_collector() -> Collector {
    let cfg = HopConfig::new(HopId(4), DomainId(2))
        .with_sampling_rate(0.01)
        .with_aggregate_size(100_000);
    let mut c = Collector::new(cfg);
    let spec = vpm_trace::TraceConfig::paper_default(1, 0).spec;
    c.register_path(PathId {
        spec,
        prev_hop: Some(HopId(3)),
        next_hop: Some(HopId(5)),
        max_diff: SimDuration::from_millis(2),
    });
    c
}

fn bench_observe_full(c: &mut Criterion) {
    let trace = bench_trace(200, 1);
    let mut g = c.benchmark_group("collector");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("observe_classify_and_digest", |b| {
        b.iter_batched(
            mk_collector,
            |mut col| {
                for tp in &trace {
                    black_box(col.observe(&tp.packet, tp.ts));
                }
                col
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_observe_digest_fastpath(c: &mut Criterion) {
    // Pre-classified, pre-digested: the pure Algorithm 1 + Algorithm 2
    // data-plane cost (what a NetFlow-style engine would run).
    let trace = bench_trace(200, 2);
    let digests: Vec<Digest> = trace.iter().map(|tp| tp.packet.digest()).collect();
    let times: Vec<SimTime> = trace.iter().map(|tp| tp.ts).collect();
    let mut g = c.benchmark_group("collector");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("observe_prehashed", |b| {
        b.iter_batched(
            mk_collector,
            |mut col| {
                for i in 0..digests.len() {
                    col.observe_digest(0, digests[i], times[i]);
                }
                col
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_report_cycle(c: &mut Criterion) {
    // Control-plane cost: drain + receipt building + signing.
    let trace = bench_trace(100, 3);
    c.bench_function("processor_report_cycle", |b| {
        b.iter_batched(
            || {
                let mut col = mk_collector();
                for tp in &trace {
                    col.observe(&tp.packet, tp.ts);
                }
                col.flush();
                (col, vpm_core::Processor::new(HopId(4)))
            },
            |(mut col, mut proc)| black_box(proc.report(&mut col)),
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_observe_full,
    bench_observe_digest_fastpath,
    bench_report_cycle
);
criterion_main!(benches);
