//! E5 (§7.1 processing): the collector's per-packet hot path.
//!
//! The paper's proof of concept showed a software router's 25 Gbps
//! forwarding rate unchanged with the VPM modules loaded, i.e. the
//! collector is not the bottleneck. The substitute measurement here is
//! direct: ns/packet through the full collector (classification,
//! digest, Algorithm 1, Algorithm 2, counters), reported as packets
//! per second per core. At 400 B average packets, 10 Gbps is ~3.1 Mpps
//! per direction — compare with the measured element throughput.
//!
//! Two benchmark groups:
//!
//! * `collector` — the single-path pipeline of the seed benchmark
//!   (kept for trajectory continuity), plus the batched variant.
//! * `collector_200paths` — the §7.1 many-path regime: a 200-path
//!   `/32`-pair workload through the pre-index linear scan
//!   (reconstructed reference), the classifier index, and the
//!   per-packet vs batched prehashed data plane. The linear-scan vs
//!   indexed/batched rows are the before/after of the line-rate
//!   rebuild.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use vpm_bench::bench_trace;
use vpm_bench::collector_bench::{
    build_workload, mk_collector as mk_collector_multi, CollectorBenchConfig,
};
use vpm_core::receipt::PathId;
use vpm_core::{Collector, HopConfig, Ingest};
use vpm_hash::{Digest, DEFAULT_DIGEST_SEED};
use vpm_packet::{DomainId, HopId, SimDuration, SimTime};

fn mk_collector() -> Collector {
    let cfg = HopConfig::new(HopId(4), DomainId(2))
        .with_sampling_rate(0.01)
        .with_aggregate_size(100_000);
    let mut c = Collector::new(cfg);
    let spec = vpm_trace::TraceConfig::paper_default(1, 0).spec;
    c.register_path(PathId {
        spec,
        prev_hop: Some(HopId(3)),
        next_hop: Some(HopId(5)),
        max_diff: SimDuration::from_millis(2),
    });
    c
}

// The per-packet rows below deliberately stay on the deprecated
// `observe`/`observe_digest` surface: they track the historical
// per-packet architecture across releases and their measured
// semantics must not move.
#[allow(deprecated)]
fn bench_observe_full(c: &mut Criterion) {
    let trace = bench_trace(200, 1);
    let mut g = c.benchmark_group("collector");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("observe_classify_and_digest", |b| {
        b.iter_batched(
            mk_collector,
            |mut col| {
                for tp in &trace {
                    black_box(col.observe(&tp.packet, tp.ts));
                }
                col
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

#[allow(deprecated)]
fn bench_observe_digest_fastpath(c: &mut Criterion) {
    // Pre-classified, pre-digested: the pure Algorithm 1 + Algorithm 2
    // data-plane cost (what a NetFlow-style engine would run).
    let trace = bench_trace(200, 2);
    let digests: Vec<Digest> = trace.iter().map(|tp| tp.packet.digest()).collect();
    let times: Vec<SimTime> = trace.iter().map(|tp| tp.ts).collect();
    let mut g = c.benchmark_group("collector");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("observe_prehashed", |b| {
        b.iter_batched(
            mk_collector,
            |mut col| {
                for i in 0..digests.len() {
                    col.observe_digest(0, digests[i], times[i]);
                }
                col
            },
            criterion::BatchSize::LargeInput,
        )
    });
    let triples: Vec<(usize, Digest, SimTime)> = (0..digests.len())
        .map(|i| (0usize, digests[i], times[i]))
        .collect();
    g.bench_function("observe_batch_prehashed", |b| {
        b.iter_batched(
            mk_collector,
            |mut col| {
                for chunk in triples.chunks(4096) {
                    let report = col.ingest(chunk);
                    debug_assert!(report.is_clean());
                }
                col
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

#[allow(deprecated)]
fn bench_observe_200paths(c: &mut Criterion) {
    let cfg = CollectorBenchConfig {
        packets: 40_000,
        paths: 200,
        batch: 4096,
        shards: 2,
        repeats: 1,
    };
    let w = build_workload(&cfg);
    let digests: Vec<Digest> = w.packets.iter().map(|p| p.digest()).collect();
    let triples: Vec<(usize, Digest, SimTime)> = (0..w.packets.len())
        .map(|i| (w.path_idx[i], digests[i], w.times[i]))
        .collect();

    let mut g = c.benchmark_group("collector_200paths");
    g.throughput(Throughput::Elements(w.packets.len() as u64));

    // The pre-index architecture, reconstructed: O(paths) linear
    // classification scan + per-packet digest + per-packet update.
    g.bench_function("observe_linear_scan", |b| {
        b.iter_batched(
            || mk_collector_multi(&w),
            |mut col| {
                for (pkt, &t) in w.packets.iter().zip(&w.times) {
                    if let Some(idx) = w.specs.iter().position(|s| s.matches(pkt)) {
                        col.observe_digest(idx, pkt.digest_with(DEFAULT_DIGEST_SEED), t);
                    }
                }
                col
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("observe_indexed", |b| {
        b.iter_batched(
            || mk_collector_multi(&w),
            |mut col| {
                for (pkt, &t) in w.packets.iter().zip(&w.times) {
                    black_box(col.observe(pkt, t));
                }
                col
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("observe_prehashed", |b| {
        b.iter_batched(
            || mk_collector_multi(&w),
            |mut col| {
                for &(idx, d, t) in &triples {
                    col.observe_digest(idx, d, t);
                }
                col
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("observe_batch_prehashed", |b| {
        b.iter_batched(
            || mk_collector_multi(&w),
            |mut col| {
                for chunk in triples.chunks(cfg.batch) {
                    let report = col.ingest(chunk);
                    debug_assert!(report.is_clean());
                }
                col
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_report_cycle(c: &mut Criterion) {
    // Control-plane cost: drain + receipt building + signing.
    let trace = bench_trace(100, 3);
    c.bench_function("processor_report_cycle", |b| {
        b.iter_batched(
            || {
                let mut col = mk_collector();
                let batch: Vec<(usize, Digest, SimTime)> = trace
                    .iter()
                    .filter_map(|tp| {
                        col.classify(&tp.packet)
                            .map(|idx| (idx, tp.packet.digest(), tp.ts))
                    })
                    .collect();
                let report = col.ingest(&batch);
                debug_assert!(report.is_clean());
                col.flush();
                (col, vpm_core::Processor::new(HopId(4)))
            },
            |(mut col, mut proc)| black_box(proc.report(&mut col)),
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_observe_full,
    bench_observe_digest_fastpath,
    bench_observe_200paths,
    bench_report_cycle
);
criterion_main!(benches);
