//! E2 / Figure 3: loss-computation granularity vs loss rate.
//!
//! Prints the regenerated figure (one aggregate per 100k packets, loss
//! 0–50%), then times a reduced sweep cell.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vpm_bench::banner;
use vpm_packet::SimDuration;
use vpm_sim::experiments::fig3;

fn regenerate_figure() {
    banner("Figure 3 — loss granularity [sec] vs loss rate");
    let cfg = fig3::Fig3Config::paper(SimDuration::from_secs(20), 1);
    let points = fig3::run(&cfg);
    eprintln!("{}", fig3::render_table(&points));
    eprintln!("(paper shape: ~1 s at no loss — 100k pkts ≈ 1 s at 100 kpps —");
    eprintln!(" ~1.25× at 25% loss, ~2× at 50%, degrading smoothly)");
}

fn bench_fig3_cell(c: &mut Criterion) {
    regenerate_figure();
    let mut cfg = fig3::Fig3Config::quick(2);
    cfg.loss_rates = vec![0.25];
    c.bench_function("fig3_cell_25loss_quick", |b| {
        b.iter(|| black_box(fig3::run(&cfg)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3_cell
}
criterion_main!(benches);
