//! Measured verifier-plane throughput — the backend of the
//! `vpm bench-verifier` subcommand.
//!
//! PR 3 made the collector line-rate and PR 4 made the wire cheap; the
//! remaining scale-out question is the *verifier*: how fast can a
//! regulator re-derive verdicts for a whole fleet of paths, and how
//! cheap is following the bus? This harness measures both halves on
//! every checkout:
//!
//! * **verification fan-out** — a real fleet is built, run, and
//!   published through one `ShardedBus`; then
//!   `analyze_fleet_from_transport` is timed sequentially (`jobs = 1`)
//!   and in parallel (`jobs = N`), reporting paths/s and the measured
//!   parallel speedup;
//! * **subscription polling** — the pre-cursor full-rescan poll
//!   (`ShardedBus::poll_full_rescan`, kept as a reference
//!   implementation) against the per-shard cursor poll, under the
//!   adversarial access pattern the cursor design exists for: many
//!   polls, each finding little new; plus the path-filtered
//!   subscription that touches exactly one shard;
//! * **idle-consumer cost** — the same paced publish stream drained by
//!   a spin-polling consumer and by a blocking [`ReceiptTransport::wait`]
//!   consumer, reporting polls issued per publish for each. This pins
//!   the PR-7 contract in a measured number: a blocked waiter costs
//!   O(publishes) polls while a spinner costs however many the CPU can
//!   issue.
//!
//! `vpm bench-verifier` serializes the report to `BENCH_verifier.json`
//! next to `BENCH_collector.json` and `BENCH_wire.json`; CI's
//! bench-trend gate (`scripts/bench_check.py`) validates all three
//! share the bench schema.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use vpm_core::processor::ReceiptBatch;
use vpm_core::receipt::{AggId, AggReceipt, PathId, SampleReceipt, SampleRecord};
use vpm_hash::{Digest, HopKey, KeyEpoch};
use vpm_packet::{DomainId, HeaderSpec, HopId, Ipv4Prefix, SimDuration, SimTime};
use vpm_sim::fleet::{analyze_fleet_from_transport, build_fleet, run_fleet, Fleet, FleetConfig};
use vpm_wire::{Profile, ReceiptTransport, ShardedBus};

/// Workload shape for one verifier benchmark run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VerifierBenchConfig {
    /// Fleet size for the verification variants.
    pub paths: usize,
    /// Worker threads for the parallel verification variant.
    pub jobs: usize,
    /// Shards of the bus under test.
    pub shards: usize,
    /// Frames published in the polling variants.
    pub frames: usize,
    /// Concurrent subscriptions drained in the polling variants.
    pub subs: usize,
    /// Timed repetitions per variant (the minimum is reported).
    pub repeats: usize,
}

impl Default for VerifierBenchConfig {
    fn default() -> Self {
        VerifierBenchConfig {
            paths: 48,
            jobs: 4,
            shards: 32,
            frames: 1500,
            subs: 8,
            repeats: 3,
        }
    }
}

/// One measured variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerifierVariantResult {
    /// Variant name (stable identifier for trajectory tracking).
    pub name: String,
    /// Work items (paths or polls) per second.
    pub items_per_s: f64,
    /// Nanoseconds per work item.
    pub ns_per_item: f64,
}

/// The full report `vpm bench-verifier` prints and serializes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerifierBenchReport {
    /// Workload shape.
    pub config: VerifierBenchConfig,
    /// Per-variant measurements.
    pub results: Vec<VerifierVariantResult>,
    /// `verify_sequential / verify_parallel` — the worker-pool win at
    /// this path count.
    pub parallel_speedup: f64,
    /// `poll_rescan / poll_cursor` — the per-shard cursor win under
    /// the publish/poll interleave.
    pub cursor_poll_speedup: f64,
    /// `poll_rescan / poll_path_filtered` — the one-shard subscription
    /// win under the same interleave.
    pub path_poll_speedup: f64,
    /// Polls a spin-polling consumer issues per paced publish while
    /// mostly idle (the busy-wait cost the blocking `wait` replaces).
    pub idle_spin_polls_per_publish: f64,
    /// Polls a `wait`-driven consumer issues per paced publish on the
    /// same stream (ideally ~1: one wakeup, one poll).
    pub idle_wait_polls_per_publish: f64,
    /// `idle_spin_polls_per_publish / idle_wait_polls_per_publish` —
    /// how much poll traffic blocking waits eliminate on an idle
    /// stream.
    pub idle_poll_reduction: f64,
}

/// Time `body` `repeats` times; report the minimum seconds per call.
fn time_secs<F: FnMut()>(repeats: usize, mut body: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        body();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// A tiny synthetic path for the polling variants (no simulation —
/// polling cost is what is measured, not receipt generation).
fn poll_path_id(n: u16) -> PathId {
    let (hi, lo) = ((n >> 8) as u8, n as u8);
    PathId {
        spec: HeaderSpec::new(
            Ipv4Prefix::new(std::net::Ipv4Addr::new(10, hi, lo, 1), 32).expect("/32 is valid"),
            Ipv4Prefix::new(std::net::Ipv4Addr::new(20, hi, lo, 1), 32).expect("/32 is valid"),
        ),
        prev_hop: Some(HopId(1)),
        next_hop: Some(HopId(2)),
        max_diff: SimDuration::from_millis(2),
    }
}

/// A small signed single-sample batch for `hop` on synthetic path `n`.
fn poll_batch(hop: HopId, seq: u64, n: u16) -> (ReceiptBatch, HopKey) {
    let mut b = ReceiptBatch {
        hop,
        batch_seq: seq,
        samples: vec![SampleReceipt {
            path: poll_path_id(n),
            samples: vec![SampleRecord {
                pkt_id: Digest(0x1000 + seq),
                time: SimTime::from_micros(10 * seq),
            }],
        }],
        aggregates: vec![AggReceipt {
            path: poll_path_id(n),
            agg: AggId {
                first: Digest(1),
                last: Digest(2),
            },
            pkt_cnt: 100,
            agg_trans: vec![],
        }],
        auth_tag: 0,
    };
    let key = HopKey::from_seed(0xbe5c ^ hop.0 as u64);
    b.auth_tag = b.compute_tag(key.tag_key());
    (b, key)
}

/// Drive the publish/poll interleave once: publish `frames` frames
/// round-robin over 16 synthetic paths, calling `poll_one(bus, sub)`
/// for every subscription after each publish — the many-polls,
/// little-news access pattern. Frames come pre-encoded from
/// [`poll_frames`] so the timed region is publish admission + polling,
/// not codec work. Returns total polls issued.
fn drive_polls(
    cfg: &VerifierBenchConfig,
    frames: &[vpm_wire::WireFrame],
    subscribe: impl Fn(&ShardedBus, u16) -> vpm_wire::SubscriptionId,
    poll_one: impl Fn(&ShardedBus, vpm_wire::SubscriptionId) -> usize,
) -> usize {
    let bus = ShardedBus::new(cfg.shards);
    for h in 0..POLL_PATHS {
        let (_, key) = poll_batch(HopId(h + 1), 0, h);
        bus.register_key(HopId(h + 1), key)
            .expect("bench keys register once");
    }
    let subs: Vec<_> = (0..cfg.subs)
        .map(|s| subscribe(&bus, s as u16 % POLL_PATHS))
        .collect();
    let mut delivered = 0usize;
    let mut polls = 0usize;
    for frame in frames {
        bus.publish(DomainId(0), frame.clone(), vec![DomainId(0), DomainId(1)])
            .expect("bench batches publish");
        for &sub in &subs {
            delivered += poll_one(&bus, sub);
            polls += 1;
        }
    }
    assert!(delivered > 0, "polls must observe traffic");
    polls
}

/// Paths the polling workload round-robins over.
const POLL_PATHS: u16 = 16;

/// Pre-encode the polling workload's frames (untimed setup).
fn poll_frames(cfg: &VerifierBenchConfig) -> Vec<vpm_wire::WireFrame> {
    (0..cfg.frames as u64)
        .map(|i| {
            let n = (i % POLL_PATHS as u64) as u16;
            let (b, key) = poll_batch(HopId(n + 1), i, n);
            vpm_wire::WireEncoder::new(Profile::Precise)
                .encode_signed(&b, &key, KeyEpoch(0))
                .expect("bench batches encode")
        })
        .collect()
}

/// Publishes in the idle-consumer comparison. Few on purpose: the
/// workload is *pacing*, not volume — the measured quantity is polls
/// issued while nothing is arriving.
const IDLE_PUBLISHES: usize = 16;

/// Gap between paced publishes. 2ms is wide enough that a spinner
/// issues many polls per publish on any machine, short enough to keep
/// the comparison under ~50ms per discipline.
const IDLE_GAP: Duration = Duration::from_millis(2);

/// Drain [`IDLE_PUBLISHES`] paced publishes with one consumer; return
/// the number of `poll` calls it took. The spin discipline re-polls in
/// a tight loop (the pre-PR-7 drain); the wait discipline blocks on
/// [`ReceiptTransport::wait`] and polls only after a wakeup or a
/// 250ms timeout slice.
fn idle_polls(cfg: &VerifierBenchConfig, wait_based: bool) -> usize {
    let bus = ShardedBus::new(cfg.shards);
    let (_, key) = poll_batch(HopId(1), 0, 0);
    bus.register_key(HopId(1), key)
        .expect("bench keys register once");
    let frames: Vec<_> = (0..IDLE_PUBLISHES as u64)
        .map(|i| {
            let (b, key) = poll_batch(HopId(1), i, 0);
            vpm_wire::WireEncoder::new(Profile::Precise)
                .encode_signed(&b, &key, KeyEpoch(0))
                .expect("bench batches encode")
        })
        .collect();
    let sub = bus.subscribe(DomainId(1));
    let mut polls = 0usize;
    let mut got = 0usize;
    std::thread::scope(|s| {
        s.spawn(|| {
            for frame in frames {
                bus.publish(DomainId(0), frame, vec![DomainId(0), DomainId(1)])
                    .expect("bench batches publish");
                std::thread::sleep(IDLE_GAP);
            }
        });
        let deadline = Instant::now() + Duration::from_secs(30);
        while got < IDLE_PUBLISHES && Instant::now() < deadline {
            if wait_based {
                let _ = bus
                    .wait(sub, Duration::from_millis(250))
                    .expect("known sub");
            }
            got += bus.poll(sub).expect("known sub").len();
            polls += 1;
        }
    });
    assert_eq!(got, IDLE_PUBLISHES, "idle consumer must drain the stream");
    polls
}

/// Build and publish the verification fleet (untimed setup). The
/// traces are long enough that per-path verification does real
/// matching/quantile work — a toy trace would measure thread-pool
/// overhead instead of verification.
fn verification_fixture(cfg: &VerifierBenchConfig) -> (Fleet, ShardedBus) {
    let fleet = build_fleet(&FleetConfig {
        paths: cfg.paths,
        liars: cfg.paths / 8,
        publishers: 4,
        trace_ms: 200,
        target_pps: 50_000.0,
        ..FleetConfig::default()
    });
    let bus = ShardedBus::new(cfg.shards);
    run_fleet(&fleet, &bus);
    (fleet, bus)
}

/// Run every variant and assemble the report.
pub fn run(cfg: &VerifierBenchConfig) -> VerifierBenchReport {
    let mut results = Vec::new();
    let mut record = |name: &str, items: usize, secs: f64| {
        results.push(VerifierVariantResult {
            name: name.to_string(),
            items_per_s: items as f64 / secs,
            ns_per_item: secs * 1e9 / items as f64,
        });
        secs
    };

    // --- Verification fan-out over a real fleet. ---
    let (fleet, bus) = verification_fixture(cfg);
    let seq = time_secs(cfg.repeats, || {
        std::hint::black_box(analyze_fleet_from_transport(&fleet, &bus, 1));
    });
    record("verify_sequential", cfg.paths, seq);
    let par = time_secs(cfg.repeats, || {
        std::hint::black_box(analyze_fleet_from_transport(&fleet, &bus, cfg.jobs));
    });
    record("verify_parallel", cfg.paths, par);

    // --- Subscription polling under the publish/poll interleave. ---
    let frames = poll_frames(cfg);
    let mut polls = 0usize;
    let rescan = time_secs(cfg.repeats, || {
        polls = drive_polls(
            cfg,
            &frames,
            |bus, _| bus.subscribe(DomainId(1)),
            |bus, sub| bus.poll_full_rescan(sub).expect("known sub").len(),
        );
    });
    record("poll_rescan", polls, rescan);
    let cursor = time_secs(cfg.repeats, || {
        polls = drive_polls(
            cfg,
            &frames,
            |bus, _| bus.subscribe(DomainId(1)),
            |bus, sub| bus.poll(sub).expect("known sub").len(),
        );
    });
    record("poll_cursor", polls, cursor);
    let path_poll = time_secs(cfg.repeats, || {
        polls = drive_polls(
            cfg,
            &frames,
            |bus, n| bus.subscribe_path(DomainId(1), &poll_path_id(n)),
            |bus, sub| bus.poll(sub).expect("known sub").len(),
        );
    });
    record("poll_path_filtered", polls, path_poll);

    // --- Idle-consumer cost: spin-poll vs blocking wait. ---
    // Reported as polls-per-publish ratios, not rates: wall time here
    // is dominated by the deliberate publish pacing, so a throughput
    // number would measure the sleep, and the ratio is what the
    // blocking `wait` API exists to shrink.
    let spin = idle_polls(cfg, false) as f64 / IDLE_PUBLISHES as f64;
    let wait = idle_polls(cfg, true) as f64 / IDLE_PUBLISHES as f64;

    VerifierBenchReport {
        config: *cfg,
        results,
        parallel_speedup: seq / par,
        cursor_poll_speedup: rescan / cursor,
        path_poll_speedup: rescan / path_poll,
        idle_spin_polls_per_publish: spin,
        idle_wait_polls_per_publish: wait,
        idle_poll_reduction: spin / wait,
    }
}

/// Render the report as an aligned text table.
pub fn render_table(report: &VerifierBenchReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let c = &report.config;
    let _ = writeln!(
        s,
        "verifier plane — {} paths (jobs {}), {} shards, {} frames × {} subs",
        c.paths, c.jobs, c.shards, c.frames, c.subs
    );
    let _ = writeln!(s, "{:<20} {:>14} {:>14}", "variant", "items/s", "ns/item");
    for r in &report.results {
        let _ = writeln!(
            s,
            "{:<20} {:>14.1} {:>14.1}",
            r.name, r.items_per_s, r.ns_per_item
        );
    }
    let _ = writeln!(
        s,
        "parallel verification speedup (sequential / parallel): {:.2}x",
        report.parallel_speedup
    );
    let _ = writeln!(
        s,
        "cursor poll speedup (full rescan / per-shard cursor):  {:.2}x",
        report.cursor_poll_speedup
    );
    let _ = writeln!(
        s,
        "path-filtered poll speedup (full rescan / one shard):  {:.2}x",
        report.path_poll_speedup
    );
    let _ = writeln!(
        s,
        "idle consumer polls/publish (spin {:.1} vs wait {:.1}): {:.0}x fewer",
        report.idle_spin_polls_per_publish,
        report.idle_wait_polls_per_publish,
        report.idle_poll_reduction
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> VerifierBenchConfig {
        VerifierBenchConfig {
            paths: 4,
            jobs: 2,
            shards: 8,
            frames: 64,
            subs: 2,
            repeats: 1,
        }
    }

    #[test]
    fn report_has_all_variants_and_sane_numbers() {
        let report = run(&tiny());
        let names: Vec<&str> = report.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "verify_sequential",
                "verify_parallel",
                "poll_rescan",
                "poll_cursor",
                "poll_path_filtered",
            ]
        );
        for r in &report.results {
            assert!(r.items_per_s > 0.0 && r.items_per_s.is_finite(), "{r:?}");
            assert!(r.ns_per_item > 0.0 && r.ns_per_item.is_finite(), "{r:?}");
        }
        assert!(report.parallel_speedup > 0.0);
        assert!(report.cursor_poll_speedup > 0.0);
        assert!(report.path_poll_speedup > 0.0);
        // A blocking waiter needs at least one poll per delivered
        // wakeup; a spinner always needs at least as many. The exact
        // spin count is machine-speed-dependent, the direction is not.
        assert!(report.idle_wait_polls_per_publish > 0.0);
        assert!(
            report.idle_spin_polls_per_publish >= report.idle_wait_polls_per_publish,
            "spin {} vs wait {}",
            report.idle_spin_polls_per_publish,
            report.idle_wait_polls_per_publish
        );
        assert!(report.idle_poll_reduction >= 1.0 && report.idle_poll_reduction.is_finite());
        let table = render_table(&report);
        assert!(table.contains("poll_cursor"));
        assert!(table.contains("speedup"));
        assert!(table.contains("idle consumer polls/publish"));
    }

    #[test]
    fn poll_variants_deliver_the_same_frames() {
        // Whatever their cost, the three polling disciplines must see
        // the same traffic: every published frame exactly once per
        // global subscription, and the watched path's frames on the
        // path-filtered one.
        let cfg = tiny();
        let frames = poll_frames(&cfg);
        let counted =
            |subscribe: &dyn Fn(&ShardedBus, u16) -> vpm_wire::SubscriptionId,
             poll: &dyn Fn(&ShardedBus, vpm_wire::SubscriptionId) -> usize| {
                let total = std::cell::Cell::new(0usize);
                drive_polls(&cfg, &frames, subscribe, |bus, sub| {
                    let n = poll(bus, sub);
                    total.set(total.get() + n);
                    n
                });
                total.get()
            };
        let rescan = counted(&|bus, _| bus.subscribe(DomainId(1)), &|bus, sub| {
            bus.poll_full_rescan(sub).unwrap().len()
        });
        let cursor = counted(&|bus, _| bus.subscribe(DomainId(1)), &|bus, sub| {
            bus.poll(sub).unwrap().len()
        });
        assert_eq!(rescan, cfg.frames * cfg.subs);
        assert_eq!(cursor, cfg.frames * cfg.subs);
        let path = counted(
            &|bus, n| bus.subscribe_path(DomainId(1), &poll_path_id(n)),
            &|bus, sub| bus.poll(sub).unwrap().len(),
        );
        // 16 synthetic paths, `subs` watchers each following one path.
        assert_eq!(path, cfg.frames * cfg.subs / 16);
    }
}
