//! Measured collector hot-path throughput — the backend of the
//! `vpm bench-collector` subcommand.
//!
//! The paper's §7.1 proof of concept argues the VPM modules leave a
//! software router's forwarding rate untouched, i.e. the collector is
//! not the bottleneck. This harness makes that claim measurable on
//! every checkout: it walks one multi-path workload through the
//! collector's classification/digest/update variants and reports
//! ns/packet and Mpps per variant, including a reconstruction of the
//! pre-index linear-scan hot path so the before/after is visible in
//! one run. Three rows probe the current architecture's ceilings: the
//! multi-lane SIMD digest kernel against its scalar twin
//! (`digest_batch_scalar` / `digest_batch_words`), the sharded
//! multi-core plane against the single-core batch path
//! (`ingest_sharded`), and the paper's 100,000-path regime
//! (`classify_paper_scale` / `ingest_paper_scale`).
//! `vpm bench-collector` serializes the report to
//! `BENCH_collector.json`, seeding the repo's performance trajectory.

use std::net::Ipv4Addr;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use vpm_core::receipt::PathId;
use vpm_core::{Collector, HopConfig, Ingest, ShardedCollector};
use vpm_hash::{Digest, DEFAULT_DIGEST_SEED};
use vpm_packet::{
    ipv4, DomainId, HeaderSpec, HopId, Ipv4Header, Ipv4Prefix, Packet, SimDuration, SimTime,
    Transport, UdpHeader, DIGEST_INPUT_WORDS,
};

/// The paper's target classifier fan-out (§7.1 sizes per-path state
/// for a 100,000-path router); the `*_paper_scale` variants always run
/// at this path count regardless of `--paths`.
pub const PAPER_SCALE_PATHS: usize = 100_000;

fn default_shards() -> usize {
    4
}

/// Workload shape for one collector benchmark run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CollectorBenchConfig {
    /// Packets pushed through each variant.
    pub packets: usize,
    /// Registered `/32`-pair paths; traffic round-robins across them.
    pub paths: usize,
    /// Batch size for the batched variants.
    pub batch: usize,
    /// Shard count for the `ingest_sharded` variant (per-core
    /// collectors; size to the worker cores under test).
    #[serde(default = "default_shards")]
    pub shards: usize,
    /// Timed repetitions per variant (the minimum is reported).
    pub repeats: usize,
}

impl Default for CollectorBenchConfig {
    fn default() -> Self {
        CollectorBenchConfig {
            packets: 200_000,
            paths: 200,
            // NIC-ring sized: large enough that a 200-path round-robin
            // still leaves ~20-packet per-path partitions to amortize
            // over.
            batch: 4096,
            shards: default_shards(),
            repeats: 3,
        }
    }
}

/// One measured variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantResult {
    /// Variant name (stable identifier for trajectory tracking).
    pub name: String,
    /// Nanoseconds per packet (minimum over repeats).
    pub ns_per_packet: f64,
    /// Million packets per second implied by `ns_per_packet`.
    pub mpps: f64,
}

/// The full report `vpm bench-collector` prints and serializes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollectorBenchReport {
    /// Workload shape.
    pub config: CollectorBenchConfig,
    /// Per-variant measurements, in pipeline order.
    pub results: Vec<VariantResult>,
    /// `observe_linear_scan / observe_indexed` — the classifier-index
    /// win at this path count.
    pub classify_speedup: f64,
    /// `observe_prehashed / observe_batch_prehashed` — the batching
    /// win on the pre-classified, pre-digested data plane.
    pub batch_speedup: f64,
    /// `observe_linear_scan / observe_full_batched` — the whole
    /// rebuilt data plane (index + slice digest + batch) against the
    /// pre-index per-packet architecture doing the same work.
    pub hot_path_speedup: f64,
    /// `digest_batch_scalar / digest_batch_words` — the multi-lane
    /// SIMD digest kernel against the scalar loop on identical blocks
    /// (both rows include word-block extraction, so the ratio isolates
    /// the kernel swap).
    #[serde(default)]
    pub simd_digest_speedup: f64,
    /// `observe_batch_prehashed / ingest_sharded` — the sharded
    /// multi-core plane against the single-core batch path on the same
    /// triples. Below 1.0 on a single-core box (partition + spawn
    /// overhead with nothing to run in parallel); grows with worker
    /// cores.
    #[serde(default)]
    pub sharded_speedup: f64,
}

/// The benchmark workload: registered path specs plus a packet stream
/// round-robining across them at 100 kpps.
pub struct Workload {
    /// One `/32`-pair spec per path.
    pub specs: Vec<HeaderSpec>,
    /// The packet stream.
    pub packets: Vec<Packet>,
    /// Observation times, 10 µs apart.
    pub times: Vec<SimTime>,
    /// Ground-truth path index per packet (`i % paths`).
    pub path_idx: Vec<usize>,
}

fn src_addr(p: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, (p >> 16) as u8, (p >> 8) as u8, p as u8)
}

fn dst_addr(p: usize) -> Ipv4Addr {
    Ipv4Addr::new(20, (p >> 16) as u8, (p >> 8) as u8, p as u8)
}

/// Build the deterministic benchmark workload.
pub fn build_workload(cfg: &CollectorBenchConfig) -> Workload {
    assert!(cfg.paths > 0 && cfg.paths <= 1 << 24);
    let specs: Vec<HeaderSpec> = (0..cfg.paths)
        .map(|p| {
            HeaderSpec::new(
                Ipv4Prefix::new(src_addr(p), 32).unwrap(),
                Ipv4Prefix::new(dst_addr(p), 32).unwrap(),
            )
        })
        .collect();
    let mut packets = Vec::with_capacity(cfg.packets);
    let mut times = Vec::with_capacity(cfg.packets);
    let mut path_idx = Vec::with_capacity(cfg.packets);
    for i in 0..cfg.packets {
        let p = i % cfg.paths;
        let mut ip = Ipv4Header::simple(src_addr(p), dst_addr(p), ipv4::PROTO_UDP, 428);
        ip.id = i as u16;
        packets.push(Packet {
            seq: i as u64,
            ipv4: ip,
            transport: Transport::Udp(UdpHeader {
                sport: 1024 + (i % 50_000) as u16,
                dport: 53,
                length: 408,
            }),
            payload_len: 400,
        });
        times.push(SimTime::from_micros(10 * i as u64));
        path_idx.push(p);
    }
    Workload {
        specs,
        packets,
        times,
        path_idx,
    }
}

fn path_of(spec: HeaderSpec) -> PathId {
    PathId {
        spec,
        prev_hop: Some(HopId(3)),
        next_hop: Some(HopId(5)),
        max_diff: SimDuration::from_millis(2),
    }
}

fn hop_config() -> HopConfig {
    HopConfig::new(HopId(4), DomainId(2))
        .with_sampling_rate(0.01)
        .with_aggregate_size(1000)
}

/// Collector under test: paper-default thresholds (1% sampling,
/// 1000-packet aggregates) with every workload spec registered. Shared
/// with the criterion bench so the two harnesses stay comparable.
pub fn mk_collector(w: &Workload) -> Collector {
    let mut c = Collector::new(hop_config());
    for &spec in &w.specs {
        c.register_path(path_of(spec));
    }
    c
}

/// Sharded collector under test: same thresholds, same registration
/// order — so global path indices line up with [`mk_collector`]'s and
/// the two planes accept identical batches.
pub fn mk_sharded(w: &Workload, shards: usize) -> ShardedCollector {
    let mut c = ShardedCollector::new(hop_config(), shards);
    for &spec in &w.specs {
        c.register_path(path_of(spec));
    }
    c
}

/// Time `body` (which must consume `packets` packets per call)
/// `repeats` times and return the minimum ns/packet.
fn time_variant<F: FnMut() -> u64>(packets: usize, repeats: usize, mut body: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let consumed = body();
        let elapsed = start.elapsed().as_nanos() as f64;
        assert_eq!(
            consumed as usize, packets,
            "variant must consume the stream"
        );
        best = best.min(elapsed / packets as f64);
    }
    best
}

/// Run every variant and assemble the report.
pub fn run(cfg: &CollectorBenchConfig) -> CollectorBenchReport {
    let w = build_workload(cfg);
    let n = w.packets.len();
    let mut results = Vec::new();
    let mut record = |name: &str, nspp: f64| {
        results.push(VariantResult {
            name: name.to_string(),
            ns_per_packet: nspp,
            mpps: 1e3 / nspp,
        });
        nspp
    };

    // The pre-index data plane, reconstructed: O(paths) linear
    // classification scan, then digest + update. This is what
    // `Collector::observe` did before the classifier index. The scan
    // is O(paths × packets), so at large `--paths` only a prefix is
    // measured — ns/packet is unaffected, the run stays bounded.
    let n_linear = n.min(((1usize << 28) / cfg.paths.max(1)).max(1_000));
    // Measures the deprecated per-packet surface on purpose: this row
    // is the historical architecture and its semantics must not move.
    #[allow(deprecated)]
    let linear = time_variant(n_linear, cfg.repeats, || {
        let mut col = mk_collector(&w);
        let mut seen = 0u64;
        for (pkt, &t) in w.packets.iter().zip(&w.times).take(n_linear) {
            if let Some(idx) = w.specs.iter().position(|s| s.matches(pkt)) {
                col.observe_digest(idx, pkt.digest_with(DEFAULT_DIGEST_SEED), t);
                seen += 1;
            }
        }
        std::hint::black_box(col.counters());
        seen
    });
    record("observe_linear_scan", linear);

    // The per-packet full hot path: classifier index + digest +
    // update. Deliberately still on the deprecated `observe` — the row
    // tracks the per-packet architecture across releases.
    #[allow(deprecated)]
    let indexed = time_variant(n, cfg.repeats, || {
        let mut col = mk_collector(&w);
        let mut seen = 0u64;
        for (pkt, &t) in w.packets.iter().zip(&w.times) {
            if col.observe(pkt, t).is_some() {
                seen += 1;
            }
        }
        std::hint::black_box(col.counters());
        seen
    });
    record("observe_indexed", indexed);

    // Pre-classified, pre-digested per-packet path (what a
    // NetFlow-style engine with its own classifier would run). Also
    // intentionally on the deprecated per-packet surface.
    let digests: Vec<Digest> = w.packets.iter().map(|p| p.digest()).collect();
    #[allow(deprecated)]
    let prehashed = time_variant(n, cfg.repeats, || {
        let mut col = mk_collector(&w);
        for ((&idx, &d), &t) in w.path_idx.iter().zip(&digests).zip(&w.times) {
            col.observe_digest(idx, d, t);
        }
        std::hint::black_box(col.counters());
        n as u64
    });
    record("observe_prehashed", prehashed);

    // The batched data plane behind the `Ingest` surface: same inputs,
    // amortized counters, pass masks, and per-path batch fast paths.
    let triples: Vec<(usize, Digest, SimTime)> = (0..n)
        .map(|i| (w.path_idx[i], digests[i], w.times[i]))
        .collect();
    let batched = time_variant(n, cfg.repeats, || {
        let mut col = mk_collector(&w);
        for chunk in triples.chunks(cfg.batch.max(1)) {
            let report = col.ingest(chunk);
            debug_assert!(report.is_clean());
        }
        std::hint::black_box(col.counters());
        n as u64
    });
    record("observe_batch_prehashed", batched);

    // The rebuilt data plane end to end: classifier index + multi-lane
    // `digest_batch` + batch ingest, in ring-buffer-sized chunks.
    // Compare against `observe_linear_scan` — the same work in the
    // pre-index, per-packet architecture.
    let full_batched = time_variant(n, cfg.repeats, || {
        let mut col = mk_collector(&w);
        let mut blocks: Vec<[u32; DIGEST_INPUT_WORDS]> = Vec::new();
        let mut chunk_digests: Vec<Digest> = Vec::new();
        let mut triples: Vec<(usize, Digest, SimTime)> = Vec::new();
        let mut seen = 0u64;
        let chunk_len = cfg.batch.max(1);
        let mut at = 0usize;
        while at < n {
            let upto = (at + chunk_len).min(n);
            blocks.clear();
            triples.clear();
            chunk_digests.clear();
            for i in at..upto {
                blocks.push(w.packets[i].digest_words());
            }
            vpm_hash::digest_batch(&blocks, DEFAULT_DIGEST_SEED, &mut chunk_digests);
            for (k, i) in (at..upto).enumerate() {
                if let Some(idx) = col.classify(&w.packets[i]) {
                    triples.push((idx, chunk_digests[k], w.times[i]));
                    seen += 1;
                }
            }
            let report = col.ingest(&triples);
            debug_assert!(report.is_clean());
            at = upto;
        }
        std::hint::black_box(col.counters());
        seen
    });
    record("observe_full_batched", full_batched);

    // The multi-core plane: identical prehashed triples, partitioned
    // to per-core collectors by `PathId::shard_key` and run on scoped
    // workers. On a many-core box this row beats the single-core batch
    // path; on one core it pays partition + spawn overhead for
    // nothing, which `sharded_speedup` reports honestly.
    let sharded = time_variant(n, cfg.repeats, || {
        let mut col = mk_sharded(&w, cfg.shards);
        for chunk in triples.chunks(cfg.batch.max(1)) {
            let report = col.ingest(chunk);
            debug_assert!(report.is_clean());
        }
        std::hint::black_box(col.counters());
        n as u64
    });
    record("ingest_sharded", sharded);

    // Digest computation alone: per-packet byte path vs the word-block
    // `digest_batch` slice path, scalar and multi-lane. The scalar and
    // multi-lane rows do identical block extraction, so their ratio is
    // the SIMD kernel win alone.
    let d_bytes = time_variant(n, cfg.repeats, || {
        let mut acc = 0u64;
        for pkt in &w.packets {
            acc ^= pkt.digest().0;
        }
        std::hint::black_box(acc);
        n as u64
    });
    record("digest_per_packet", d_bytes);

    let d_scalar = time_variant(n, cfg.repeats, || {
        let blocks: Vec<[u32; DIGEST_INPUT_WORDS]> =
            w.packets.iter().map(|p| p.digest_words()).collect();
        let mut out = Vec::new();
        vpm_hash::digest_batch_scalar(&blocks, DEFAULT_DIGEST_SEED, &mut out);
        std::hint::black_box(out.len());
        n as u64
    });
    record("digest_batch_scalar", d_scalar);

    let d_words = time_variant(n, cfg.repeats, || {
        let blocks: Vec<[u32; DIGEST_INPUT_WORDS]> =
            w.packets.iter().map(|p| p.digest_words()).collect();
        let mut out = Vec::new();
        vpm_hash::digest_batch(&blocks, DEFAULT_DIGEST_SEED, &mut out);
        std::hint::black_box(out.len());
        n as u64
    });
    record("digest_batch_words", d_words);

    // The paper's target regime: a 100,000-path table. Classification
    // must stay O(1) at that fan-out and ingest must not degrade with
    // table size. The collectors are built once, outside the timed
    // bodies — at this path count registration would otherwise
    // dominate the measurement.
    let paper_cfg = CollectorBenchConfig {
        paths: PAPER_SCALE_PATHS,
        ..*cfg
    };
    let pw = build_workload(&paper_cfg);
    let pcol = mk_collector(&pw);
    let classify_paper = time_variant(n, cfg.repeats, || {
        let mut seen = 0u64;
        for pkt in &pw.packets {
            if pcol.classify(pkt).is_some() {
                seen += 1;
            }
        }
        seen
    });
    record("classify_paper_scale", classify_paper);

    let p_digests: Vec<Digest> = pw.packets.iter().map(|p| p.digest()).collect();
    let p_triples: Vec<(usize, Digest, SimTime)> = (0..pw.packets.len())
        .map(|i| (pw.path_idx[i], p_digests[i], pw.times[i]))
        .collect();
    // Reused across repeats: per-path state accumulates, but the
    // per-packet ingest cost it measures is steady.
    let mut pcol_mut = mk_collector(&pw);
    let ingest_paper = time_variant(n, cfg.repeats, || {
        for chunk in p_triples.chunks(cfg.batch.max(1)) {
            let report = pcol_mut.ingest(chunk);
            debug_assert!(report.is_clean());
        }
        std::hint::black_box(pcol_mut.counters());
        n as u64
    });
    record("ingest_paper_scale", ingest_paper);

    CollectorBenchReport {
        config: *cfg,
        results,
        classify_speedup: linear / indexed,
        batch_speedup: prehashed / batched,
        hot_path_speedup: linear / full_batched,
        simd_digest_speedup: d_scalar / d_words,
        sharded_speedup: batched / sharded,
    }
}

/// Render the report as an aligned text table.
pub fn render_table(report: &CollectorBenchReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "collector hot path — {} packets, {} paths, batch {}, {} shards",
        report.config.packets, report.config.paths, report.config.batch, report.config.shards
    );
    let _ = writeln!(s, "{:<28} {:>12} {:>10}", "variant", "ns/packet", "Mpps");
    for r in &report.results {
        let _ = writeln!(
            s,
            "{:<28} {:>12.1} {:>10.2}",
            r.name, r.ns_per_packet, r.mpps
        );
    }
    let _ = writeln!(
        s,
        "classifier index speedup (linear scan / indexed): {:.2}x",
        report.classify_speedup
    );
    let _ = writeln!(
        s,
        "batch speedup (per-packet prehashed / batched):   {:.2}x",
        report.batch_speedup
    );
    let _ = writeln!(
        s,
        "hot-path speedup (linear scan / full batched):    {:.2}x",
        report.hot_path_speedup
    );
    let _ = writeln!(
        s,
        "SIMD digest speedup (scalar / multi-lane):        {:.2}x",
        report.simd_digest_speedup
    );
    let _ = writeln!(
        s,
        "sharded speedup (single-core batch / sharded):    {:.2}x",
        report.sharded_speedup
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_classifies_onto_expected_paths() {
        let cfg = CollectorBenchConfig {
            packets: 2_000,
            paths: 37,
            batch: 64,
            shards: 2,
            repeats: 1,
        };
        let w = build_workload(&cfg);
        let col = mk_collector(&w);
        for (i, pkt) in w.packets.iter().enumerate() {
            assert_eq!(col.classify(pkt), Some(w.path_idx[i]), "packet {i}");
            assert_eq!(
                w.specs.iter().position(|s| s.matches(pkt)),
                Some(w.path_idx[i]),
                "linear reference agrees"
            );
        }
    }

    #[test]
    fn sharded_and_single_collectors_share_global_indices() {
        let cfg = CollectorBenchConfig {
            packets: 500,
            paths: 64,
            batch: 64,
            shards: 4,
            repeats: 1,
        };
        let w = build_workload(&cfg);
        let sharded = mk_sharded(&w, cfg.shards);
        assert_eq!(sharded.path_count(), cfg.paths);
        assert_eq!(sharded.shard_count(), cfg.shards);
    }

    #[test]
    fn report_has_all_variants_and_sane_numbers() {
        let report = run(&CollectorBenchConfig {
            packets: 5_000,
            paths: 20,
            batch: 128,
            shards: 2,
            repeats: 1,
        });
        let names: Vec<&str> = report.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "observe_linear_scan",
                "observe_indexed",
                "observe_prehashed",
                "observe_batch_prehashed",
                "observe_full_batched",
                "ingest_sharded",
                "digest_per_packet",
                "digest_batch_scalar",
                "digest_batch_words",
                "classify_paper_scale",
                "ingest_paper_scale",
            ]
        );
        for r in &report.results {
            assert!(
                r.ns_per_packet > 0.0 && r.ns_per_packet.is_finite(),
                "{r:?}"
            );
            assert!((r.mpps - 1e3 / r.ns_per_packet).abs() < 1e-9);
        }
        assert!(report.classify_speedup > 0.0);
        assert!(report.batch_speedup > 0.0);
        assert!(report.simd_digest_speedup > 0.0);
        assert!(report.sharded_speedup > 0.0);
        let table = render_table(&report);
        assert!(table.contains("observe_batch_prehashed"));
        assert!(table.contains("ingest_sharded"));
        assert!(table.contains("classify_paper_scale"));
    }
}
