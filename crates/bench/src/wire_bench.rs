//! Measured wire-codec throughput — the backend of the
//! `vpm bench-wire` subcommand.
//!
//! §7.1 argues receipt dissemination is cheap because receipts are
//! compact; this harness makes both halves of that claim measurable on
//! every checkout: encode/decode throughput (MB/s and receipts/s) for
//! the v1 binary codec in both profiles, the JSON shim path it
//! replaces, and the resulting bytes-per-sample. `vpm bench-wire`
//! serializes the report to `BENCH_wire.json`, landing next to
//! `BENCH_collector.json` in the repo's performance trajectory.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use vpm_core::processor::ReceiptBatch;
use vpm_core::receipt::{AggId, AggReceipt, PathId, SampleReceipt, SampleRecord};
use vpm_hash::{Digest, HopKey, KeyEpoch};
use vpm_packet::{HeaderSpec, HopId, Ipv4Prefix, SimDuration, SimTime};
use vpm_wire::{Profile, WireDecoder, WireEncoder};

/// Workload shape for one wire benchmark run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WireBenchConfig {
    /// Sample receipts per batch (one path each).
    pub receipts: usize,
    /// Sample records per receipt.
    pub records: usize,
    /// Aggregate receipts per batch.
    pub aggs: usize,
    /// `AggTrans` window digests per aggregate receipt.
    pub window: usize,
    /// Timed repetitions per variant (the minimum is reported).
    pub repeats: usize,
}

impl Default for WireBenchConfig {
    fn default() -> Self {
        WireBenchConfig {
            // One busy reporting interval: 256 paths × 64 samples plus
            // 256 finished aggregates.
            receipts: 256,
            records: 64,
            aggs: 256,
            window: 4,
            repeats: 3,
        }
    }
}

/// One measured codec variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireVariantResult {
    /// Variant name (stable identifier for trajectory tracking).
    pub name: String,
    /// Megabytes of wire (or JSON) bytes processed per second.
    pub mb_per_s: f64,
    /// Whole receipt batches processed per second.
    pub batches_per_s: f64,
    /// Sample records processed per second.
    pub samples_per_s: f64,
}

/// The full report `vpm bench-wire` prints and serializes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireBenchReport {
    /// Workload shape.
    pub config: WireBenchConfig,
    /// Per-variant measurements.
    pub results: Vec<WireVariantResult>,
    /// Encoded bytes per sample record, compact profile (§7.1 regime).
    pub bytes_per_sample_compact: f64,
    /// Encoded bytes per sample record, precise profile.
    pub bytes_per_sample_precise: f64,
    /// Serialized bytes per sample record through the JSON shim.
    pub bytes_per_sample_json: f64,
    /// `json / compact` size ratio — how much the binary codec saves.
    pub json_size_ratio: f64,
    /// `encode_json / encode_compact` time ratio.
    pub encode_speedup_vs_json: f64,
    /// `decode_json / decode_compact` time ratio.
    pub decode_speedup_vs_json: f64,
    /// `encode_signed_compact / encode_compact` time ratio — what the
    /// HMAC-SHA-256 MAC trailer costs at encode, compact profile.
    pub signed_encode_overhead_compact: f64,
    /// `encode_signed_precise / encode_precise` time ratio.
    pub signed_encode_overhead_precise: f64,
    /// MAC trailer bytes per signed frame (epoch + HMAC-SHA-256 tag).
    pub mac_trailer_bytes: usize,
}

/// The signing key for the benchmark workload; its seed doubles as the
/// legacy tag key `build_batch` signs with.
pub fn bench_key() -> HopKey {
    HopKey::from_seed(0x5650_4d00 ^ 4)
}

/// Deterministic benchmark batch: `receipts` single-path sample
/// receipts plus `aggs` aggregate receipts, all fields derived from a
/// splitmix stream.
pub fn build_batch(cfg: &WireBenchConfig) -> ReceiptBatch {
    let mut state = 0x5eed_u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let path = |n: u64| PathId {
        spec: HeaderSpec::new(
            Ipv4Prefix::new(std::net::Ipv4Addr::from(0x0a00_0000 | n as u32), 32)
                .expect("/32 is valid"),
            Ipv4Prefix::new(std::net::Ipv4Addr::from(0x1400_0000 | n as u32), 32)
                .expect("/32 is valid"),
        ),
        prev_hop: Some(HopId(3)),
        next_hop: Some(HopId(5)),
        max_diff: SimDuration::from_millis(2),
    };
    let mut batch = ReceiptBatch {
        hop: HopId(4),
        batch_seq: 1,
        samples: (0..cfg.receipts)
            .map(|r| SampleReceipt {
                path: path(r as u64),
                samples: (0..cfg.records)
                    .map(|i| SampleRecord {
                        pkt_id: Digest(next()),
                        time: SimTime::from_micros((r * cfg.records + i) as u64 * 10),
                    })
                    .collect(),
            })
            .collect(),
        aggregates: (0..cfg.aggs)
            .map(|a| AggReceipt {
                path: path((a % cfg.receipts.max(1)) as u64),
                agg: AggId {
                    first: Digest(next()),
                    last: Digest(next()),
                },
                pkt_cnt: 1000 + a as u64,
                agg_trans: (0..cfg.window).map(|_| Digest(next())).collect(),
            })
            .collect(),
        auth_tag: 0,
    };
    batch.auth_tag = batch.compute_tag(bench_key().tag_key());
    batch
}

/// Time `body` `repeats` times; report the minimum seconds per call.
fn time_secs<F: FnMut()>(repeats: usize, mut body: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        body();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Run every variant and assemble the report.
pub fn run(cfg: &WireBenchConfig) -> WireBenchReport {
    let batch = build_batch(cfg);
    let total_samples = (cfg.receipts * cfg.records) as f64;

    let compact_frame = WireEncoder::compact().encode(&batch).expect("encodes");
    let precise_frame = WireEncoder::precise().encode(&batch).expect("encodes");
    let json = serde_json::to_string(&batch).expect("serializes");
    // The §7.1 accounting: record bytes over the sample section only.
    let compact_record_bytes = Profile::Compact.sample_record_bytes() as f64;
    let precise_record_bytes = Profile::Precise.sample_record_bytes() as f64;

    let mut results = Vec::new();
    let mut record = |name: &str, bytes: usize, secs: f64| {
        results.push(WireVariantResult {
            name: name.to_string(),
            mb_per_s: bytes as f64 / secs / 1e6,
            batches_per_s: 1.0 / secs,
            samples_per_s: total_samples / secs,
        });
        secs
    };

    let enc_compact = time_secs(cfg.repeats, || {
        std::hint::black_box(WireEncoder::compact().encode(&batch).expect("encodes"));
    });
    record("encode_compact", compact_frame.len(), enc_compact);
    let enc_precise = time_secs(cfg.repeats, || {
        std::hint::black_box(WireEncoder::precise().encode(&batch).expect("encodes"));
    });
    record("encode_precise", precise_frame.len(), enc_precise);
    let enc_json = time_secs(cfg.repeats, || {
        std::hint::black_box(serde_json::to_string(&batch).expect("serializes"));
    });
    record("encode_json", json.len(), enc_json);

    let dec_compact = time_secs(cfg.repeats, || {
        std::hint::black_box(WireDecoder::decode(compact_frame.as_bytes()).expect("decodes"));
    });
    record("decode_compact", compact_frame.len(), dec_compact);
    let dec_precise = time_secs(cfg.repeats, || {
        std::hint::black_box(WireDecoder::decode(precise_frame.as_bytes()).expect("decodes"));
    });
    record("decode_precise", precise_frame.len(), dec_precise);
    let dec_json = time_secs(cfg.repeats, || {
        let back: ReceiptBatch = serde_json::from_str(&json).expect("parses");
        std::hint::black_box(back);
    });
    record("decode_json", json.len(), dec_json);

    // Signed-frame variants: the same codec work plus the HMAC-SHA-256
    // MAC trailer every circulating frame now carries.
    let key = bench_key();
    let signed_compact = WireEncoder::compact()
        .encode_signed(&batch, &key, KeyEpoch(0))
        .expect("signs");
    let signed_precise = WireEncoder::precise()
        .encode_signed(&batch, &key, KeyEpoch(0))
        .expect("signs");
    let enc_signed_compact = time_secs(cfg.repeats, || {
        std::hint::black_box(
            WireEncoder::compact()
                .encode_signed(&batch, &key, KeyEpoch(0))
                .expect("signs"),
        );
    });
    record(
        "encode_signed_compact",
        signed_compact.len(),
        enc_signed_compact,
    );
    let enc_signed_precise = time_secs(cfg.repeats, || {
        std::hint::black_box(
            WireEncoder::precise()
                .encode_signed(&batch, &key, KeyEpoch(0))
                .expect("signs"),
        );
    });
    record(
        "encode_signed_precise",
        signed_precise.len(),
        enc_signed_precise,
    );
    let verify_signed_compact = time_secs(cfg.repeats, || {
        assert!(std::hint::black_box(signed_compact.verify_mac(&key)));
    });
    record(
        "verify_signed_compact",
        signed_compact.len(),
        verify_signed_compact,
    );
    let verify_signed_precise = time_secs(cfg.repeats, || {
        assert!(std::hint::black_box(signed_precise.verify_mac(&key)));
    });
    record(
        "verify_signed_precise",
        signed_precise.len(),
        verify_signed_precise,
    );

    WireBenchReport {
        config: *cfg,
        results,
        bytes_per_sample_compact: compact_record_bytes,
        bytes_per_sample_precise: precise_record_bytes,
        bytes_per_sample_json: json.len() as f64 / total_samples.max(1.0),
        json_size_ratio: json.len() as f64 / compact_frame.len() as f64,
        encode_speedup_vs_json: enc_json / enc_compact,
        decode_speedup_vs_json: dec_json / dec_compact,
        signed_encode_overhead_compact: enc_signed_compact / enc_compact,
        signed_encode_overhead_precise: enc_signed_precise / enc_precise,
        mac_trailer_bytes: vpm_wire::MAC_TRAILER_BYTES,
    }
}

/// Render the report as an aligned text table.
pub fn render_table(report: &WireBenchReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let c = &report.config;
    let _ = writeln!(
        s,
        "wire codec — {} receipts × {} records + {} aggs (window {})",
        c.receipts, c.records, c.aggs, c.window
    );
    let _ = writeln!(
        s,
        "{:<16} {:>10} {:>12} {:>14}",
        "variant", "MB/s", "batches/s", "samples/s"
    );
    for r in &report.results {
        let _ = writeln!(
            s,
            "{:<16} {:>10.1} {:>12.1} {:>14.0}",
            r.name, r.mb_per_s, r.batches_per_s, r.samples_per_s
        );
    }
    let _ = writeln!(
        s,
        "bytes/sample: compact {:.1} (§7.1), precise {:.1}, JSON {:.1} ({:.1}x vs compact)",
        report.bytes_per_sample_compact,
        report.bytes_per_sample_precise,
        report.bytes_per_sample_json,
        report.json_size_ratio
    );
    let _ = writeln!(
        s,
        "binary vs JSON: encode {:.1}x, decode {:.1}x",
        report.encode_speedup_vs_json, report.decode_speedup_vs_json
    );
    let _ = writeln!(
        s,
        "HMAC trailer: {} B/frame; signed encode {:.2}x compact, {:.2}x precise",
        report.mac_trailer_bytes,
        report.signed_encode_overhead_compact,
        report.signed_encode_overhead_precise
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_signed() {
        let cfg = WireBenchConfig {
            receipts: 8,
            records: 4,
            aggs: 8,
            window: 2,
            repeats: 1,
        };
        let a = build_batch(&cfg);
        let b = build_batch(&cfg);
        assert_eq!(a, b);
        assert!(a.verify_tag(0x5650_4d00 ^ 4));
        assert_eq!(a.paths().len(), 8, "one path per receipt");
    }

    #[test]
    fn report_has_all_variants_and_sane_numbers() {
        let report = run(&WireBenchConfig {
            receipts: 8,
            records: 16,
            aggs: 8,
            window: 2,
            repeats: 1,
        });
        let names: Vec<&str> = report.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "encode_compact",
                "encode_precise",
                "encode_json",
                "decode_compact",
                "decode_precise",
                "decode_json",
                "encode_signed_compact",
                "encode_signed_precise",
                "verify_signed_compact",
                "verify_signed_precise",
            ]
        );
        for r in &report.results {
            assert!(r.mb_per_s > 0.0 && r.mb_per_s.is_finite(), "{r:?}");
            assert!(r.samples_per_s > 0.0, "{r:?}");
        }
        // The §7.1 constants are what the bench reports per sample.
        assert_eq!(report.bytes_per_sample_compact, 7.0);
        assert_eq!(report.bytes_per_sample_precise, 16.0);
        assert!(
            report.bytes_per_sample_json > report.bytes_per_sample_precise,
            "JSON cannot beat the binary codec: {report:?}"
        );
        assert!(report.json_size_ratio > 1.0);
        assert!(report.signed_encode_overhead_compact > 0.0);
        assert!(report.signed_encode_overhead_precise > 0.0);
        assert_eq!(report.mac_trailer_bytes, vpm_wire::MAC_TRAILER_BYTES);
        let table = render_table(&report);
        assert!(table.contains("encode_compact"));
        assert!(table.contains("verify_signed_precise"));
        assert!(table.contains("bytes/sample"));
        assert!(table.contains("HMAC trailer"));
    }

    #[test]
    fn signed_bench_frames_verify_under_the_bench_key() {
        let batch = build_batch(&WireBenchConfig {
            receipts: 4,
            records: 8,
            aggs: 4,
            window: 1,
            repeats: 1,
        });
        let key = bench_key();
        let frame = WireEncoder::precise()
            .encode_signed(&batch, &key, KeyEpoch(0))
            .unwrap();
        assert!(frame.verify_mac(&key));
        assert!(!frame.verify_mac(&HopKey::from_seed(1)));
        assert_eq!(frame.decode().unwrap().batch, batch);
    }

    #[test]
    fn roundtrips_hold_on_the_bench_workload() {
        let batch = build_batch(&WireBenchConfig {
            receipts: 4,
            records: 8,
            aggs: 4,
            window: 1,
            repeats: 1,
        });
        let precise = WireEncoder::precise().encode(&batch).unwrap();
        assert_eq!(precise.decode().unwrap().batch, batch);
        let compact = WireEncoder::compact().encode(&batch).unwrap();
        let truncated = compact.decode().unwrap().batch;
        assert_eq!(truncated.sample_records(), batch.sample_records());
        let json: ReceiptBatch =
            serde_json::from_str(&serde_json::to_string(&batch).unwrap()).unwrap();
        assert_eq!(json, batch);
    }
}
