//! Measured continuous-operation cost — the backend of the
//! `vpm bench-audit` subcommand.
//!
//! The audit plane's claims are operational: a streaming verifier
//! keeps up with the interval stream, GC reclaims faster than
//! publishing fills, and stopping/restoring through a checkpoint is
//! cheap enough to do routinely. This harness measures each claim on
//! every checkout:
//!
//! * **`audit_intervals`** — a full `vpm_sim::audit::run_audit` pass
//!   (publish + drain + fold + periodic GC and checkpoints), reported
//!   as intervals/s end to end;
//! * **`gc_reclaim`** — `ReceiptTransport::compact_before` over a
//!   fully published bus, reported as entries reclaimed per second;
//! * **`checkpoint_encode` / `checkpoint_restore`** — the
//!   `AuditCheckpoint` codec round-trip at fleet-scale path counts,
//!   reported as snapshots/s each way.
//!
//! `vpm bench-audit` serializes the report to `BENCH_audit.json` next
//! to the other bench artifacts; CI's bench-trend gate
//! (`scripts/bench_check.py`) validates the shared schema and the
//! run-over-run trend.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use vpm_sim::audit::{run_audit, AuditConfig, AUDIT_BASE_SEED};
use vpm_wire::{AuditCheckpoint, PathAuditState, ReceiptTransport};

/// Workload shape for one audit benchmark run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AuditBenchConfig {
    /// Path slots in the timed audit run.
    pub paths: usize,
    /// Intervals in the timed audit run.
    pub intervals: u64,
    /// Shards of the bus under test.
    pub shards: usize,
    /// GC cadence of the timed audit run (intervals per pass).
    pub gc_every: u64,
    /// Path records in the checkpoint codec variants.
    pub checkpoint_paths: usize,
    /// Timed repetitions per variant (the minimum is reported).
    pub repeats: usize,
}

impl Default for AuditBenchConfig {
    fn default() -> Self {
        AuditBenchConfig {
            paths: 8,
            intervals: 256,
            shards: 8,
            gc_every: 16,
            checkpoint_paths: 4096,
            repeats: 3,
        }
    }
}

/// One measured variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditVariantResult {
    /// Variant name (stable identifier for trajectory tracking).
    pub name: String,
    /// Work items (intervals, reclaimed entries, or snapshots) per
    /// second.
    pub items_per_s: f64,
    /// Nanoseconds per work item.
    pub ns_per_item: f64,
}

/// The full report `vpm bench-audit` prints and serializes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditBenchReport {
    /// Workload shape.
    pub config: AuditBenchConfig,
    /// Per-variant measurements.
    pub results: Vec<AuditVariantResult>,
    /// Entries each timed GC pass reclaimed.
    pub gc_reclaimed_per_pass: f64,
    /// Encoded size of the benchmark checkpoint, bytes.
    pub checkpoint_bytes: f64,
    /// Peak retained entries during the timed audit run (the flatness
    /// observable, as a measured number).
    pub audit_max_entries: f64,
}

/// Time `body` `repeats` times; report the minimum seconds per call.
fn time_secs<F: FnMut()>(repeats: usize, mut body: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        body();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// The audit-run shape the `audit_intervals` variant times.
fn timed_audit_cfg(cfg: &AuditBenchConfig) -> AuditConfig {
    AuditConfig {
        paths: cfg.paths,
        intervals: cfg.intervals,
        shards: cfg.shards,
        gc_every: cfg.gc_every,
        checkpoint_every: cfg.gc_every * 4,
        restart_at: None,
        seed: AUDIT_BASE_SEED,
        assert_flat: true,
    }
}

/// A fully published, never-compacted bus for the GC variant: the
/// same audit workload with GC disabled, ready for one big pass.
fn gc_fixture(cfg: &AuditBenchConfig) -> (vpm_wire::ShardedBus, u64) {
    use vpm_sim::audit::workload::{publish_interval, Churn};
    let bus = vpm_wire::ShardedBus::new(cfg.shards);
    let mut churn = Churn::new(cfg.paths, AUDIT_BASE_SEED);
    let mut published = 0u64;
    for t in 0..cfg.intervals {
        churn.step(t);
        published += publish_interval(&bus, &churn, t, 7).expect("bench batches publish") as u64;
    }
    (bus, published)
}

/// A checkpoint with `checkpoint_paths` realistic path records.
fn checkpoint_fixture(cfg: &AuditBenchConfig) -> AuditCheckpoint {
    AuditCheckpoint {
        next_seq: 0x10_0000,
        horizon: 0x0f_0000,
        intervals: 2000,
        paths: (0..cfg.checkpoint_paths as u32)
            .map(|i| PathAuditState {
                path: i,
                audited_intervals: 1900 + u64::from(i % 100),
                flagged_intervals: u64::from(i % 7),
                last_interval: 1999,
            })
            .collect(),
    }
}

/// Run every variant and assemble the report.
pub fn run(cfg: &AuditBenchConfig) -> AuditBenchReport {
    let mut results = Vec::new();
    let mut record = |name: &str, items: usize, secs: f64| {
        results.push(AuditVariantResult {
            name: name.to_string(),
            items_per_s: items as f64 / secs,
            ns_per_item: secs * 1e9 / items as f64,
        });
        secs
    };

    // --- End-to-end streaming audit. ---
    let mut max_entries = 0usize;
    let audit = time_secs(cfg.repeats, || {
        let out = run_audit(&timed_audit_cfg(cfg)).expect("bench audit runs");
        max_entries = max_entries.max(out.stats.max_entries);
        std::hint::black_box(out);
    });
    record("audit_intervals", cfg.intervals as usize, audit);

    // --- One big GC pass over a fully published bus. ---
    // Fresh fixtures outside the timed body: a compacted bus cannot be
    // compacted again, so each repeat consumes one.
    let mut fixtures: Vec<_> = (0..cfg.repeats.max(1)).map(|_| gc_fixture(cfg)).collect();
    let published = fixtures.first().map_or(0, |f| f.1);
    let mut reclaimed = 0u64;
    let gc = time_secs(cfg.repeats, || {
        if let Some((bus, _)) = fixtures.pop() {
            let report = bus.compact_before(u64::MAX).expect("bench compaction runs");
            reclaimed = report.reclaimed;
            std::hint::black_box(report);
        }
    });
    record("gc_reclaim", published as usize, gc);

    // --- Checkpoint codec at fleet-scale path counts. ---
    let cp = checkpoint_fixture(cfg);
    let bytes = cp.encode().expect("bench checkpoint encodes");
    const CODEC_ITERS: usize = 64;
    let enc = time_secs(cfg.repeats, || {
        for _ in 0..CODEC_ITERS {
            std::hint::black_box(cp.encode().expect("bench checkpoint encodes"));
        }
    });
    record("checkpoint_encode", CODEC_ITERS, enc);
    let dec = time_secs(cfg.repeats, || {
        for _ in 0..CODEC_ITERS {
            std::hint::black_box(
                AuditCheckpoint::decode(&bytes).expect("bench checkpoint decodes"),
            );
        }
    });
    record("checkpoint_restore", CODEC_ITERS, dec);

    AuditBenchReport {
        config: *cfg,
        results,
        gc_reclaimed_per_pass: reclaimed as f64,
        checkpoint_bytes: bytes.len() as f64,
        audit_max_entries: max_entries as f64,
    }
}

/// Render the report as an aligned text table.
pub fn render_table(report: &AuditBenchReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let c = &report.config;
    let _ = writeln!(
        s,
        "audit plane — {} paths × {} intervals, {} shards, gc every {}, {}-path checkpoints",
        c.paths, c.intervals, c.shards, c.gc_every, c.checkpoint_paths
    );
    let _ = writeln!(s, "{:<20} {:>14} {:>14}", "variant", "items/s", "ns/item");
    for r in &report.results {
        let _ = writeln!(
            s,
            "{:<20} {:>14.1} {:>14.1}",
            r.name, r.items_per_s, r.ns_per_item
        );
    }
    let _ = writeln!(
        s,
        "gc reclaimed per pass: {:.0} entries; peak retained during audit: {:.0}",
        report.gc_reclaimed_per_pass, report.audit_max_entries
    );
    let _ = writeln!(
        s,
        "checkpoint size at {} paths: {:.0} bytes",
        c.checkpoint_paths, report.checkpoint_bytes
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast full run: every variant present, every number sane.
    #[test]
    fn report_has_every_variant_with_sane_numbers() {
        let cfg = AuditBenchConfig {
            paths: 3,
            intervals: 32,
            shards: 4,
            gc_every: 8,
            checkpoint_paths: 64,
            repeats: 1,
        };
        let report = run(&cfg);
        let names: Vec<&str> = report.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "audit_intervals",
                "gc_reclaim",
                "checkpoint_encode",
                "checkpoint_restore"
            ]
        );
        for r in &report.results {
            assert!(r.items_per_s > 0.0, "{}: {}", r.name, r.items_per_s);
            assert!(r.ns_per_item > 0.0, "{}: {}", r.name, r.ns_per_item);
        }
        assert!(report.gc_reclaimed_per_pass > 0.0);
        assert!(report.checkpoint_bytes > 0.0);
        assert!(report.audit_max_entries > 0.0);
        let table = render_table(&report);
        assert!(table.contains("audit_intervals"));
        assert!(table.contains("checkpoint_restore"));
    }
}
