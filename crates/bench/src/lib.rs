//! Shared helpers for the VPM benchmark harness.
//!
//! Each Criterion bench in `benches/` regenerates one artifact of the
//! paper's evaluation (see DESIGN.md's experiment index): it prints the
//! table/series the paper reports and times the code path that
//! produces it.

use vpm_packet::SimDuration;
use vpm_trace::{TraceConfig, TraceGenerator, TracePacket};

pub mod audit_bench;
pub mod collector_bench;
pub mod verifier_bench;
pub mod wire_bench;

/// Standard bench trace: `ms` milliseconds at 100 kpps.
pub fn bench_trace(ms: u64, seed: u64) -> Vec<TracePacket> {
    TraceGenerator::new(TraceConfig {
        target_pps: 100_000.0,
        duration: SimDuration::from_millis(ms),
        ..TraceConfig::paper_default(1, seed)
    })
    .generate()
}

/// Print a banner separating regenerated-figure output from Criterion
/// timing noise.
pub fn banner(title: &str) {
    eprintln!("\n================================================================");
    eprintln!("  {title}");
    eprintln!("================================================================");
}
