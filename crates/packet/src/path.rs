//! Identifiers for domains, HOPs and HOP paths.
//!
//! A *domain* is an administrative entity (AS or edge network); a *HOP*
//! is a hand-off point on a domain's perimeter (paper §2). Traffic is
//! classified per *HOP path*, named by its source and destination
//! origin prefixes ([`HeaderSpec`]).

use crate::packet::Packet;
use crate::prefix::Ipv4Prefix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier for an administrative domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DomainId(pub u16);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// Identifier for a hand-off point (HOP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HopId(pub u16);

impl fmt::Display for HopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hop{}", self.0)
    }
}

/// `HeaderSpec`: which part of the headers identifies a packet's path.
///
/// Per the paper (§4) it "includes at least a source and destination
/// origin-prefix pair"; that pair is exactly what we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HeaderSpec {
    /// Origin prefix of the traffic source.
    pub src_prefix: Ipv4Prefix,
    /// Origin prefix of the traffic destination.
    pub dst_prefix: Ipv4Prefix,
}

impl HeaderSpec {
    /// Build a spec from two prefixes.
    pub fn new(src_prefix: Ipv4Prefix, dst_prefix: Ipv4Prefix) -> Self {
        HeaderSpec {
            src_prefix,
            dst_prefix,
        }
    }

    /// Does `pkt` belong to the path this spec names?
    pub fn matches(&self, pkt: &Packet) -> bool {
        self.src_prefix.contains(pkt.ipv4.src) && self.dst_prefix.contains(pkt.ipv4.dst)
    }

    /// If both prefixes are `/32`, the exact `(src, dst)` address pair
    /// this spec matches — the key an exact-match classifier index can
    /// hash on. `None` for specs with genuine prefix ranges.
    pub fn host_pair(&self) -> Option<(u32, u32)> {
        (self.src_prefix.is_host() && self.dst_prefix.is_host()).then(|| {
            (
                u32::from(self.src_prefix.network()),
                u32::from(self.dst_prefix.network()),
            )
        })
    }
}

impl fmt::Display for HeaderSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.src_prefix, self.dst_prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::{Ipv4Header, PROTO_UDP};
    use crate::transport::{Transport, UdpHeader};
    use std::net::Ipv4Addr;

    fn pkt(src: Ipv4Addr, dst: Ipv4Addr) -> Packet {
        Packet {
            seq: 0,
            ipv4: Ipv4Header::simple(src, dst, PROTO_UDP, 28),
            transport: Transport::Udp(UdpHeader {
                sport: 1,
                dport: 2,
                length: 8,
            }),
            payload_len: 0,
        }
    }

    #[test]
    fn spec_matches_prefix_pair() {
        let spec = HeaderSpec::new(
            "10.0.0.0/8".parse().unwrap(),
            "192.168.0.0/16".parse().unwrap(),
        );
        assert!(spec.matches(&pkt(
            Ipv4Addr::new(10, 9, 8, 7),
            Ipv4Addr::new(192, 168, 3, 4)
        )));
        assert!(!spec.matches(&pkt(
            Ipv4Addr::new(11, 9, 8, 7),
            Ipv4Addr::new(192, 168, 3, 4)
        )));
        assert!(!spec.matches(&pkt(
            Ipv4Addr::new(10, 9, 8, 7),
            Ipv4Addr::new(192, 169, 3, 4)
        )));
    }

    #[test]
    fn host_pair_only_for_slash_32_pairs() {
        let exact = HeaderSpec::new(
            "10.0.0.1/32".parse().unwrap(),
            "20.0.0.2/32".parse().unwrap(),
        );
        assert_eq!(
            exact.host_pair(),
            Some((
                u32::from(Ipv4Addr::new(10, 0, 0, 1)),
                u32::from(Ipv4Addr::new(20, 0, 0, 2))
            ))
        );
        let wide = HeaderSpec::new(
            "10.0.0.0/8".parse().unwrap(),
            "20.0.0.2/32".parse().unwrap(),
        );
        assert_eq!(wide.host_pair(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(DomainId(3).to_string(), "dom3");
        assert_eq!(HopId(4).to_string(), "hop4");
        let spec = HeaderSpec::new(
            "10.0.0.0/8".parse().unwrap(),
            "192.168.0.0/16".parse().unwrap(),
        );
        assert_eq!(spec.to_string(), "10.0.0.0/8->192.168.0.0/16");
    }
}
