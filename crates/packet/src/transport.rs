//! Transport headers: TCP and UDP.

use serde::{Deserialize, Serialize};
use std::fmt;

/// TCP flag bits (subset relevant to traffic modeling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG flag.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// Union of two flag sets.
    pub const fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// Does this set contain all flags in `other`?
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (TcpFlags::SYN, "S"),
            (TcpFlags::ACK, "A"),
            (TcpFlags::FIN, "F"),
            (TcpFlags::RST, "R"),
            (TcpFlags::PSH, "P"),
            (TcpFlags::URG, "U"),
        ];
        for (flag, n) in names {
            if self.contains(flag) {
                write!(f, "{n}")?;
            }
        }
        Ok(())
    }
}

/// A TCP header without options (data offset = 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TcpHeader {
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Byte length on the wire without options.
    pub const WIRE_LEN: usize = 20;
}

/// A UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UdpHeader {
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// UDP length field (header + payload).
    pub length: u16,
}

impl UdpHeader {
    /// Byte length of the UDP header on the wire.
    pub const WIRE_LEN: usize = 8;
}

/// The transport header of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transport {
    /// TCP segment header.
    Tcp(TcpHeader),
    /// UDP datagram header.
    Udp(UdpHeader),
}

impl Transport {
    /// Source port.
    pub fn sport(&self) -> u16 {
        match self {
            Transport::Tcp(t) => t.sport,
            Transport::Udp(u) => u.sport,
        }
    }

    /// Destination port.
    pub fn dport(&self) -> u16 {
        match self {
            Transport::Tcp(t) => t.dport,
            Transport::Udp(u) => u.dport,
        }
    }

    /// Wire length of the transport header in bytes.
    pub fn header_len(&self) -> usize {
        match self {
            Transport::Tcp(_) => TcpHeader::WIRE_LEN,
            Transport::Udp(_) => UdpHeader::WIRE_LEN,
        }
    }

    /// IP protocol number for this transport.
    pub fn protocol(&self) -> u8 {
        match self {
            Transport::Tcp(_) => crate::ipv4::PROTO_TCP,
            Transport::Udp(_) => crate::ipv4::PROTO_UDP,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_union_and_contains() {
        let sa = TcpFlags::SYN.union(TcpFlags::ACK);
        assert!(sa.contains(TcpFlags::SYN));
        assert!(sa.contains(TcpFlags::ACK));
        assert!(!sa.contains(TcpFlags::FIN));
        assert_eq!(sa.to_string(), "SA");
    }

    #[test]
    fn transport_accessors() {
        let t = Transport::Tcp(TcpHeader {
            sport: 1000,
            dport: 80,
            seq: 7,
            ack: 9,
            flags: TcpFlags::ACK,
            window: 65535,
        });
        assert_eq!(t.sport(), 1000);
        assert_eq!(t.dport(), 80);
        assert_eq!(t.header_len(), 20);
        assert_eq!(t.protocol(), crate::ipv4::PROTO_TCP);

        let u = Transport::Udp(UdpHeader {
            sport: 53,
            dport: 5353,
            length: 108,
        });
        assert_eq!(u.header_len(), 8);
        assert_eq!(u.protocol(), crate::ipv4::PROTO_UDP);
    }
}
