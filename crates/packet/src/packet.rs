//! The packet model and the canonical digest input.

use crate::ipv4::Ipv4Header;
use crate::transport::Transport;
use serde::{Deserialize, Serialize};
use vpm_hash::{digest_bytes, Digest, DigestSeed, DEFAULT_DIGEST_SEED};

/// A simulated packet: IPv4 + transport headers plus payload length.
///
/// Payload *content* is not modeled (VPM only hashes headers; paper §7
/// hashes "each packet's IP and transport headers"), so the payload is
/// all-zero when serialized to the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Packet {
    /// Trace sequence number assigned by the generator. Not on the wire
    /// and never used by HOPs — exists so experiments can compute ground
    /// truth (e.g. true delay of every packet).
    pub seq: u64,
    /// Network header.
    pub ipv4: Ipv4Header,
    /// Transport header.
    pub transport: Transport,
    /// Payload length in bytes.
    pub payload_len: u16,
}

/// Length of the canonical digest input in bytes.
pub const DIGEST_INPUT_LEN: usize = 24;

impl Packet {
    /// Total on-the-wire length of the packet in bytes.
    pub fn wire_len(&self) -> usize {
        Ipv4Header::WIRE_LEN + self.transport.header_len() + self.payload_len as usize
    }

    /// Canonical invariant header bytes used as digest input.
    ///
    /// Includes: src/dst addresses, protocol, IP id, total length,
    /// ports, and the TCP sequence number (or UDP length). Excludes
    /// mutable-in-flight fields (TTL, checksums, ECN bits that AQM may
    /// rewrite) so that every HOP on the path computes the same digest.
    pub fn digest_input(&self) -> [u8; DIGEST_INPUT_LEN] {
        let mut buf = [0u8; DIGEST_INPUT_LEN];
        buf[0..4].copy_from_slice(&self.ipv4.src.octets());
        buf[4..8].copy_from_slice(&self.ipv4.dst.octets());
        buf[8] = self.ipv4.protocol;
        buf[9..11].copy_from_slice(&self.ipv4.id.to_be_bytes());
        buf[11..13].copy_from_slice(&self.ipv4.total_len.to_be_bytes());
        buf[13..15].copy_from_slice(&self.transport.sport().to_be_bytes());
        buf[15..17].copy_from_slice(&self.transport.dport().to_be_bytes());
        match &self.transport {
            Transport::Tcp(t) => {
                buf[17..21].copy_from_slice(&t.seq.to_be_bytes());
                buf[21..25.min(DIGEST_INPUT_LEN)].copy_from_slice(&t.ack.to_be_bytes()[..3]);
            }
            Transport::Udp(u) => {
                buf[17..19].copy_from_slice(&u.length.to_be_bytes());
                // bytes 19..24 stay zero
            }
        }
        buf
    }

    /// The packet's `PktID` digest with an explicit seed.
    pub fn digest_with(&self, seed: DigestSeed) -> Digest {
        digest_bytes(&self.digest_input(), seed)
    }

    /// The packet's `PktID` digest with the system-wide default seed.
    pub fn digest(&self) -> Digest {
        self.digest_with(DEFAULT_DIGEST_SEED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::PROTO_TCP;
    use crate::transport::{TcpFlags, TcpHeader, UdpHeader};
    use std::net::Ipv4Addr;

    fn tcp_packet(id: u16, seq: u32) -> Packet {
        Packet {
            seq: 0,
            ipv4: {
                let mut h = Ipv4Header::simple(
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(192, 168, 1, 1),
                    PROTO_TCP,
                    40,
                );
                h.id = id;
                h
            },
            transport: Transport::Tcp(TcpHeader {
                sport: 33000,
                dport: 443,
                seq,
                ack: 0,
                flags: TcpFlags::ACK,
                window: 65535,
            }),
            payload_len: 0,
        }
    }

    #[test]
    fn wire_len_adds_up() {
        let mut p = tcp_packet(1, 2);
        p.payload_len = 100;
        assert_eq!(p.wire_len(), 20 + 20 + 100);
    }

    #[test]
    fn digest_invariant_under_ttl_change() {
        let p = tcp_packet(5, 77);
        let mut q = p;
        q.ipv4.ttl = 3; // router decremented TTL
        assert_eq!(p.digest(), q.digest());
    }

    #[test]
    fn digest_sensitive_to_ip_id_and_seq() {
        let p = tcp_packet(5, 77);
        assert_ne!(p.digest(), tcp_packet(6, 77).digest());
        assert_ne!(p.digest(), tcp_packet(5, 78).digest());
    }

    #[test]
    fn digest_distinguishes_udp_and_tcp() {
        let tcp = tcp_packet(1, 1);
        let udp = Packet {
            seq: 0,
            ipv4: {
                let mut h = tcp.ipv4;
                h.protocol = crate::ipv4::PROTO_UDP;
                h
            },
            transport: Transport::Udp(UdpHeader {
                sport: 33000,
                dport: 443,
                length: 8,
            }),
            payload_len: 0,
        };
        assert_ne!(tcp.digest(), udp.digest());
    }

    #[test]
    fn trace_seq_not_in_digest() {
        let p = tcp_packet(9, 9);
        let mut q = p;
        q.seq = 123456;
        assert_eq!(p.digest(), q.digest());
    }
}
