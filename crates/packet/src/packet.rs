//! The packet model and the canonical digest input.

use crate::ipv4::Ipv4Header;
use crate::transport::Transport;
use serde::{Deserialize, Serialize};
use vpm_hash::{digest_bytes, Digest, DigestSeed, DEFAULT_DIGEST_SEED};

/// A simulated packet: IPv4 + transport headers plus payload length.
///
/// Payload *content* is not modeled (VPM only hashes headers; paper §7
/// hashes "each packet's IP and transport headers"), so the payload is
/// all-zero when serialized to the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Packet {
    /// Trace sequence number assigned by the generator. Not on the wire
    /// and never used by HOPs — exists so experiments can compute ground
    /// truth (e.g. true delay of every packet).
    pub seq: u64,
    /// Network header.
    pub ipv4: Ipv4Header,
    /// Transport header.
    pub transport: Transport,
    /// Payload length in bytes.
    pub payload_len: u16,
}

/// Length of the canonical digest input in bytes.
pub const DIGEST_INPUT_LEN: usize = 24;

/// Length of the canonical digest input in 32-bit words.
pub const DIGEST_INPUT_WORDS: usize = DIGEST_INPUT_LEN / 4;

impl Packet {
    /// Total on-the-wire length of the packet in bytes.
    pub fn wire_len(&self) -> usize {
        Ipv4Header::WIRE_LEN + self.transport.header_len() + self.payload_len as usize
    }

    /// Canonical invariant header bytes used as digest input.
    ///
    /// Includes: src/dst addresses, protocol, IP id, total length,
    /// ports, and the TCP sequence number (or UDP length). Excludes
    /// mutable-in-flight fields (TTL, checksums, ECN bits that AQM may
    /// rewrite) so that every HOP on the path computes the same digest.
    pub fn digest_input(&self) -> [u8; DIGEST_INPUT_LEN] {
        let mut buf = [0u8; DIGEST_INPUT_LEN];
        buf[0..4].copy_from_slice(&self.ipv4.src.octets());
        buf[4..8].copy_from_slice(&self.ipv4.dst.octets());
        buf[8] = self.ipv4.protocol;
        buf[9..11].copy_from_slice(&self.ipv4.id.to_be_bytes());
        buf[11..13].copy_from_slice(&self.ipv4.total_len.to_be_bytes());
        buf[13..15].copy_from_slice(&self.transport.sport().to_be_bytes());
        buf[15..17].copy_from_slice(&self.transport.dport().to_be_bytes());
        match &self.transport {
            Transport::Tcp(t) => {
                buf[17..21].copy_from_slice(&t.seq.to_be_bytes());
                buf[21..25.min(DIGEST_INPUT_LEN)].copy_from_slice(&t.ack.to_be_bytes()[..3]);
            }
            Transport::Udp(u) => {
                buf[17..19].copy_from_slice(&u.length.to_be_bytes());
                // bytes 19..24 stay zero
            }
        }
        buf
    }

    /// Canonical digest input as little-endian 32-bit words — the block
    /// format consumed by the word-oriented lookup3 fast path
    /// (`vpm_hash::digest_words` / `digest_batch`).
    pub fn digest_words(&self) -> [u32; DIGEST_INPUT_WORDS] {
        let bytes = self.digest_input();
        let mut words = [0u32; DIGEST_INPUT_WORDS];
        for (w, chunk) in words.iter_mut().zip(bytes.chunks_exact(4)) {
            *w = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        words
    }

    /// The packet's `PktID` digest with an explicit seed.
    pub fn digest_with(&self, seed: DigestSeed) -> Digest {
        digest_bytes(&self.digest_input(), seed)
    }

    /// The packet's `PktID` digest with the system-wide default seed.
    pub fn digest(&self) -> Digest {
        self.digest_with(DEFAULT_DIGEST_SEED)
    }
}

/// Digest a stream of packets in one pass (word-block assembly plus
/// `vpm_hash::digest_batch`). Produces exactly the digests that
/// [`Packet::digest_with`] would compute per packet.
pub fn digest_packets<'a, I>(packets: I, seed: DigestSeed) -> Vec<Digest>
where
    I: IntoIterator<Item = &'a Packet>,
{
    let blocks: Vec<[u32; DIGEST_INPUT_WORDS]> =
        packets.into_iter().map(|p| p.digest_words()).collect();
    let mut out = Vec::new();
    vpm_hash::digest_batch(&blocks, seed, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::PROTO_TCP;
    use crate::transport::{TcpFlags, TcpHeader, UdpHeader};
    use std::net::Ipv4Addr;

    fn tcp_packet(id: u16, seq: u32) -> Packet {
        Packet {
            seq: 0,
            ipv4: {
                let mut h = Ipv4Header::simple(
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(192, 168, 1, 1),
                    PROTO_TCP,
                    40,
                );
                h.id = id;
                h
            },
            transport: Transport::Tcp(TcpHeader {
                sport: 33000,
                dport: 443,
                seq,
                ack: 0,
                flags: TcpFlags::ACK,
                window: 65535,
            }),
            payload_len: 0,
        }
    }

    #[test]
    fn wire_len_adds_up() {
        let mut p = tcp_packet(1, 2);
        p.payload_len = 100;
        assert_eq!(p.wire_len(), 20 + 20 + 100);
    }

    #[test]
    fn digest_invariant_under_ttl_change() {
        let p = tcp_packet(5, 77);
        let mut q = p;
        q.ipv4.ttl = 3; // router decremented TTL
        assert_eq!(p.digest(), q.digest());
    }

    #[test]
    fn digest_sensitive_to_ip_id_and_seq() {
        let p = tcp_packet(5, 77);
        assert_ne!(p.digest(), tcp_packet(6, 77).digest());
        assert_ne!(p.digest(), tcp_packet(5, 78).digest());
    }

    #[test]
    fn digest_distinguishes_udp_and_tcp() {
        let tcp = tcp_packet(1, 1);
        let udp = Packet {
            seq: 0,
            ipv4: {
                let mut h = tcp.ipv4;
                h.protocol = crate::ipv4::PROTO_UDP;
                h
            },
            transport: Transport::Udp(UdpHeader {
                sport: 33000,
                dport: 443,
                length: 8,
            }),
            payload_len: 0,
        };
        assert_ne!(tcp.digest(), udp.digest());
    }

    #[test]
    fn word_digest_path_matches_byte_path() {
        use vpm_hash::{digest_words, DigestSeed};
        for (id, seq) in [(0u16, 0u32), (1, 2), (999, 12345), (u16::MAX, u32::MAX)] {
            let p = tcp_packet(id, seq);
            assert_eq!(
                digest_words(&p.digest_words(), DEFAULT_DIGEST_SEED),
                p.digest()
            );
            let odd_seed = DigestSeed(0xdead_beef_1234_5678);
            assert_eq!(
                digest_words(&p.digest_words(), odd_seed),
                p.digest_with(odd_seed)
            );
        }
    }

    #[test]
    fn digest_packets_matches_per_packet() {
        let pkts: Vec<Packet> = (0..64).map(|i| tcp_packet(i as u16, i * 7)).collect();
        let batch = digest_packets(&pkts, DEFAULT_DIGEST_SEED);
        assert_eq!(batch.len(), pkts.len());
        for (p, d) in pkts.iter().zip(&batch) {
            assert_eq!(*d, p.digest());
        }
    }

    #[test]
    fn trace_seq_not_in_digest() {
        let p = tcp_packet(9, 9);
        let mut q = p;
        q.seq = 123456;
        assert_eq!(p.digest(), q.digest());
    }
}
