//! IPv4 origin prefixes.
//!
//! VPM names HOP paths by their source and destination *origin
//! prefixes* — the prefixes a BGP speaker would see as the origin of
//! the traffic (paper §2). A prefix is a network address plus a length.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 CIDR prefix, e.g. `10.1.0.0/16`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    /// Network address with host bits zeroed.
    addr: u32,
    /// Prefix length in bits, `0..=32`.
    len: u8,
}

/// Errors arising when parsing or constructing prefixes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// Prefix length was greater than 32.
    BadLength(u8),
    /// The textual form could not be parsed.
    BadFormat(String),
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::BadLength(l) => write!(f, "prefix length {l} > 32"),
            PrefixError::BadFormat(s) => write!(f, "malformed prefix: {s:?}"),
        }
    }
}

impl std::error::Error for PrefixError {}

impl Ipv4Prefix {
    /// Construct a prefix; host bits of `addr` are masked off.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self, PrefixError> {
        if len > 32 {
            return Err(PrefixError::BadLength(len));
        }
        let raw = u32::from(addr);
        Ok(Ipv4Prefix {
            addr: raw & Self::mask(len),
            len,
        })
    }

    /// The `/0` prefix matching everything.
    pub const ANY: Ipv4Prefix = Ipv4Prefix { addr: 0, len: 0 };

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len as u32)
        }
    }

    /// Network address of the prefix.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// `true` only for the `/0` prefix (clippy-conventional companion
    /// to `len`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` for a `/32` prefix naming exactly one host.
    pub fn is_host(&self) -> bool {
        self.len == 32
    }

    /// Number of addresses covered by the prefix.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len as u32)
    }

    /// Does the prefix contain `ip`?
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) & Self::mask(self.len)) == self.addr
    }

    /// Is `other` fully contained within `self`?
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        self.len <= other.len && (other.addr & Self::mask(self.len)) == self.addr
    }

    /// The `idx`-th host address inside the prefix (wrapping modulo the
    /// prefix size). Deterministic helper used by the trace generator.
    pub fn nth_host(&self, idx: u64) -> Ipv4Addr {
        let off = (idx % self.size()) as u32;
        Ipv4Addr::from(self.addr | off)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ip, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixError::BadFormat(s.to_string()))?;
        let ip: Ipv4Addr = ip
            .parse()
            .map_err(|_| PrefixError::BadFormat(s.to_string()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| PrefixError::BadFormat(s.to_string()))?;
        Ipv4Prefix::new(ip, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_host_bits() {
        let p = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 16).unwrap();
        assert_eq!(p.network(), Ipv4Addr::new(10, 1, 0, 0));
        assert_eq!(p.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn parse_roundtrip() {
        let p: Ipv4Prefix = "192.168.4.0/22".parse().unwrap();
        assert_eq!(p.network(), Ipv4Addr::new(192, 168, 4, 0));
        assert_eq!(p.len(), 22);
        assert_eq!(p.to_string().parse::<Ipv4Prefix>().unwrap(), p);
    }

    #[test]
    fn parse_errors() {
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("hello/8".parse::<Ipv4Prefix>().is_err());
        assert!(Ipv4Prefix::new(Ipv4Addr::new(1, 2, 3, 4), 40).is_err());
    }

    #[test]
    fn contains_and_covers() {
        let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let q: Ipv4Prefix = "10.20.0.0/16".parse().unwrap();
        assert!(p.contains(Ipv4Addr::new(10, 255, 0, 1)));
        assert!(!p.contains(Ipv4Addr::new(11, 0, 0, 1)));
        assert!(p.covers(&q));
        assert!(!q.covers(&p));
        assert!(Ipv4Prefix::ANY.covers(&p));
        assert!(Ipv4Prefix::ANY.contains(Ipv4Addr::new(8, 8, 8, 8)));
    }

    #[test]
    fn nth_host_wraps_within_prefix() {
        let p: Ipv4Prefix = "10.1.0.0/24".parse().unwrap();
        assert_eq!(p.size(), 256);
        for idx in [0u64, 1, 255, 256, 1000] {
            assert!(p.contains(p.nth_host(idx)), "idx {idx}");
        }
        assert_eq!(p.nth_host(256), p.nth_host(0));
    }

    #[test]
    fn slash_zero_and_slash_32() {
        let all = Ipv4Prefix::ANY;
        assert!(all.is_empty());
        assert_eq!(all.size(), 1 << 32);
        let host: Ipv4Prefix = "1.2.3.4/32".parse().unwrap();
        assert_eq!(host.size(), 1);
        assert!(host.contains(Ipv4Addr::new(1, 2, 3, 4)));
        assert!(!host.contains(Ipv4Addr::new(1, 2, 3, 5)));
    }
}
