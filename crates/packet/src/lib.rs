//! Packet substrate for VPM.
//!
//! This crate models the traffic that VPM HOPs observe: IPv4 packets
//! with TCP or UDP transport headers, the origin prefixes that name HOP
//! paths (paper §2), and simulation time. It also provides a real wire
//! codec (serialization + internet checksums) so traces can be exported
//! and re-parsed, and the canonical *digest input* — the invariant
//! header bytes that every HOP hashes to obtain the packet's `PktID`
//! (paper §4, §7: "applies it to each packet's IP and transport
//! headers").
//!
//! Design notes:
//! * Mutable-in-flight fields (TTL, IP checksum) are excluded from the
//!   digest input so all HOPs on a path compute identical digests.
//! * [`time::SimTime`] is a nanosecond counter; HOP clocks (which add
//!   skew and drift on top) live in `vpm-netsim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ipv4;
pub mod packet;
pub mod path;
pub mod prefix;
pub mod time;
pub mod transport;
pub mod wire;

pub use ipv4::Ipv4Header;
pub use packet::{digest_packets, Packet, DIGEST_INPUT_WORDS};
pub use path::{DomainId, HeaderSpec, HopId};
pub use prefix::Ipv4Prefix;
pub use time::{SimDuration, SimTime};
pub use transport::{TcpFlags, TcpHeader, Transport, UdpHeader};
pub use wire::WireError;
