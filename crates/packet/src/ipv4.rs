//! IPv4 header model (without options).

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// IP protocol number for TCP.
pub const PROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;

/// An IPv4 header without options (IHL = 5).
///
/// `total_len` covers the IP header, the transport header and the
/// payload, exactly as on the wire. The checksum is not stored; it is
/// computed on serialization and validated on parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// Differentiated services code point (6 bits used).
    pub dscp: u8,
    /// Explicit congestion notification (2 bits used).
    pub ecn: u8,
    /// Total datagram length in bytes (header + transport + payload).
    pub total_len: u16,
    /// Identification field; our generators increment it per flow, which
    /// also keeps packet digests distinct within a flow.
    pub id: u16,
    /// Don't-fragment flag.
    pub dont_frag: bool,
    /// More-fragments flag.
    pub more_frags: bool,
    /// Fragment offset in 8-byte units (13 bits used).
    pub frag_offset: u16,
    /// Time to live. Mutable in flight — excluded from packet digests.
    pub ttl: u8,
    /// Transport protocol number ([`PROTO_TCP`] or [`PROTO_UDP`] here).
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Byte length of this header on the wire (no options ⇒ 20).
    pub const WIRE_LEN: usize = 20;

    /// A plain unicast header with common defaults.
    pub fn simple(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, total_len: u16) -> Self {
        Ipv4Header {
            dscp: 0,
            ecn: 0,
            total_len,
            id: 0,
            dont_frag: true,
            more_frags: false,
            frag_offset: 0,
            ttl: 64,
            protocol,
            src,
            dst,
        }
    }
}

impl Default for Ipv4Header {
    fn default() -> Self {
        Ipv4Header::simple(
            Ipv4Addr::UNSPECIFIED,
            Ipv4Addr::UNSPECIFIED,
            PROTO_UDP,
            Ipv4Header::WIRE_LEN as u16 + 8,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_defaults() {
        let h = Ipv4Header::simple(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            PROTO_TCP,
            40,
        );
        assert_eq!(h.ttl, 64);
        assert!(h.dont_frag);
        assert_eq!(h.protocol, PROTO_TCP);
        assert_eq!(h.total_len, 40);
    }
}
