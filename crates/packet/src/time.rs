//! Simulation time.
//!
//! All VPM timestamps (`Time` fields of sample records, `MaxDiff`
//! bounds, reordering windows `J`) are nanosecond quantities. We use a
//! dedicated newtype rather than `std::time::Duration` so that receipts
//! serialize compactly and arithmetic stays explicit.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation timeline, in nanoseconds from t=0.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulation time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of the simulation timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }
    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Nanoseconds since t=0.
    pub fn as_nanos(self) -> u64 {
        self.0
    }
    /// Seconds since t=0 as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Saturating difference `self - earlier` (0 if `earlier` is later).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
    /// Signed difference `self - other` in nanoseconds. Useful when
    /// clock skew can make "later" timestamps smaller.
    pub fn signed_delta(self, other: SimTime) -> i64 {
        self.0 as i64 - other.0 as i64
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    /// Construct from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    /// Construct from fractional seconds (rounds to nanoseconds,
    /// clamping negatives to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }
    /// Span in nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }
    /// Span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Multiply by an integer factor (saturating).
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(5) + SimDuration::from_millis(3);
        assert_eq!(t, SimTime::from_millis(8));
        assert_eq!(t - SimTime::from_millis(6), SimDuration::from_millis(2));
        // saturating: earlier - later = 0
        assert_eq!(
            SimTime::from_millis(1) - SimTime::from_millis(9),
            SimDuration::ZERO
        );
    }

    #[test]
    fn signed_delta_is_signed() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.signed_delta(b), -1_000_000);
        assert_eq!(b.signed_delta(a), 1_000_000);
    }

    #[test]
    fn float_roundtrip() {
        let d = SimDuration::from_secs_f64(0.0123);
        assert!((d.as_secs_f64() - 0.0123).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_nanos(15)), "15ns");
    }
}
