//! Wire codec: serialize packets to bytes and parse them back.
//!
//! Used for trace export and for validating that the packet model is a
//! real packet model (checksums included) rather than an opaque struct.
//! Payload bytes are all-zero on the wire (VPM never inspects payloads;
//! see `vpm-packet::Packet`).

use crate::ipv4::{Ipv4Header, PROTO_TCP, PROTO_UDP};
use crate::packet::Packet;
use crate::transport::{TcpFlags, TcpHeader, Transport, UdpHeader};
use bytes::{BufMut, BytesMut};
use std::fmt;
use std::net::Ipv4Addr;

/// Errors produced when parsing wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the smallest valid packet.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// IP version field was not 4.
    BadVersion(u8),
    /// IHL field below 5 or options present (unsupported).
    BadIhl(u8),
    /// Header checksum mismatch.
    BadChecksum {
        /// Checksum found in the header.
        expected: u16,
        /// Checksum computed over the header bytes.
        computed: u16,
    },
    /// Transport protocol is neither TCP nor UDP.
    UnsupportedProtocol(u8),
    /// `total_len` disagrees with the buffer contents.
    LengthMismatch {
        /// Value of the `total_len` field.
        header: u16,
        /// Actual available bytes.
        actual: usize,
    },
    /// TCP data offset other than 5 (options are unsupported).
    BadDataOffset(u8),
    /// Transport (TCP/UDP) checksum mismatch.
    BadTransportChecksum {
        /// Checksum found in the header.
        expected: u16,
        /// Checksum computed over header + pseudo-header + zero payload.
        computed: u16,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated packet: need {needed} bytes, got {got}")
            }
            WireError::BadVersion(v) => write!(f, "bad IP version {v}"),
            WireError::BadIhl(i) => write!(f, "unsupported IHL {i}"),
            WireError::BadChecksum { expected, computed } => {
                write!(
                    f,
                    "checksum mismatch: header {expected:#06x}, computed {computed:#06x}"
                )
            }
            WireError::UnsupportedProtocol(p) => write!(f, "unsupported protocol {p}"),
            WireError::LengthMismatch { header, actual } => {
                write!(f, "total_len {header} but buffer holds {actual}")
            }
            WireError::BadDataOffset(o) => write!(f, "unsupported TCP data offset {o}"),
            WireError::BadTransportChecksum { expected, computed } => write!(
                f,
                "transport checksum mismatch: header {expected:#06x}, computed {computed:#06x}"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// RFC 1071 internet checksum over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

fn checksum_with_pseudo_header(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: u8,
    segment: &[u8],
    zero_payload_len: usize,
) -> u16 {
    // Pseudo-header + segment + implicit all-zero payload. Zero bytes
    // contribute nothing to the sum except via the length field, so we
    // only need to sum the pseudo-header and the real header bytes —
    // unless the zero payload has odd length, which it contributes
    // nothing for either. The length in the pseudo-header must still
    // count the payload.
    let seg_len = segment.len() + zero_payload_len;
    let mut buf = Vec::with_capacity(12 + segment.len() + (seg_len & 1));
    buf.extend_from_slice(&src.octets());
    buf.extend_from_slice(&dst.octets());
    buf.push(0);
    buf.push(protocol);
    buf.extend_from_slice(&(seg_len as u16).to_be_bytes());
    buf.extend_from_slice(segment);
    internet_checksum(&buf)
}

/// Serialize `pkt` to wire bytes (headers with valid checksums followed
/// by an all-zero payload).
pub fn encode(pkt: &Packet) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(pkt.wire_len());
    let ip = &pkt.ipv4;

    // --- IPv4 header ---
    buf.put_u8(0x45); // version 4, IHL 5
    buf.put_u8((ip.dscp << 2) | (ip.ecn & 0x3));
    buf.put_u16(ip.total_len);
    buf.put_u16(ip.id);
    let mut frag: u16 = ip.frag_offset & 0x1fff;
    if ip.dont_frag {
        frag |= 0x4000;
    }
    if ip.more_frags {
        frag |= 0x2000;
    }
    buf.put_u16(frag);
    buf.put_u8(ip.ttl);
    buf.put_u8(ip.protocol);
    buf.put_u16(0); // checksum placeholder
    buf.put_slice(&ip.src.octets());
    buf.put_slice(&ip.dst.octets());
    let csum = internet_checksum(&buf[0..20]);
    buf[10..12].copy_from_slice(&csum.to_be_bytes());

    // --- transport header ---
    match &pkt.transport {
        Transport::Tcp(t) => {
            let start = buf.len();
            buf.put_u16(t.sport);
            buf.put_u16(t.dport);
            buf.put_u32(t.seq);
            buf.put_u32(t.ack);
            buf.put_u8(5 << 4); // data offset 5, reserved 0
            buf.put_u8(t.flags.0);
            buf.put_u16(t.window);
            buf.put_u16(0); // checksum placeholder
            buf.put_u16(0); // urgent pointer
            let csum = checksum_with_pseudo_header(
                ip.src,
                ip.dst,
                PROTO_TCP,
                &buf[start..],
                pkt.payload_len as usize,
            );
            let at = start + 16;
            buf[at..at + 2].copy_from_slice(&csum.to_be_bytes());
        }
        Transport::Udp(u) => {
            let start = buf.len();
            buf.put_u16(u.sport);
            buf.put_u16(u.dport);
            buf.put_u16(u.length);
            buf.put_u16(0); // checksum placeholder
            let csum = checksum_with_pseudo_header(
                ip.src,
                ip.dst,
                PROTO_UDP,
                &buf[start..],
                pkt.payload_len as usize,
            );
            // UDP checksum of 0 means "no checksum"; RFC mandates 0xffff instead.
            let csum = if csum == 0 { 0xffff } else { csum };
            let at = start + 6;
            buf[at..at + 2].copy_from_slice(&csum.to_be_bytes());
        }
    }

    buf.resize(pkt.wire_len(), 0); // zero payload
    buf.to_vec()
}

/// Parse wire bytes back into a [`Packet`]. Validates version, IHL,
/// checksums and length consistency. The trace `seq` is set to 0.
pub fn decode(bytes: &[u8]) -> Result<Packet, WireError> {
    if bytes.len() < Ipv4Header::WIRE_LEN {
        return Err(WireError::Truncated {
            needed: Ipv4Header::WIRE_LEN,
            got: bytes.len(),
        });
    }
    let version = bytes[0] >> 4;
    if version != 4 {
        return Err(WireError::BadVersion(version));
    }
    let ihl = bytes[0] & 0x0f;
    if ihl != 5 {
        return Err(WireError::BadIhl(ihl));
    }
    let expected = u16::from_be_bytes([bytes[10], bytes[11]]);
    let mut hdr = [0u8; 20];
    hdr.copy_from_slice(&bytes[..20]);
    hdr[10] = 0;
    hdr[11] = 0;
    let computed = internet_checksum(&hdr);
    if computed != expected {
        return Err(WireError::BadChecksum { expected, computed });
    }

    let total_len = u16::from_be_bytes([bytes[2], bytes[3]]);
    if total_len as usize > bytes.len() || (total_len as usize) < Ipv4Header::WIRE_LEN {
        return Err(WireError::LengthMismatch {
            header: total_len,
            actual: bytes.len(),
        });
    }
    let frag = u16::from_be_bytes([bytes[6], bytes[7]]);
    let protocol = bytes[9];
    let ipv4 = Ipv4Header {
        dscp: bytes[1] >> 2,
        ecn: bytes[1] & 0x3,
        total_len,
        id: u16::from_be_bytes([bytes[4], bytes[5]]),
        dont_frag: frag & 0x4000 != 0,
        more_frags: frag & 0x2000 != 0,
        frag_offset: frag & 0x1fff,
        ttl: bytes[8],
        protocol,
        src: Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]),
        dst: Ipv4Addr::new(bytes[16], bytes[17], bytes[18], bytes[19]),
    };

    let rest = &bytes[20..total_len as usize];
    let (transport, thl) = match protocol {
        PROTO_TCP => {
            if rest.len() < TcpHeader::WIRE_LEN {
                return Err(WireError::Truncated {
                    needed: 20 + TcpHeader::WIRE_LEN,
                    got: bytes.len(),
                });
            }
            let data_offset = rest[12] >> 4;
            if data_offset != 5 {
                return Err(WireError::BadDataOffset(data_offset));
            }
            // Validate the TCP checksum. Payload bytes are all-zero in
            // this model, so they contribute only via the pseudo-header
            // length — the same convention `encode` uses.
            let payload = total_len as usize - 20 - TcpHeader::WIRE_LEN;
            let stored = u16::from_be_bytes([rest[16], rest[17]]);
            let mut seg = rest[..TcpHeader::WIRE_LEN].to_vec();
            seg[16] = 0;
            seg[17] = 0;
            let computed =
                checksum_with_pseudo_header(ipv4.src, ipv4.dst, PROTO_TCP, &seg, payload);
            if computed != stored {
                return Err(WireError::BadTransportChecksum {
                    expected: stored,
                    computed,
                });
            }
            (
                Transport::Tcp(TcpHeader {
                    sport: u16::from_be_bytes([rest[0], rest[1]]),
                    dport: u16::from_be_bytes([rest[2], rest[3]]),
                    seq: u32::from_be_bytes([rest[4], rest[5], rest[6], rest[7]]),
                    ack: u32::from_be_bytes([rest[8], rest[9], rest[10], rest[11]]),
                    flags: TcpFlags(rest[13]),
                    window: u16::from_be_bytes([rest[14], rest[15]]),
                }),
                TcpHeader::WIRE_LEN,
            )
        }
        PROTO_UDP => {
            if rest.len() < UdpHeader::WIRE_LEN {
                return Err(WireError::Truncated {
                    needed: 20 + UdpHeader::WIRE_LEN,
                    got: bytes.len(),
                });
            }
            // Validate the UDP checksum. `encode` maps a computed 0 to
            // 0xffff per RFC 768; this strict decoder never accepts the
            // "no checksum" sentinel (we never emit it).
            let payload = total_len as usize - 20 - UdpHeader::WIRE_LEN;
            let stored = u16::from_be_bytes([rest[6], rest[7]]);
            let mut seg = rest[..UdpHeader::WIRE_LEN].to_vec();
            seg[6] = 0;
            seg[7] = 0;
            let computed =
                checksum_with_pseudo_header(ipv4.src, ipv4.dst, PROTO_UDP, &seg, payload);
            let computed = if computed == 0 { 0xffff } else { computed };
            if computed != stored {
                return Err(WireError::BadTransportChecksum {
                    expected: stored,
                    computed,
                });
            }
            (
                Transport::Udp(UdpHeader {
                    sport: u16::from_be_bytes([rest[0], rest[1]]),
                    dport: u16::from_be_bytes([rest[2], rest[3]]),
                    length: u16::from_be_bytes([rest[4], rest[5]]),
                }),
                UdpHeader::WIRE_LEN,
            )
        }
        other => return Err(WireError::UnsupportedProtocol(other)),
    };

    Ok(Packet {
        seq: 0,
        ipv4,
        transport,
        payload_len: (total_len as usize - 20 - thl) as u16,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_tcp() -> Packet {
        Packet {
            seq: 0,
            ipv4: {
                let mut h = Ipv4Header::simple(
                    Ipv4Addr::new(10, 1, 2, 3),
                    Ipv4Addr::new(172, 16, 0, 9),
                    PROTO_TCP,
                    (20 + 20 + 100) as u16,
                );
                h.id = 0xbeef;
                h.ttl = 57;
                h
            },
            transport: Transport::Tcp(TcpHeader {
                sport: 50000,
                dport: 443,
                seq: 0x01020304,
                ack: 0x0a0b0c0d,
                flags: TcpFlags::ACK.union(TcpFlags::PSH),
                window: 4096,
            }),
            payload_len: 100,
        }
    }

    fn sample_udp() -> Packet {
        Packet {
            seq: 0,
            ipv4: Ipv4Header::simple(
                Ipv4Addr::new(192, 168, 0, 1),
                Ipv4Addr::new(8, 8, 8, 8),
                PROTO_UDP,
                20 + 8 + 31,
            ),
            transport: Transport::Udp(UdpHeader {
                sport: 5353,
                dport: 53,
                length: 8 + 31,
            }),
            payload_len: 31,
        }
    }

    #[test]
    fn tcp_roundtrip() {
        let p = sample_tcp();
        let bytes = encode(&p);
        assert_eq!(bytes.len(), p.wire_len());
        let q = decode(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn udp_roundtrip() {
        let p = sample_udp();
        let q = decode(&encode(&p)).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut bytes = encode(&sample_tcp());
        bytes[15] ^= 0xff; // flip a source-address byte
        match decode(&bytes) {
            Err(WireError::BadChecksum { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn transport_checksum_detects_corruption() {
        // Flip a TCP sequence-number byte: IP checksum still valid, TCP
        // checksum must catch it.
        let mut bytes = encode(&sample_tcp());
        bytes[24] ^= 0x01;
        assert!(matches!(
            decode(&bytes),
            Err(WireError::BadTransportChecksum { .. })
        ));
        // Same for a UDP port byte.
        let mut bytes = encode(&sample_udp());
        bytes[21] ^= 0x80;
        assert!(matches!(
            decode(&bytes),
            Err(WireError::BadTransportChecksum { .. })
        ));
    }

    #[test]
    fn rejects_tcp_options() {
        let mut bytes = encode(&sample_tcp());
        bytes[32] = 6 << 4; // data offset 6 ⇒ options present
        assert!(matches!(decode(&bytes), Err(WireError::BadDataOffset(6))));
    }

    #[test]
    fn tiny_total_len_is_rejected_not_a_panic() {
        let mut bytes = encode(&sample_udp());
        bytes[2] = 0;
        bytes[3] = 8; // total_len = 8 < IP header
                      // Fix up the IP checksum so the length check is what fires.
        bytes[10] = 0;
        bytes[11] = 0;
        let csum = internet_checksum(&bytes[0..20]);
        bytes[10..12].copy_from_slice(&csum.to_be_bytes());
        assert!(matches!(
            decode(&bytes),
            Err(WireError::LengthMismatch { header: 8, .. })
        ));
    }

    #[test]
    fn rejects_bad_version_and_ihl() {
        let mut bytes = encode(&sample_udp());
        bytes[0] = 0x65; // version 6
        assert!(matches!(decode(&bytes), Err(WireError::BadVersion(6))));
        let mut bytes = encode(&sample_udp());
        bytes[0] = 0x46; // IHL 6 (options)
        assert!(matches!(decode(&bytes), Err(WireError::BadIhl(6))));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode(&sample_tcp());
        assert!(matches!(
            decode(&bytes[..10]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn rfc1071_vector() {
        // Classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }

    #[test]
    fn digest_survives_wire_roundtrip() {
        for p in [sample_tcp(), sample_udp()] {
            let q = decode(&encode(&p)).unwrap();
            assert_eq!(p.digest(), q.digest());
        }
    }

    proptest! {
        /// The decoder must never panic, whatever bytes arrive.
        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
            let _ = decode(&bytes);
        }

        /// Flipping any single *header* byte of a valid packet either
        /// fails cleanly or produces a different packet — never panics,
        /// never silently yields the original. (Payload bytes are
        /// exempt: payload content is unmodeled and all-zero.)
        #[test]
        fn single_byte_corruption_detected_or_differs(
            idx in 0usize..40, // 20 B IPv4 + 20 B TCP headers
            flip in 1u8..=255,
        ) {
            let p = sample_tcp();
            let mut bytes = encode(&p);
            bytes[idx] ^= flip;
            if let Ok(q) = decode(&bytes) {
                prop_assert_ne!(p, q); // not rejected, so it must differ
            }
        }

        #[test]
        fn roundtrip_arbitrary_headers(
            src in any::<u32>(),
            dst in any::<u32>(),
            id in any::<u16>(),
            sport in any::<u16>(),
            dport in any::<u16>(),
            seqn in any::<u32>(),
            payload in 0u16..1400,
            is_tcp in any::<bool>(),
        ) {
            let (transport, thl) = if is_tcp {
                (Transport::Tcp(TcpHeader {
                    sport, dport, seq: seqn, ack: 0,
                    flags: TcpFlags::ACK, window: 1024,
                }), 20u16)
            } else {
                (Transport::Udp(UdpHeader {
                    sport, dport, length: 8 + payload,
                }), 8u16)
            };
            let mut ip = Ipv4Header::simple(
                Ipv4Addr::from(src),
                Ipv4Addr::from(dst),
                transport.protocol(),
                20 + thl + payload,
            );
            ip.id = id;
            let p = Packet { seq: 0, ipv4: ip, transport, payload_len: payload };
            let q = decode(&encode(&p)).unwrap();
            prop_assert_eq!(p, q);
        }
    }
}
