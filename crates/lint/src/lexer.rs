//! A minimal Rust lexer for `vpm-lint`.
//!
//! This is deliberately *not* a full Rust front end: the analyzer only
//! needs a token stream with comments and string contents stripped,
//! line numbers, brace-depth scopes, and enough item tracking to tell
//! test code (`#[cfg(test)]` items, `#[test]` functions, `mod tests`)
//! from product code. No crates.io dependency (proc-macro2/syn) could
//! be vendored under the repo's offline shim policy, and none is
//! needed for the rule set: every rule matches short token sequences,
//! not types.
//!
//! Guarantees the rules rely on:
//!
//! * String/char/byte-string contents (including raw strings) never
//!   produce tokens, so `"panic!"` in a message cannot trip R1.
//! * Comments never produce tokens, but `// vpm-lint: allow(...)`
//!   directives are collected with their line and placement
//!   (trailing-after-code vs standalone).
//! * Every token carries `in_test` (lexically inside a `#[cfg(test)]`
//!   item, a `#[test]` item, or a `mod tests`/`mod test` block) and
//!   `in_attr` (inside a `#[...]` attribute), so rules can skip both.

/// Kinds of tokens the analyzer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (the character is the token text).
    Punct,
    /// String literal of any flavor (text is the raw source slice).
    Str,
    /// Character literal.
    Char,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token<'a> {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The source text of the token.
    pub text: &'a str,
    /// 1-based source line.
    pub line: u32,
    /// Lexically inside test-only code.
    pub in_test: bool,
    /// Lexically inside a `#[...]` attribute.
    pub in_attr: bool,
}

impl Token<'_> {
    /// True when the token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.starts_with(c)
    }

    /// True when the token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// How far an `allow` directive reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowScope {
    /// Trailing comment: suppresses its own line only.
    Line,
    /// Standalone comment: suppresses the next statement or item
    /// (through the end of its brace block).
    NextItem,
    /// `allow-file`: suppresses the whole file.
    File,
}

/// One `// vpm-lint: allow(RULE, reason)` directive.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// Rule ID named by the directive (e.g. `"R1"`).
    pub rule: String,
    /// The free-text justification. Mandatory: a reasonless allow is
    /// reported as a malformed directive, and suppresses nothing.
    pub reason: String,
    /// Line vs next-item vs whole-file reach.
    pub scope: AllowScope,
}

/// A malformed `vpm-lint:` comment (bad syntax or missing reason).
/// These are surfaced as diagnostics so a typo cannot silently
/// suppress nothing (or worse, look like it suppressed something).
#[derive(Debug, Clone)]
pub struct BadDirective {
    /// 1-based line of the comment.
    pub line: u32,
    /// What was wrong.
    pub problem: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// The token stream, comments and literal contents stripped.
    pub tokens: Vec<Token<'a>>,
    /// Well-formed suppression directives.
    pub directives: Vec<Directive>,
    /// Malformed `vpm-lint:` comments.
    pub bad_directives: Vec<BadDirective>,
}

/// Lex `src`. Never fails: unterminated literals are consumed to end
/// of input (the analyzer lints real, compiling Rust; on garbage the
/// worst case is missed diagnostics, never a panic).
pub fn lex(src: &str) -> Lexed<'_> {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut last_tok_line = 0u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                parse_directive(text, line, last_tok_line == line, &mut out);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comments, as in real Rust.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (end, nl) = scan_string(b, i);
                out.tokens.push(tok(TokKind::Str, &src[i..end], line));
                last_tok_line = line;
                line += nl;
                i = end;
            }
            b'\'' => {
                // Lifetime or char literal. A lifetime is `'` + ident
                // not followed by a closing `'`.
                let (token, end, nl) = scan_quote(src, b, i, line);
                last_tok_line = line;
                out.tokens.push(token);
                line += nl;
                i = end;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                // Float part: `.` followed by a digit (so `0..n` stays
                // a range and `x.0` stays a field access).
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                out.tokens.push(tok(TokKind::Num, &src[start..i], line));
                last_tok_line = line;
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let ident = &src[start..i];
                // Raw/byte string prefixes: `r"`, `r#"`, `b"`, `br#"`…
                if matches!(ident, "r" | "b" | "br" | "rb") && i < b.len() {
                    let mut j = i;
                    let raw = ident != "b";
                    if raw {
                        while j < b.len() && b[j] == b'#' {
                            j += 1;
                        }
                    }
                    if j < b.len() && b[j] == b'"' {
                        let hashes = j - i;
                        let (end, nl) = if raw {
                            scan_raw_string(b, j, hashes)
                        } else {
                            scan_string(b, j)
                        };
                        out.tokens.push(tok(TokKind::Str, &src[start..end], line));
                        last_tok_line = line;
                        line += nl;
                        i = end;
                        continue;
                    }
                    if ident == "b" && i < b.len() && b[i] == b'\'' {
                        let (token, end, nl) = scan_quote(src, b, i, line);
                        out.tokens.push(token);
                        last_tok_line = line;
                        line += nl;
                        i = end;
                        continue;
                    }
                }
                out.tokens.push(tok(TokKind::Ident, ident, line));
                last_tok_line = line;
            }
            _ => {
                let end = next_char_boundary(src, i);
                out.tokens.push(tok(TokKind::Punct, &src[i..end], line));
                last_tok_line = line;
                i = end;
            }
        }
    }

    mark_attrs(&mut out.tokens);
    mark_test_scopes(&mut out.tokens);
    out
}

fn tok(kind: TokKind, text: &str, line: u32) -> Token<'_> {
    Token {
        kind,
        text,
        line,
        in_test: false,
        in_attr: false,
    }
}

fn next_char_boundary(src: &str, i: usize) -> usize {
    let mut end = i + 1;
    while end < src.len() && !src.is_char_boundary(end) {
        end += 1;
    }
    end
}

/// Scan a `"…"` string starting at the opening quote. Returns the
/// index one past the closing quote and the number of newlines inside.
fn scan_string(b: &[u8], start: usize) -> (usize, u32) {
    let mut i = start + 1;
    let mut nl = 0;
    while i < b.len() {
        match b[i] {
            // A line-continuation escape (`\` at end of line) swallows
            // the newline; it still has to count toward line numbers.
            b'\\' => {
                if i + 1 < b.len() && b[i + 1] == b'\n' {
                    nl += 1;
                }
                i += 2;
            }
            b'"' => return (i + 1, nl),
            b'\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (b.len(), nl)
}

/// Scan a raw string whose opening quote is at `start`, delimited by
/// `hashes` `#` characters.
fn scan_raw_string(b: &[u8], start: usize, hashes: usize) -> (usize, u32) {
    let mut i = start + 1;
    let mut nl = 0;
    while i < b.len() {
        if b[i] == b'\n' {
            nl += 1;
        } else if b[i] == b'"'
            && b[i + 1..].len() >= hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&c| c == b'#')
        {
            return (i + 1 + hashes, nl);
        }
        i += 1;
    }
    (b.len(), nl)
}

/// Scan from a `'`: either a lifetime token or a char literal.
fn scan_quote<'a>(src: &'a str, b: &[u8], start: usize, line: u32) -> (Token<'a>, usize, u32) {
    // `b'x'` passes start at the quote already; plain lifetimes arrive
    // here too.
    debug_assert_eq!(b[start], b'\'');
    let mut i = start + 1;
    if i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphabetic()) {
        let mut j = i;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        if j >= b.len() || b[j] != b'\'' {
            // `'a` with no closing quote: lifetime.
            return (tok(TokKind::Lifetime, &src[start..j], line), j, 0);
        }
        // `'a'`: char literal.
        return (tok(TokKind::Char, &src[start..j + 1], line), j + 1, 0);
    }
    // Escaped or punctuation char literal: `'\n'`, `'\''`, `'{'`.
    let mut nl = 0;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return (tok(TokKind::Char, &src[start..i + 1], line), i + 1, nl),
            b'\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (tok(TokKind::Char, &src[start..], line), b.len(), nl)
}

/// Parse a line comment that may carry a `vpm-lint:` directive.
fn parse_directive(comment: &str, line: u32, trailing: bool, out: &mut Lexed<'_>) {
    // A directive must *start* the comment (`// vpm-lint: …`); prose
    // that merely mentions `vpm-lint:` mid-sentence (docs, this file)
    // is not a directive.
    let body = comment.trim_start_matches(['/', '!']).trim_start();
    let Some(rest) = body.strip_prefix("vpm-lint:") else {
        return;
    };
    let rest = rest.trim();
    let (scope, body) = if let Some(r) = rest.strip_prefix("allow-file") {
        (AllowScope::File, r)
    } else if let Some(r) = rest.strip_prefix("allow") {
        let scope = if trailing {
            AllowScope::Line
        } else {
            AllowScope::NextItem
        };
        (scope, r)
    } else {
        out.bad_directives.push(BadDirective {
            line,
            problem: format!("unknown vpm-lint directive '{rest}'"),
        });
        return;
    };
    let body = body.trim();
    let inner = body.strip_prefix('(').and_then(|s| s.strip_suffix(')'));
    let Some(inner) = inner else {
        out.bad_directives.push(BadDirective {
            line,
            problem: "allow directive must be 'allow(RULE, reason)'".to_string(),
        });
        return;
    };
    let Some((rule, reason)) = inner.split_once(',') else {
        out.bad_directives.push(BadDirective {
            line,
            problem: "allow directive has no reason: 'allow(RULE, reason)' — every suppression is audited".to_string(),
        });
        return;
    };
    let rule = rule.trim().to_string();
    let reason = reason.trim().to_string();
    if rule.is_empty() || reason.is_empty() {
        out.bad_directives.push(BadDirective {
            line,
            problem: "allow directive needs a rule ID and a non-empty reason".to_string(),
        });
        return;
    }
    out.directives.push(Directive {
        line,
        rule,
        reason,
        scope,
    });
}

/// Mark tokens inside `#[...]` attributes (including nested brackets).
fn mark_attrs(tokens: &mut [Token<'_>]) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#')
            && i + 1 < tokens.len()
            && (tokens[i + 1].is_punct('[')
                || (tokens[i + 1].is_punct('!')
                    && i + 2 < tokens.len()
                    && tokens[i + 2].is_punct('[')))
        {
            let open = if tokens[i + 1].is_punct('[') {
                i + 1
            } else {
                i + 2
            };
            let mut depth = 0usize;
            let mut j = open;
            while j < tokens.len() {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let last = j.min(tokens.len() - 1);
            for t in &mut tokens[i..=last] {
                t.in_attr = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// Does an attribute token slice make the following item test-only?
/// `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]` do; a `test`
/// that appears directly under `not(…)` does not.
fn attr_is_test(tokens: &[Token<'_>]) -> bool {
    for (k, t) in tokens.iter().enumerate() {
        if t.is_ident("test") {
            let negated = k >= 2 && tokens[k - 1].is_punct('(') && tokens[k - 2].is_ident("not");
            if !negated {
                return true;
            }
        }
    }
    false
}

/// Second pass: compute `in_test` for every token.
fn mark_test_scopes(tokens: &mut [Token<'_>]) {
    let mut depth: i64 = 0;
    // Brace depths at which a test region opened; tokens are in test
    // scope while this stack is non-empty.
    let mut test_stack: Vec<i64> = Vec::new();
    // A `#[test]`/`#[cfg(test)]` attribute (or `mod tests` header) was
    // seen and applies to the next `{ … }` block or `…;` item.
    let mut pending = false;
    let mut i = 0;
    while i < tokens.len() {
        // Attributes: scan them as a unit.
        if tokens[i].in_attr && tokens[i].is_punct('#') {
            let mut j = i;
            while j < tokens.len() && tokens[j].in_attr {
                tokens[j].in_test = !test_stack.is_empty();
                j += 1;
            }
            if attr_is_test(&tokens[i..j]) {
                pending = true;
            }
            i = j;
            continue;
        }
        let in_test_now;
        if tokens[i].is_punct('{') {
            depth += 1;
            if pending {
                test_stack.push(depth);
                pending = false;
            }
            in_test_now = !test_stack.is_empty();
        } else if tokens[i].is_punct('}') {
            // The closing brace still belongs to the region.
            in_test_now = !test_stack.is_empty();
            if test_stack.last() == Some(&depth) {
                test_stack.pop();
            }
            depth -= 1;
        } else if tokens[i].is_punct(';') {
            in_test_now = !test_stack.is_empty();
            // `#[cfg(test)] mod tests;` / `#[cfg(test)] use …;`: the
            // attribute applied to a braceless item.
            pending = false;
        } else {
            if tokens[i].is_ident("mod")
                && i + 1 < tokens.len()
                && (tokens[i + 1].is_ident("tests") || tokens[i + 1].is_ident("test"))
            {
                pending = true;
            }
            in_test_now = !test_stack.is_empty();
        }
        tokens[i].in_test = in_test_now;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.to_string())
            .collect()
    }

    #[test]
    fn strings_and_comments_produce_no_idents() {
        let src = r##"
            fn f() {
                let s = "panic! unwrap()";
                let r = r#"unreachable!()"#;
                let b = b"todo!()";
                // panic! in a comment
                /* unwrap() in /* nested */ block */
                let c = '{';
                let l: &'static str = s;
            }
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"panic".to_string()), "{ids:?}");
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"todo".to_string()), "{ids:?}");
        assert!(!ids.contains(&"unreachable".to_string()), "{ids:?}");
        assert!(lex(src)
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'static"));
    }

    #[test]
    fn cfg_test_module_is_test_scope_and_rest_is_not() {
        let src = r#"
            fn product() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { y.unwrap(); }
            }
            fn product2() { z.unwrap(); }
        "#;
        let lexed = lex(src);
        let unwraps: Vec<bool> = lexed
            .tokens
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true, false]);
    }

    #[test]
    fn cfg_not_test_is_product_scope() {
        let src = r#"
            #[cfg(not(test))]
            fn product() { x.unwrap(); }
        "#;
        let lexed = lex(src);
        let t = lexed.tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert!(!t.in_test);
    }

    #[test]
    fn test_fn_attr_marks_only_its_body() {
        let src = r#"
            #[test]
            fn a_test() { x.unwrap(); }
            fn product() { y.unwrap(); }
        "#;
        let lexed = lex(src);
        let unwraps: Vec<bool> = lexed
            .tokens
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn directives_parse_with_scope_and_reason() {
        let src = "let x = y.unwrap(); // vpm-lint: allow(R1, y is checked above)\n\
                   // vpm-lint: allow(R2, whole next item)\n\
                   fn f() {}\n\
                   // vpm-lint: allow-file(R3, the whole file)\n\
                   // vpm-lint: allow(R1)\n";
        let lexed = lex(src);
        assert_eq!(lexed.directives.len(), 3);
        assert_eq!(lexed.directives[0].scope, AllowScope::Line);
        assert_eq!(lexed.directives[0].rule, "R1");
        assert_eq!(lexed.directives[1].scope, AllowScope::NextItem);
        assert_eq!(lexed.directives[2].scope, AllowScope::File);
        assert_eq!(
            lexed.bad_directives.len(),
            1,
            "reasonless allow is malformed"
        );
    }

    #[test]
    fn numbers_and_ranges_lex_apart() {
        let lexed = lex("a[0..n]; 1.5f64; x.0;");
        let nums: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text)
            .collect();
        assert_eq!(nums, vec!["0", "1.5f64", "0"]);
    }
}
