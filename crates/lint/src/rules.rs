//! Token-stream rules: R1 panic-freedom, R2 determinism, R3 lock
//! discipline.
//!
//! Every rule is lexical, scoped to non-test product code, and errs on
//! the side of flagging — a false positive costs one audited
//! `// vpm-lint: allow(...)` with a written reason; a false negative
//! costs a panic or a nondeterministic verdict in production.

use crate::lexer::{TokKind, Token};
use crate::report::Violation;
use std::collections::HashSet;

/// Crates whose non-test code must be panic-free (R1): the wire codec
/// and transports (total on attacker-controlled bytes), the verifier
/// core, and the simulation/verdict plane.
pub const R1_SCOPE: [&str; 3] = ["crates/wire/src", "crates/sim/src", "crates/core/src"];

/// Crates whose non-test code feeds serialized verdicts, wire frames,
/// or golden fixtures (R2): everything except the bench harnesses
/// (`crates/bench` legitimately reads clocks — the module-path
/// allowlist) and the offline dependency shims (stand-ins for external
/// crates, not product code).
pub const R2_SCOPE: [&str; 9] = [
    "crates/core/src",
    "crates/sim/src",
    "crates/wire/src",
    "crates/hash/src",
    "crates/packet/src",
    "crates/stats/src",
    "crates/trace/src",
    "crates/netsim/src",
    "src/",
];

/// R3 runs wherever locks and blocking calls coexist.
pub const R3_SCOPE: [&str; 4] = [
    "crates/wire/src",
    "crates/sim/src",
    "crates/core/src",
    "src/",
];

/// Is `rel` under any of the given scope prefixes?
pub fn in_scope(rel: &str, scope: &[&str]) -> bool {
    scope.iter().any(|p| rel.starts_with(p))
}

fn skip(t: &Token<'_>) -> bool {
    t.in_test || t.in_attr
}

/// Macros whose expansion aborts: never in product code of the
/// hardened crates.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// R1 — panic-freedom. Flags `.unwrap()`, `.expect(…)`, the abort
/// macros, and slice/array indexing (`x[i]`, `x[a..b]`) in non-test
/// code. Indexing with a full range (`x[..]`) cannot panic and is not
/// flagged.
pub fn r1(rel: &str, tokens: &[Token<'_>]) -> Vec<Violation> {
    let mut out = Vec::new();
    let viol = |check: &str, line: u32, message: String| Violation {
        rule: "R1",
        check: check.to_string(),
        file: rel.to_string(),
        line,
        message,
    };
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if skip(t) {
            continue;
        }
        // `.unwrap()` / `.expect(`
        if t.is_punct('.') && i + 2 < tokens.len() {
            let m = &tokens[i + 1];
            if (m.is_ident("unwrap") || m.is_ident("expect")) && tokens[i + 2].is_punct('(') {
                out.push(viol(
                    m.text,
                    m.line,
                    format!("`.{}(…)` can panic; return a typed error instead", m.text),
                ));
            }
        }
        // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text)
            && i + 1 < tokens.len()
            && tokens[i + 1].is_punct('!')
        {
            out.push(viol(
                t.text,
                t.line,
                format!("`{}!` aborts; non-test code must refuse, not panic", t.text),
            ));
        }
        // Postfix indexing: `expr[…]` where expr ends in an
        // identifier, `)`, `]`, or `?`.
        if t.is_punct('[') && i > 0 {
            let p = &tokens[i - 1];
            let postfix =
                p.kind == TokKind::Ident || p.is_punct(')') || p.is_punct(']') || p.is_punct('?');
            // `expr[..]` (full-range) never panics.
            let full_range = i + 3 < tokens.len()
                && tokens[i + 1].is_punct('.')
                && tokens[i + 2].is_punct('.')
                && tokens[i + 3].is_punct(']');
            // A `[` directly after a keyword is an array expression
            // (`return [`, `in [`…), not indexing.
            let keyword_before = p.kind == TokKind::Ident
                && matches!(
                    p.text,
                    "return" | "in" | "if" | "else" | "match" | "break" | "mut" | "as" | "dyn"
                );
            if postfix && !full_range && !keyword_before && !p.in_attr {
                out.push(viol(
                    "index",
                    t.line,
                    "slice/array indexing can panic; prefer `.get(…)` with a typed refusal"
                        .to_string(),
                ));
            }
        }
    }
    out
}

/// Methods that iterate a `HashMap`/`HashSet` in hash order.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Collect identifiers (bindings and struct fields) declared in this
/// file with a `HashMap`/`HashSet` type, by two lexical patterns:
/// `name: HashMap<…>` (annotations and fields) and
/// `let name = HashMap::new/with_capacity/from…`.
fn hash_typed_names(tokens: &[Token<'_>]) -> HashSet<String> {
    let mut names = HashSet::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        // Test-scope declarations must not poison product-code names:
        // a test-local `let delays = HashSet::new()` would otherwise
        // flag a product loop over an unrelated `delays` array.
        if t.kind != TokKind::Ident || t.in_attr || t.in_test {
            continue;
        }
        // `name :` (single colon) followed by a type mentioning
        // HashMap/HashSet before the annotation ends.
        if i + 2 < tokens.len()
            && tokens[i + 1].is_punct(':')
            && !tokens[i + 2].is_punct(':')
            && (i == 0 || !tokens[i - 1].is_punct(':'))
        {
            let mut angle = 0i32;
            for u in tokens.iter().skip(i + 2).take(40) {
                if u.is_punct('<') {
                    angle += 1;
                } else if u.is_punct('>') {
                    angle -= 1;
                } else if angle == 0
                    && (u.is_punct(';')
                        || u.is_punct('=')
                        || u.is_punct(',')
                        || u.is_punct(')')
                        || u.is_punct('{'))
                {
                    break;
                } else if u.is_ident("HashMap") || u.is_ident("HashSet") {
                    names.insert(t.text.to_string());
                    break;
                }
            }
        }
        // `let name = …HashMap::…` / `let mut name = …HashSet::…`
        if t.is_ident("let") {
            let mut j = i + 1;
            while j < tokens.len() && tokens[j].is_ident("mut") {
                j += 1;
            }
            if j < tokens.len() && tokens[j].kind == TokKind::Ident {
                let name = tokens[j].text;
                for u in tokens.iter().skip(j + 1).take(30) {
                    if u.is_punct(';') {
                        break;
                    }
                    if u.is_ident("HashMap") || u.is_ident("HashSet") {
                        names.insert(name.to_string());
                        break;
                    }
                }
            }
        }
    }
    names
}

/// Walk backwards from the `.` at index `end` over a method-call chain
/// (`a.b.lock().c`) collecting the identifiers in the receiver. Stops
/// at the first token that is not part of a `recv.field.call()` chain,
/// so `for k in m.keys()` yields `["m"]`, not `["m", "in", "for"]`.
fn chain_idents<'a>(tokens: &'a [Token<'a>], end: usize) -> Vec<&'a str> {
    let mut idents = Vec::new();
    let mut i = end; // index of a '.' in the chain
    loop {
        if i == 0 {
            break;
        }
        let mut j = i - 1;
        if tokens[j].is_punct(')') {
            // Skip the call's argument list to its method name.
            let mut depth = 1;
            while j > 0 && depth > 0 {
                j -= 1;
                if tokens[j].is_punct(')') {
                    depth += 1;
                } else if tokens[j].is_punct('(') {
                    depth -= 1;
                }
            }
            if j == 0 {
                break;
            }
            j -= 1;
            if tokens[j].kind == TokKind::Ident {
                idents.push(tokens[j].text);
            } else {
                break;
            }
        } else if tokens[j].kind == TokKind::Ident {
            idents.push(tokens[j].text);
        } else {
            break;
        }
        // The chain continues only through another `.`.
        if j == 0 || !tokens[j - 1].is_punct('.') {
            break;
        }
        i = j - 1;
    }
    idents
}

/// R2 — determinism. Flags wall-clock reads (`Instant::now`,
/// `SystemTime::now`) and `HashMap`/`HashSet` iteration (hash order is
/// seeded per-process: anything it feeds can differ run to run).
pub fn r2(rel: &str, tokens: &[Token<'_>]) -> Vec<Violation> {
    let mut out: Vec<Violation> = Vec::new();
    let names = hash_typed_names(tokens);
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if skip(t) {
            continue;
        }
        // `Instant::now` / `SystemTime::now`
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && i + 3 < tokens.len()
            && tokens[i + 1].is_punct(':')
            && tokens[i + 2].is_punct(':')
            && tokens[i + 3].is_ident("now")
        {
            out.push(Violation {
                rule: "R2",
                check: "clock".to_string(),
                file: rel.to_string(),
                line: t.line,
                message: format!(
                    "`{}::now()` reads the wall clock; verdict-feeding paths must be \
                     deterministic (allow with a reason if this only bounds a timeout)",
                    t.text
                ),
            });
        }
        // `map.iter()` and friends, including through `.lock()` /
        // `.read()` chains.
        if t.is_punct('.')
            && i + 2 < tokens.len()
            && tokens[i + 1].kind == TokKind::Ident
            && ITER_METHODS.contains(&tokens[i + 1].text)
            && tokens[i + 2].is_punct('(')
        {
            let chain = chain_idents(tokens, i);
            if chain.iter().any(|id| names.contains(*id)) {
                out.push(Violation {
                    rule: "R2",
                    check: "hash-iter".to_string(),
                    file: rel.to_string(),
                    line: tokens[i + 1].line,
                    message: format!(
                        "`.{}()` on a HashMap/HashSet iterates in per-process hash order; \
                         sort first or use an ordered structure",
                        tokens[i + 1].text
                    ),
                });
            }
        }
        // `for x in &map { … }`
        if t.is_ident("for") {
            let mut j = i + 1;
            let mut saw_in = false;
            while j < tokens.len() && !tokens[j].is_punct('{') && j < i + 30 {
                if tokens[j].is_ident("in") {
                    saw_in = true;
                } else if saw_in
                    && tokens[j].kind == TokKind::Ident
                    && names.contains(tokens[j].text)
                    // Not already caught as `.iter()` etc.
                    && !(j + 1 < tokens.len() && tokens[j + 1].is_punct('.'))
                {
                    out.push(Violation {
                        rule: "R2",
                        check: "hash-iter".to_string(),
                        file: rel.to_string(),
                        line: tokens[j].line,
                        message: "iterating a HashMap/HashSet yields per-process hash order; \
                                  sort first or use an ordered structure"
                            .to_string(),
                    });
                    break;
                }
                j += 1;
            }
        }
    }
    out
}

/// Calls that block or signal: holding a lock guard across any of
/// these is the hazard class R3 exists for (PR 7's `Notifier` bumps
/// outside the write locks for exactly this reason).
const HAZARDS: [&str; 17] = [
    "notify_one",
    "notify_all",
    "bump",
    "wait",
    "wait_timeout",
    "wait_while",
    "wait_timeout_while",
    "wait_past",
    "park",
    "sleep",
    "join",
    "recv",
    "recv_timeout",
    "read_exact",
    "write_all",
    "read_to_end",
    "flush",
];

#[derive(Debug)]
struct Guard {
    name: String,
    depth: i64,
    line: u32,
    /// Temporary guard (un-bound `.lock()` in an expression): dies at
    /// the end of the enclosing statement.
    temp: bool,
}

/// Does `tokens[i..]` start a `.lock()` / `.read()` / `.write()`
/// guard-taking call (empty argument list — `read(buf)`/`write(buf)`
/// are I/O, not lock acquisition)?
fn lock_call_at(tokens: &[Token<'_>], i: usize) -> bool {
    i + 3 < tokens.len()
        && tokens[i].is_punct('.')
        && (tokens[i + 1].is_ident("lock")
            || tokens[i + 1].is_ident("read")
            || tokens[i + 1].is_ident("write"))
        && tokens[i + 2].is_punct('(')
        && tokens[i + 3].is_punct(')')
}

/// From the token *after* a lock call's `()`, is the rest of the
/// statement only poison adapters (`.unwrap()`, `.expect(…)`,
/// `.unwrap_or_else(…)`) up to the terminating `;`? If anything else
/// follows — `.get(…)`, `.len()`, a field access — the binding copies
/// a value out and the temporary guard dies at the `;`, so the `let`
/// does NOT bind a guard.
fn only_poison_adapters_to_semi(tokens: &[Token<'_>], mut k: usize) -> bool {
    while k < tokens.len() {
        if tokens[k].is_punct(';') {
            return true;
        }
        if tokens[k].is_punct('.')
            && k + 2 < tokens.len()
            && (tokens[k + 1].is_ident("unwrap")
                || tokens[k + 1].is_ident("expect")
                || tokens[k + 1].is_ident("unwrap_or_else"))
            && tokens[k + 2].is_punct('(')
        {
            // Skip the adapter's balanced argument list.
            let mut d = 0i64;
            k += 2;
            while k < tokens.len() {
                if tokens[k].is_punct('(') {
                    d += 1;
                } else if tokens[k].is_punct(')') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        } else {
            return false;
        }
    }
    false
}

/// R3 — lock discipline. A `Mutex`/`RwLock` guard binding may not be
/// live across a notify, a blocking wait, or blocking stream I/O in
/// the same scope. A condvar-style wait that *consumes* the guard
/// (`cvar.wait_timeout(guard, …)`) is the one sanctioned pattern and
/// is skipped.
pub fn r3(rel: &str, tokens: &[Token<'_>]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i64 = 0;
    // A `let` statement being scanned: (binding name, binding depth,
    // end-pending) — the guard activates at the statement's `;`.
    let mut pending: Option<(String, i64)> = None;
    // A `match` scrutinee's temporary lives through the whole match
    // block; an `if`/`while` condition's dies at the block's `{`.
    let mut saw_match = false;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if skip(t) {
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            if !saw_match {
                guards.retain(|g| !(g.temp && g.depth == depth));
            }
            saw_match = false;
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            saw_match = false;
            guards.retain(|g| g.depth <= depth);
            if let Some((_, d)) = &pending {
                if *d > depth {
                    pending = None;
                }
            }
        } else if t.is_punct(';') {
            if let Some((name, d)) = pending.take() {
                if d == depth {
                    guards.push(Guard {
                        name,
                        depth,
                        line: t.line,
                        temp: false,
                    });
                } else {
                    pending = Some((name, d));
                }
            }
            guards.retain(|g| !(g.temp && g.depth == depth));
            saw_match = false;
        } else if t.is_ident("match") {
            saw_match = true;
        } else if t.is_ident("let") {
            // Look ahead: does this statement's initializer take a
            // lock? (Scan to the `;` that closes it at this depth.)
            let mut j = i + 1;
            while j < tokens.len() && tokens[j].is_ident("mut") {
                j += 1;
            }
            if j < tokens.len() && tokens[j].kind == TokKind::Ident {
                let name = tokens[j].text.to_string();
                let mut d = 0i64;
                let mut last_lock_close: Option<usize> = None;
                let mut k = j;
                while k < tokens.len() {
                    let u = &tokens[k];
                    if u.is_punct('{') || u.is_punct('(') {
                        d += 1;
                    } else if u.is_punct('}') || u.is_punct(')') {
                        d -= 1;
                    } else if u.is_punct(';') && d <= 0 {
                        break;
                    }
                    if lock_call_at(tokens, k) {
                        last_lock_close = Some(k + 3);
                    }
                    k += 1;
                }
                // The binding holds the guard only when nothing but
                // poison adapters follow the lock call; a chain that
                // continues (`.get(…)…`, `.len()`) copies a value out
                // and drops the guard at the `;`.
                if let Some(close) = last_lock_close {
                    if only_poison_adapters_to_semi(tokens, close + 1) {
                        pending = Some((name, depth));
                    }
                }
            }
        } else if lock_call_at(tokens, i) && pending.is_none() {
            // An un-bound lock in an expression: guard lives to the
            // end of the statement (or loop body, for a `for` header).
            guards.push(Guard {
                name: "<temporary>".to_string(),
                depth,
                line: t.line,
                temp: true,
            });
        } else if t.kind == TokKind::Ident
            && HAZARDS.contains(&t.text)
            && i + 1 < tokens.len()
            && tokens[i + 1].is_punct('(')
            && !guards.is_empty()
        {
            // Collect the argument tokens; a wait that consumes a live
            // guard is the condvar pattern, not a violation.
            let mut d = 0i64;
            let mut k = i + 1;
            let mut consumes_guard = false;
            while k < tokens.len() {
                let u = &tokens[k];
                if u.is_punct('(') {
                    d += 1;
                } else if u.is_punct(')') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                } else if u.kind == TokKind::Ident && guards.iter().any(|g| g.name == u.text) {
                    consumes_guard = true;
                }
                k += 1;
            }
            if !consumes_guard {
                let held: Vec<String> = guards
                    .iter()
                    .map(|g| format!("`{}` (line {})", g.name, g.line))
                    .collect();
                out.push(Violation {
                    rule: "R3",
                    check: t.text.to_string(),
                    file: rel.to_string(),
                    line: t.line,
                    message: format!(
                        "`{}(…)` while lock guard(s) {} are live; release the guard first \
                         (notify/wait/IO under a lock stalls every other holder)",
                        t.text,
                        held.join(", ")
                    ),
                });
            }
        } else if t.is_ident("drop")
            && i + 2 < tokens.len()
            && tokens[i + 1].is_punct('(')
            && tokens[i + 2].kind == TokKind::Ident
        {
            let name = tokens[i + 2].text;
            guards.retain(|g| g.name != name);
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rule: fn(&str, &[Token<'_>]) -> Vec<Violation>, src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        rule("crates/wire/src/x.rs", &lexed.tokens)
    }

    #[test]
    fn r1_flags_unwrap_expect_macros_and_indexing() {
        let v = run(
            r1,
            "fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); unreachable!(); c[i]; d[..]; }",
        );
        let checks: Vec<&str> = v.iter().map(|v| v.check.as_str()).collect();
        assert_eq!(
            checks,
            vec!["unwrap", "expect", "panic", "unreachable", "index"]
        );
    }

    #[test]
    fn r1_skips_test_code_and_attrs() {
        let v = run(
            r1,
            "#[cfg(test)] mod tests { fn t() { a.unwrap(); b[i]; panic!(); } }\n\
             #[derive(Debug)] struct S;",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r1_array_literals_are_not_indexing() {
        let v = run(
            r1,
            "fn f() { let a = [0u8; 4]; let b: [u8; 2] = x; return [1, 2]; }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r2_flags_clocks_and_hash_iteration() {
        let v = run(
            r2,
            "fn f(m: HashMap<u32, u32>) { let t = Instant::now(); for k in m.keys() {} }",
        );
        let checks: Vec<&str> = v.iter().map(|v| v.check.as_str()).collect();
        assert_eq!(checks, vec!["clock", "hash-iter"]);
    }

    #[test]
    fn r2_ignores_vec_iteration_and_map_lookups() {
        let v = run(
            r2,
            "fn f(m: HashMap<u32, u32>, v: Vec<u32>) { v.iter(); m.get(&1); m.len(); }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r2_sees_iteration_through_lock_chains() {
        let v = run(
            r2,
            "struct S { subs: HashMap<u64, u32> }\n\
             fn f(s: &S) { for x in s.subs.values() {} }",
        );
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn r3_flags_io_under_a_guard_and_clears_on_scope_exit() {
        let v = run(
            r3,
            "fn f(&self) { let mut g = self.state.lock(); g.conn.write_all(b\"x\"); }\n\
             fn ok(&self) { { let g = self.state.lock(); } self.notify_all(); }",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].check, "write_all");
    }

    #[test]
    fn r3_condvar_wait_consuming_the_guard_is_sanctioned() {
        let v = run(
            r3,
            "fn w(&self) { let mut count = self.count.lock(); \
             let r = self.cond.wait_timeout(count, d); }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r3_drop_releases_the_guard() {
        let v = run(
            r3,
            "fn f(&self) { let g = self.m.lock(); drop(g); self.n.notify_all(); }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r3_write_with_args_is_io_not_a_guard() {
        let v = run(r3, "fn f(s: &mut TcpStream) { s.write(buf); s.flush(); }");
        assert!(v.is_empty(), "{v:?}");
    }
}
