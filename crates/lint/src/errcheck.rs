//! R5 — error-variant test reachability.
//!
//! Every public error enum on the verdict path must have each of its
//! variants *constructed by at least one test* — an error arm nobody
//! can provoke in a test is an arm whose formatting, matching, and
//! transport behavior is unverified. The variant list is extracted
//! from source (never hand-copied), so adding a variant without a test
//! fails the gate until a test constructs it.
//!
//! The construction check is a lexical proxy: the token sequence
//! `Enum :: Variant` anywhere in test scope (unit `#[cfg(test)]`
//! modules, integration tests, examples). Matching on a variant also
//! counts — a test that asserts `matches!(err, WireError::Truncated
//! {..})` has necessarily provoked the variant.

use crate::report::Violation;
use std::collections::HashSet;
use std::path::Path;

/// The audited error enums: (declaring file, enum name). Kept in the
/// lint so the list itself is reviewed; the *variants* come from
/// source.
pub const AUDITED_ENUMS: &[(&str, &str)] = &[
    ("crates/wire/src/codec.rs", "WireError"),
    ("crates/wire/src/transport.rs", "TransportError"),
    ("crates/sim/src/run.rs", "RunError"),
    ("crates/core/src/ingest.rs", "IngestError"),
];

/// Extract the variant names of `enum enum_name { … }` from source.
pub fn extract_variants(src: &str, enum_name: &str) -> Vec<String> {
    let lexed = crate::lexer::lex(src);
    let toks = &lexed.tokens;
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_ident("enum") && toks[i + 1].is_ident(enum_name) && !toks[i].in_attr {
            // Skip generics/where to the opening brace.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            return variants_in_body(&toks[j + 1..]);
        }
        i += 1;
    }
    Vec::new()
}

/// Collect variant names from the token stream just past the enum's
/// opening brace: idents at depth 0 in variant-head position (start of
/// body or right after a depth-0 `,`), skipping attribute tokens and
/// any payload (`(..)` / `{..}` / `= expr`).
fn variants_in_body(toks: &[crate::lexer::Token<'_>]) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut at_head = true;
    for t in toks {
        if t.in_attr {
            continue;
        }
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
            at_head = false;
            continue;
        }
        if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                break; // enum body closed
            }
            continue;
        }
        if depth == 0 && t.is_punct(',') {
            at_head = true;
            continue;
        }
        if depth == 0 && at_head && t.kind == crate::lexer::TokKind::Ident {
            out.push(t.text.to_string());
            at_head = false;
        }
    }
    out
}

/// Collect every `A::B` pair whose tokens sit in test scope.
pub fn test_scope_paths(
    lexed: &crate::lexer::Lexed<'_>,
    test_only: bool,
    out: &mut HashSet<(String, String)>,
) {
    let toks = &lexed.tokens;
    for i in 0..toks.len().saturating_sub(3) {
        if toks[i].kind == crate::lexer::TokKind::Ident
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].kind == crate::lexer::TokKind::Ident
            && (test_only || toks[i + 3].in_test)
        {
            out.insert((toks[i].text.to_string(), toks[i + 3].text.to_string()));
        }
    }
}

/// Run R5: every variant of every audited enum must appear as
/// `Enum::Variant` in test scope somewhere in the workspace.
pub fn r5(root: &Path, constructed: &HashSet<(String, String)>) -> Vec<Violation> {
    let mut out = Vec::new();
    for (rel, enum_name) in AUDITED_ENUMS {
        let src = match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                out.push(Violation {
                    rule: "R5",
                    check: "missing-source".to_string(),
                    file: (*rel).to_string(),
                    line: 1,
                    message: format!("cannot read audited enum source: {e}"),
                });
                continue;
            }
        };
        let variants = extract_variants(&src, enum_name);
        if variants.is_empty() {
            out.push(Violation {
                rule: "R5",
                check: "missing-enum".to_string(),
                file: (*rel).to_string(),
                line: 1,
                message: format!(
                    "audited enum {enum_name} not found in {rel} — \
                     update AUDITED_ENUMS in crates/lint/src/errcheck.rs"
                ),
            });
            continue;
        }
        for v in variants {
            if !constructed.contains(&((*enum_name).to_string(), v.clone())) {
                out.push(Violation {
                    rule: "R5",
                    check: "untested-variant".to_string(),
                    file: (*rel).to_string(),
                    line: 1,
                    message: format!(
                        "{enum_name}::{v} is never constructed or matched by any test — \
                         add a test that provokes it"
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_extract_with_payloads_and_attrs() {
        let src = r#"
            /// Docs.
            #[derive(Debug)]
            pub enum E {
                /// A unit variant.
                Unit,
                Tuple(u32, String),
                Struct { at: usize, needed: usize },
                #[allow(dead_code)]
                Last,
            }
            pub enum Other { X }
        "#;
        assert_eq!(
            extract_variants(src, "E"),
            vec!["Unit", "Tuple", "Struct", "Last"]
        );
        assert_eq!(extract_variants(src, "Other"), vec!["X"]);
        assert!(extract_variants(src, "Missing").is_empty());
    }

    #[test]
    fn paths_collect_only_in_test_scope() {
        let src = r#"
            fn product() { let _ = E::NotCounted; }
            #[cfg(test)]
            mod tests {
                fn t() { assert!(matches!(x, E::Counted { .. })); }
            }
        "#;
        let lexed = crate::lexer::lex(src);
        let mut set = HashSet::new();
        test_scope_paths(&lexed, false, &mut set);
        assert!(set.contains(&("E".to_string(), "Counted".to_string())));
        assert!(!set.contains(&("E".to_string(), "NotCounted".to_string())));
        // test_only files count everything.
        let mut set2 = HashSet::new();
        test_scope_paths(&lexed, true, &mut set2);
        assert!(set2.contains(&("E".to_string(), "NotCounted".to_string())));
    }
}
