//! R6 — shim-surface drift.
//!
//! The offline shims under `shims/` impersonate real crates.io crates,
//! so every public item they expose is a compatibility claim: code
//! written against the shim must still compile against the real crate.
//! That makes the shim surface an *audited* set — growing it is a
//! deliberate act, reviewed against the upstream API, not a drive-by
//! edit because some call site wanted one more helper.
//!
//! R6 pins that set. It lexically extracts the public surface of every
//! `shims/*/src/lib.rs` — `pub` items at any nesting depth (including
//! `impl`-block methods), plus `#[macro_export]` macros — and diffs it
//! both ways against `shims/MANIFEST.txt`:
//!
//! * a surface item missing from the manifest is an
//!   **unaudited-addition** (someone widened a shim without updating
//!   the audit record);
//! * a manifest line with no matching item is a **stale-entry** (the
//!   surface shrank, or the manifest was hand-edited wrong).
//!
//! `pub(crate)`/`pub(super)` items are not surface. Non-exported
//! `macro_rules!` helpers are not surface. The manifest is regenerated
//! by the `#[ignore]`d `regenerate_manifest` test in this module:
//!
//! ```text
//! cargo test -p vpm-lint regenerate_manifest -- --ignored
//! ```
//!
//! Entries are a flat `(shim, kind, name)` set — two types in one shim
//! both exposing `fn new` collapse to one line. That coarseness is
//! deliberate: the rule is a tripwire for surface *growth*, not a full
//! API diff, and a flat set keeps the manifest reviewable by eye.

use std::collections::BTreeSet;
use std::path::Path;

use crate::lexer::{self, TokKind};
use crate::report::Violation;

/// Manifest location, relative to the workspace root.
pub const MANIFEST_REL: &str = "shims/MANIFEST.txt";

/// One public item found in a shim.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SurfaceItem {
    /// Shim directory name (`bytes`, `serde`, …).
    pub shim: String,
    /// Item kind keyword (`fn`, `struct`, `trait`, `macro`, `use`, …).
    pub kind: String,
    /// Item name; for `use`, the full re-exported path.
    pub name: String,
    /// 1-based line of the declaration (first occurrence wins).
    pub line: u32,
}

impl SurfaceItem {
    /// The identity R6 diffs on (line numbers are presentation only).
    fn key(&self) -> (String, String, String) {
        (self.shim.clone(), self.kind.clone(), self.name.clone())
    }
}

/// Extract the public surface of one shim's source.
fn surface_of(shim: &str, src: &str) -> Vec<SurfaceItem> {
    let lexed = lexer::lex(src);
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut push = |kind: &str, name: &str, line: u32| {
        out.push(SurfaceItem {
            shim: shim.to_string(),
            kind: kind.to_string(),
            name: name.to_string(),
            line,
        });
    };

    let mut i = 0usize;
    while i < toks.len() {
        // `#[macro_export] macro_rules! name` — exported macros are
        // surface even though they carry no `pub`.
        if toks[i].is_punct('#')
            && matches!(toks.get(i + 1), Some(t) if t.is_punct('['))
            && matches!(toks.get(i + 2), Some(t) if t.is_ident("macro_export"))
        {
            let mut j = i + 3;
            while j < toks.len() && !toks[j].is_ident("macro_rules") {
                j += 1;
            }
            if let Some(name) = toks.get(j + 2).filter(|t| t.kind == TokKind::Ident) {
                push("macro", name.text, name.line);
                i = j + 3;
                continue;
            }
        }

        if !toks[i].is_ident("pub") {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        let mut j = i + 1;

        // `pub(crate)` / `pub(super)` / `pub(in …)` are not surface.
        if matches!(toks.get(j), Some(t) if t.is_punct('(')) {
            let mut depth = 0i32;
            while j < toks.len() {
                if toks[j].is_punct('(') {
                    depth += 1;
                } else if toks[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }

        // Skip modifiers between `pub` and the kind keyword. A bare
        // `pub const NAME` is a constant; `pub const fn NAME` is a fn.
        let mut kind: Option<&str> = None;
        while let Some(t) = toks.get(j) {
            match t.text {
                "unsafe" | "async" | "extern" => j += 1,
                _ if t.kind == TokKind::Str => j += 1, // extern "C"
                "const" => {
                    if matches!(toks.get(j + 1), Some(n) if n.is_ident("fn")) {
                        kind = Some("fn");
                        j += 2;
                    } else {
                        kind = Some("const");
                        j += 1;
                    }
                    break;
                }
                "fn" | "struct" | "enum" | "trait" | "type" | "mod" | "static" | "union"
                | "macro" => {
                    kind = Some(t.text);
                    j += 1;
                    break;
                }
                "use" => {
                    kind = Some("use");
                    j += 1;
                    break;
                }
                _ => break,
            }
        }
        let Some(kind) = kind else {
            i += 1;
            continue;
        };

        if kind == "use" {
            // Record the whole re-export path, tokens joined verbatim
            // up to the `;` — `use serde_derive::{Deserialize,Serialize}`.
            let mut path = String::new();
            while let Some(t) = toks.get(j) {
                if t.is_punct(';') {
                    break;
                }
                path.push_str(t.text);
                j += 1;
            }
            push("use", &path, line);
        } else if let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
            push(kind, name.text, name.line);
        }
        i = j + 1;
    }
    out
}

/// Extract the full shim surface of the workspace at `root`, sorted.
/// Read failures become violations rather than aborting the rule.
pub fn surface(root: &Path, violations: &mut Vec<Violation>) -> Vec<SurfaceItem> {
    let viol = |file: String, check: &str, message: String| Violation {
        rule: "R6",
        check: check.to_string(),
        file,
        line: 0,
        message,
    };

    let shims_dir = root.join("shims");
    let mut names: Vec<String> = match std::fs::read_dir(&shims_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect(),
        Err(e) => {
            violations.push(viol(
                "shims".to_string(),
                "shims-dir",
                format!("cannot list shims/: {e}"),
            ));
            return Vec::new();
        }
    };
    names.sort();

    let mut items = Vec::new();
    for shim in &names {
        let rel = format!("shims/{shim}/src/lib.rs");
        match std::fs::read_to_string(root.join(&rel)) {
            Ok(src) => items.extend(surface_of(shim, &src)),
            Err(e) => violations.push(viol(
                rel.clone(),
                "shim-read",
                format!("cannot read {rel}: {e}"),
            )),
        }
    }
    items.sort();
    items
}

/// Render a surface as the manifest file format: a header comment,
/// then one `shim kind name` line per distinct item, sorted.
pub fn render_manifest(items: &[SurfaceItem]) -> String {
    let mut s = String::from(
        "# Audited public surface of the offline shims (vpm-lint rule R6).\n\
         # One line per item: <shim> <kind> <name>. Regenerate after an\n\
         # audited surface change with:\n\
         #   cargo test -p vpm-lint regenerate_manifest -- --ignored\n",
    );
    let keys: BTreeSet<_> = items.iter().map(SurfaceItem::key).collect();
    for (shim, kind, name) in keys {
        s.push_str(&format!("{shim} {kind} {name}\n"));
    }
    s
}

/// Run R6: diff the extracted shim surface against the audited
/// manifest, both directions.
pub fn r6(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();
    let items = surface(root, &mut violations);

    let manifest_src = match std::fs::read_to_string(root.join(MANIFEST_REL)) {
        Ok(s) => s,
        Err(e) => {
            violations.push(Violation {
                rule: "R6",
                check: "manifest-missing".to_string(),
                file: MANIFEST_REL.to_string(),
                line: 0,
                message: format!(
                    "cannot read {MANIFEST_REL}: {e}; regenerate with \
                     `cargo test -p vpm-lint regenerate_manifest -- --ignored`"
                ),
            });
            return violations;
        }
    };

    let mut audited: BTreeSet<(String, String, String)> = BTreeSet::new();
    for (idx, raw) in manifest_src.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        match (parts.next(), parts.next(), parts.next()) {
            (Some(shim), Some(kind), Some(name)) if !name.is_empty() => {
                audited.insert((shim.to_string(), kind.to_string(), name.to_string()));
            }
            _ => violations.push(Violation {
                rule: "R6",
                check: "manifest-parse".to_string(),
                file: MANIFEST_REL.to_string(),
                line: line_no,
                message: format!("malformed manifest line (want `shim kind name`): {raw:?}"),
            }),
        }
    }

    let surface_keys: BTreeSet<_> = items.iter().map(SurfaceItem::key).collect();

    // Surface → manifest: every public item must be audited.
    let mut reported: BTreeSet<(String, String, String)> = BTreeSet::new();
    for it in &items {
        let key = it.key();
        if !audited.contains(&key) && reported.insert(key) {
            violations.push(Violation {
                rule: "R6",
                check: "unaudited-addition".to_string(),
                file: format!("shims/{}/src/lib.rs", it.shim),
                line: it.line,
                message: format!(
                    "public shim item `{} {}` is not in {MANIFEST_REL}; widening a shim \
                     is an audited change — verify it against the real crate's API, then \
                     regenerate the manifest",
                    it.kind, it.name
                ),
            });
        }
    }

    // Manifest → surface: no line may outlive its item.
    for (shim, kind, name) in audited.difference(&surface_keys) {
        violations.push(Violation {
            rule: "R6",
            check: "stale-entry".to_string(),
            file: MANIFEST_REL.to_string(),
            line: 0,
            message: format!(
                "manifest entry `{shim} {kind} {name}` matches no public item in \
                 shims/{shim}/src/lib.rs; regenerate the manifest"
            ),
        });
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn mini_tree(tag: &str, shims: &[(&str, &str)], manifest: Option<&str>) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vpm_lint_r6_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        for (name, src) in shims {
            fs::create_dir_all(dir.join(format!("shims/{name}/src"))).unwrap();
            fs::write(dir.join(format!("shims/{name}/src/lib.rs")), src).unwrap();
        }
        if let Some(m) = manifest {
            fs::write(dir.join(MANIFEST_REL), m).unwrap();
        }
        dir
    }

    /// The repo root, from this crate's manifest dir (crates/lint).
    fn repo_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/lint sits two levels under the root")
            .to_path_buf()
    }

    const DEMO: &str = "pub fn visible() {}\n\
         pub(crate) fn hidden() {}\n\
         pub const LIMIT: usize = 4;\n\
         pub const fn both() -> u8 { 0 }\n\
         pub use std::hint::black_box;\n\
         #[macro_export]\nmacro_rules! shout { () => {} }\n\
         macro_rules! private_helper { () => {} }\n\
         pub mod inner { pub struct Deep; }\n";

    #[test]
    fn extraction_sees_pub_items_and_exported_macros_only() {
        let items = surface_of("demo", DEMO);
        let keys: Vec<(String, String)> = items
            .iter()
            .map(|i| (i.kind.clone(), i.name.clone()))
            .collect();
        assert!(keys.contains(&("fn".into(), "visible".into())));
        assert!(keys.contains(&("const".into(), "LIMIT".into())));
        assert!(keys.contains(&("fn".into(), "both".into())), "{keys:?}");
        assert!(keys.contains(&("use".into(), "std::hint::black_box".into())));
        assert!(keys.contains(&("macro".into(), "shout".into())));
        assert!(keys.contains(&("mod".into(), "inner".into())));
        assert!(keys.contains(&("struct".into(), "Deep".into())));
        assert!(!keys.iter().any(|(_, n)| n == "hidden"), "{keys:?}");
        assert!(!keys.iter().any(|(_, n)| n == "private_helper"));
    }

    #[test]
    fn a_matching_manifest_is_clean_both_directions() {
        let dir = mini_tree("clean", &[("demo", DEMO)], None);
        let mut v = Vec::new();
        let items = surface(&dir, &mut v);
        assert!(v.is_empty(), "{v:?}");
        fs::write(dir.join(MANIFEST_REL), render_manifest(&items)).unwrap();
        let viols = r6(&dir);
        assert!(viols.is_empty(), "{viols:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn widening_a_shim_is_an_unaudited_addition() {
        let dir = mini_tree("widen", &[("demo", DEMO)], None);
        let mut v = Vec::new();
        let items = surface(&dir, &mut v);
        fs::write(dir.join(MANIFEST_REL), render_manifest(&items)).unwrap();
        let src = format!("{DEMO}pub fn sneaky_new_helper() {{}}\n");
        fs::write(dir.join("shims/demo/src/lib.rs"), src).unwrap();
        let viols = r6(&dir);
        assert_eq!(viols.len(), 1, "{viols:?}");
        assert_eq!(viols[0].check, "unaudited-addition");
        assert!(viols[0].message.contains("sneaky_new_helper"));
        assert_eq!(viols[0].file, "shims/demo/src/lib.rs");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shrinking_the_surface_leaves_a_stale_entry() {
        let dir = mini_tree("shrink", &[("demo", DEMO)], None);
        let mut v = Vec::new();
        let items = surface(&dir, &mut v);
        fs::write(dir.join(MANIFEST_REL), render_manifest(&items)).unwrap();
        fs::write(dir.join("shims/demo/src/lib.rs"), "pub fn visible() {}\n").unwrap();
        let viols = r6(&dir);
        assert!(!viols.is_empty());
        assert!(viols.iter().all(|v| v.check == "stale-entry"), "{viols:?}");
        assert!(viols.iter().any(|v| v.message.contains("LIMIT")));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_missing_manifest_and_a_malformed_line_are_diagnostics() {
        let dir = mini_tree("missing", &[("demo", "pub fn f() {}\n")], None);
        let viols = r6(&dir);
        assert_eq!(viols.len(), 1, "{viols:?}");
        assert_eq!(viols[0].check, "manifest-missing");

        fs::write(dir.join(MANIFEST_REL), "demo fn f\njunkline\n").unwrap();
        let viols = r6(&dir);
        assert_eq!(viols.len(), 1, "{viols:?}");
        assert_eq!(viols[0].check, "manifest-parse");
        assert_eq!(viols[0].line, 2);
        fs::remove_dir_all(&dir).ok();
    }

    /// The committed manifest must match the committed shims exactly.
    #[test]
    fn the_real_manifest_is_in_sync() {
        let viols = r6(&repo_root());
        assert!(viols.is_empty(), "{viols:#?}");
    }

    /// Not a test: rewrites `shims/MANIFEST.txt` from the current
    /// surface. Run after an audited shim change:
    /// `cargo test -p vpm-lint regenerate_manifest -- --ignored`
    #[test]
    #[ignore = "writes shims/MANIFEST.txt; run explicitly to regenerate"]
    fn regenerate_manifest() {
        let root = repo_root();
        let mut v = Vec::new();
        let items = surface(&root, &mut v);
        assert!(v.is_empty(), "{v:?}");
        fs::write(root.join(MANIFEST_REL), render_manifest(&items)).unwrap();
    }
}
