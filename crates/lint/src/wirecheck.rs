//! R4 — wire-constant drift.
//!
//! The v1 frame layout is declared three times: as constants in
//! `crates/wire/src/codec.rs` (+ the compact record constants in
//! `crates/core/src/receipt.rs`), as the pinned golden fixture
//! `tests/golden/wire_v1.hex`, and as the README's frame diagram. §7.1
//! byte accounting depends on all three agreeing, so R4 cross-checks
//! them on every run:
//!
//! * constants are extracted from source (simple const-expression
//!   evaluation: integers, `+`, `*`, cross-file references, byte
//!   strings) — no hard-coded copies that could themselves rot;
//! * both golden frames are *structurally walked* byte by byte using
//!   those constants — magic, version, flags, section counts, and the
//!   total length must account for every byte;
//! * the compact and precise frames encode the same batch, so every
//!   shared field must agree and every truncated field must be the
//!   documented truncation of its precise counterpart (lo-32 digests,
//!   µs-mod-2²⁴ times);
//! * the README's documented sizes (`24-B header`, `24 B per distinct
//!   path`, `= 7 B`, `22 B`, `36 B`…) must match the constants.

use crate::report::Violation;
use std::collections::HashMap;
use std::path::Path;

/// A const value the mini-evaluator understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstVal {
    /// Integer constant.
    Int(u64),
    /// Byte-string constant (`*b"VPMW"`).
    Bytes(Vec<u8>),
}

/// Extract `const NAME: … = EXPR;` declarations from Rust source and
/// evaluate the subset of expressions the wire constants use.
/// Unresolvable expressions are skipped (R4 then reports the missing
/// name).
pub fn extract_consts(src: &str, env: &mut HashMap<String, u64>) -> HashMap<String, ConstVal> {
    let lexed = crate::lexer::lex(src);
    let toks = &lexed.tokens;
    let mut found: HashMap<String, ConstVal> = HashMap::new();
    // Two passes so later consts can reference earlier ones in any
    // order within the file.
    for _ in 0..2 {
        let mut i = 0;
        while i < toks.len() {
            if toks[i].is_ident("const")
                && i + 2 < toks.len()
                && toks[i + 1].kind == crate::lexer::TokKind::Ident
                && toks[i + 2].is_punct(':')
            {
                let name = toks[i + 1].text.to_string();
                // Skip the type to the '=' — the `;` inside an array
                // type (`[u8; 4]`) must not end the scan.
                let mut j = i + 3;
                let mut depth = 0i64;
                while j < toks.len() {
                    let t = &toks[j];
                    if t.is_punct('[') || t.is_punct('(') || t.is_punct('<') {
                        depth += 1;
                    } else if t.is_punct(']') || t.is_punct(')') || t.is_punct('>') {
                        depth -= 1;
                    } else if depth == 0 && (t.is_punct('=') || t.is_punct(';')) {
                        break;
                    }
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct('=') {
                    let start = j + 1;
                    let mut end = start;
                    while end < toks.len() && !toks[end].is_punct(';') {
                        end += 1;
                    }
                    if let Some(v) = eval(&toks[start..end], env) {
                        if let ConstVal::Int(n) = &v {
                            env.insert(name.clone(), *n);
                        }
                        found.insert(name, v);
                    }
                }
                i = j;
            }
            i += 1;
        }
    }
    found
}

/// Evaluate a flat const expression: `N`, `N + M`, `N * M`,
/// `IDENT + N`, `*b"…"`, `b"…"`, `1 << K`. Left-to-right with `*`
/// before `+` unnecessary here — the wire constants use single
/// operators — so a simple accumulator is enough; parenthesized or
/// mixed expressions are rejected (return `None`).
fn eval(toks: &[crate::lexer::Token<'_>], env: &HashMap<String, u64>) -> Option<ConstVal> {
    use crate::lexer::TokKind;
    // Byte string (possibly behind a deref `*`).
    let strip: &[_] = if !toks.is_empty() && toks[0].is_punct('*') {
        &toks[1..]
    } else {
        toks
    };
    if strip.len() == 1 && strip[0].kind == TokKind::Str {
        return parse_byte_string(strip[0].text).map(ConstVal::Bytes);
    }

    eval_int(toks, env).map(ConstVal::Int)
}

/// Integer sub-evaluator: terms, `+`, `*`, `<<`, parentheses. Splits
/// at the lowest-precedence top-level operator and recurses; anything
/// else returns `None`.
fn eval_int(toks: &[crate::lexer::Token<'_>], env: &HashMap<String, u64>) -> Option<u64> {
    use crate::lexer::TokKind;
    if toks.is_empty() {
        return None;
    }
    // Strip a fully-enclosing paren pair.
    if toks[0].is_punct('(') && toks[toks.len() - 1].is_punct(')') {
        let mut depth = 0i64;
        let mut encloses = true;
        for (k, t) in toks.iter().enumerate() {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 && k != toks.len() - 1 {
                    encloses = false;
                    break;
                }
            }
        }
        if encloses {
            return eval_int(&toks[1..toks.len() - 1], env);
        }
    }
    // Split at a top-level operator, lowest precedence first
    // (`<<`, then `+`, then `*`).
    let mut depth = 0i64;
    let mut split: Option<(usize, usize, u8)> = None; // (start, width, prec)
    for (k, t) in toks.iter().enumerate() {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
        } else if depth == 0 {
            let found = if t.is_punct('<') && toks.get(k + 1).is_some_and(|u| u.is_punct('<')) {
                Some((k, 2, 0u8))
            } else if t.is_punct('+') {
                Some((k, 1, 1))
            } else if t.is_punct('*') && k > 0 {
                Some((k, 1, 2))
            } else {
                None
            };
            if let Some(f) = found {
                if split.is_none_or(|s| f.2 < s.2) {
                    split = Some(f);
                }
            }
        }
    }
    if let Some((k, w, prec)) = split {
        let l = eval_int(&toks[..k], env)?;
        let r = eval_int(&toks[k + w..], env)?;
        return Some(match prec {
            0 => l << r,
            1 => l + r,
            _ => l * r,
        });
    }
    if toks.len() == 1 {
        return match toks[0].kind {
            TokKind::Num => parse_int(toks[0].text),
            TokKind::Ident => env.get(toks[0].text).copied(),
            _ => None,
        };
    }
    None
}

fn parse_int(s: &str) -> Option<u64> {
    let s = s.replace('_', "");
    let s = s
        .trim_end_matches("usize")
        .trim_end_matches("u64")
        .trim_end_matches("u32")
        .trim_end_matches("u16")
        .trim_end_matches("u8");
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_byte_string(raw: &str) -> Option<Vec<u8>> {
    let inner = raw.strip_prefix("b\"")?.strip_suffix('"')?;
    // The wire magic is plain ASCII; escapes are out of scope.
    Some(inner.as_bytes().to_vec())
}

/// The wire constants R4 needs, resolved from source.
#[derive(Debug)]
struct WireConsts {
    magic: Vec<u8>,
    version: u64,
    header_bytes: usize,
    path_entry_bytes: usize,
    mac_trailer_bytes: usize,
    pkt_id_bytes: usize,
    time_bytes: usize,
    sample_record_bytes: usize,
    path_ref_bytes: usize,
    pkt_cnt_bytes: usize,
    time_unit_ns: u64,
    time_mod: u64,
}

/// One parsed golden frame, structure only.
#[derive(Debug, PartialEq)]
struct ParsedFrame {
    flags: u8,
    hop: [u8; 2],
    seq: [u8; 8],
    tag: [u8; 8],
    path_table: Vec<Vec<u8>>,
    /// (path_ref, records) per sample receipt.
    samples: Vec<(u32, Vec<(u64, u64)>)>,
    /// (path_ref, id_first, id_last, pkt_cnt, window) per aggregate.
    aggs: Vec<(u32, u64, u64, u64, Vec<u64>)>,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.off + n > self.bytes.len() {
            return Err(format!(
                "frame truncated at byte {} (needed {n} more)",
                self.off
            ));
        }
        let s = &self.bytes[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn le(&mut self, n: usize) -> Result<u64, String> {
        let s = self.take(n)?;
        let mut v = 0u64;
        for (i, b) in s.iter().enumerate() {
            v |= (*b as u64) << (8 * i);
        }
        Ok(v)
    }
}

fn walk_frame(bytes: &[u8], precise: bool, c: &WireConsts) -> Result<ParsedFrame, String> {
    let mut cur = Cursor { bytes, off: 0 };
    let magic = cur.take(c.magic.len())?;
    if magic != c.magic.as_slice() {
        return Err(format!(
            "magic {magic:02x?} does not match the declared MAGIC {:02x?}",
            c.magic
        ));
    }
    let version = cur.le(1)?;
    if version != c.version {
        return Err(format!(
            "version byte {version} does not match declared VERSION {}",
            c.version
        ));
    }
    let flags = cur.le(1)? as u8;
    let expected_profile_bit = u8::from(precise);
    if flags & 0b1 != expected_profile_bit {
        return Err(format!(
            "profile flag bit is {:#04b}, expected bit0={expected_profile_bit}",
            flags
        ));
    }
    if flags & !0b11 != 0 {
        return Err(format!("flags {flags:#010b} set bits v1 does not assign"));
    }
    let hop: [u8; 2] = cur.take(2)?.try_into().map_err(|_| "hop".to_string())?;
    let seq: [u8; 8] = cur.take(8)?.try_into().map_err(|_| "seq".to_string())?;
    let tag: [u8; 8] = cur.take(8)?.try_into().map_err(|_| "tag".to_string())?;
    if cur.off != c.header_bytes {
        return Err(format!(
            "header fields end at byte {} but HEADER_BYTES is {}",
            cur.off, c.header_bytes
        ));
    }

    let path_count = cur.le(2)? as usize;
    let mut path_table = Vec::with_capacity(path_count);
    for _ in 0..path_count {
        path_table.push(cur.take(c.path_entry_bytes)?.to_vec());
    }

    let (pkt_id_bytes, time_bytes, pkt_cnt_bytes, digest_bytes) = if precise {
        (8usize, 8usize, 8usize, 8usize)
    } else {
        (
            c.pkt_id_bytes,
            c.time_bytes,
            c.pkt_cnt_bytes,
            c.pkt_id_bytes,
        )
    };

    let sample_count = cur.le(4)? as usize;
    let mut dir = Vec::with_capacity(sample_count);
    for _ in 0..sample_count {
        dir.push(cur.le(4)? as usize);
    }
    let mut samples = Vec::with_capacity(sample_count);
    for records in dir {
        let path_ref = cur.le(c.path_ref_bytes)? as u32;
        if path_ref as usize >= path_count {
            return Err(format!("path ref {path_ref} outside table of {path_count}"));
        }
        let mut recs = Vec::with_capacity(records);
        for _ in 0..records {
            let pkt_id = cur.le(pkt_id_bytes)?;
            let time = cur.le(time_bytes)?;
            recs.push((pkt_id, time));
        }
        samples.push((path_ref, recs));
    }

    let agg_count = cur.le(4)? as usize;
    let mut aggs = Vec::with_capacity(agg_count);
    for _ in 0..agg_count {
        let path_ref = cur.le(c.path_ref_bytes)? as u32;
        if path_ref as usize >= path_count {
            return Err(format!(
                "agg path ref {path_ref} outside table of {path_count}"
            ));
        }
        let first = cur.le(pkt_id_bytes)?;
        let last = cur.le(pkt_id_bytes)?;
        let pkt_cnt = cur.le(pkt_cnt_bytes)?;
        let window_len = cur.le(4)? as usize;
        let mut window = Vec::with_capacity(window_len);
        for _ in 0..window_len {
            window.push(cur.le(digest_bytes)?);
        }
        aggs.push((path_ref, first, last, pkt_cnt, window));
    }

    if cur.off != bytes.len() {
        return Err(format!(
            "{} trailing byte(s) the declared layout does not account for",
            bytes.len() - cur.off
        ));
    }
    Ok(ParsedFrame {
        flags,
        hop,
        seq,
        tag,
        path_table,
        samples,
        aggs,
    })
}

/// Compare the compact frame against the precise frame of the same
/// batch under the documented truncation rules.
fn differential(compact: &ParsedFrame, precise: &ParsedFrame, c: &WireConsts) -> Vec<String> {
    let mut errs = Vec::new();
    if compact.hop != precise.hop || compact.seq != precise.seq || compact.tag != precise.tag {
        errs.push("compact and precise frames disagree on hop/seq/auth-tag".to_string());
    }
    if compact.path_table != precise.path_table {
        errs.push(
            "compact and precise path tables differ (the table is profile-independent)".to_string(),
        );
    }
    if compact.samples.len() != precise.samples.len() || compact.aggs.len() != precise.aggs.len() {
        errs.push("compact and precise frames carry different receipt counts".to_string());
        return errs;
    }
    for (i, (cs, ps)) in compact.samples.iter().zip(&precise.samples).enumerate() {
        if cs.0 != ps.0 || cs.1.len() != ps.1.len() {
            errs.push(format!(
                "sample receipt {i}: path ref or record count differs"
            ));
            continue;
        }
        for (j, (cr, pr)) in cs.1.iter().zip(&ps.1).enumerate() {
            if cr.0 != pr.0 & 0xFFFF_FFFF {
                errs.push(format!(
                    "sample {i}.{j}: compact PktID {:#x} is not lo-32 of precise {:#x}",
                    cr.0, pr.0
                ));
            }
            let want = (pr.1 / c.time_unit_ns) % c.time_mod;
            if cr.1 != want {
                errs.push(format!(
                    "sample {i}.{j}: compact time {} is not µs mod 2²⁴ of precise {} ns",
                    cr.1, pr.1
                ));
            }
        }
    }
    for (i, (ca, pa)) in compact.aggs.iter().zip(&precise.aggs).enumerate() {
        if ca.0 != pa.0 {
            errs.push(format!("aggregate {i}: path ref differs"));
        }
        if ca.1 != pa.1 & 0xFFFF_FFFF || ca.2 != pa.2 & 0xFFFF_FFFF {
            errs.push(format!(
                "aggregate {i}: AggID digests are not lo-32 truncations"
            ));
        }
        if ca.3 != pa.3 {
            errs.push(format!(
                "aggregate {i}: packet counts differ ({} vs {})",
                ca.3, pa.3
            ));
        }
        if ca.4.len() != pa.4.len() {
            errs.push(format!("aggregate {i}: window lengths differ"));
        } else {
            for (j, (cd, pd)) in ca.4.iter().zip(&pa.4).enumerate() {
                if *cd != pd & 0xFFFF_FFFF {
                    errs.push(format!(
                        "aggregate {i} window digest {j} is not a lo-32 truncation"
                    ));
                }
            }
        }
    }
    errs
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

/// Run R4 against a tree rooted at `root`.
pub fn r4(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    let viol = |file: &str, check: &str, message: String| Violation {
        rule: "R4",
        check: check.to_string(),
        file: file.to_string(),
        line: 1,
        message,
    };

    // 1. Extract the declared constants.
    let mut env: HashMap<String, u64> = HashMap::new();
    let mut all: HashMap<String, ConstVal> = HashMap::new();
    for rel in [
        "crates/hash/src/sha256.rs",
        "crates/hash/src/lib.rs",
        "crates/core/src/receipt.rs",
        "crates/wire/src/codec.rs",
    ] {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(src) => {
                all.extend(extract_consts(&src, &mut env));
            }
            Err(e) => {
                out.push(viol(
                    rel,
                    "missing-source",
                    format!("cannot read {rel}: {e}"),
                ));
            }
        }
    }
    let int = |name: &str| -> Option<u64> {
        match all.get(name) {
            Some(ConstVal::Int(n)) => Some(*n),
            _ => None,
        }
    };
    let needed = [
        "VERSION",
        "HEADER_BYTES",
        "PATH_ENTRY_BYTES",
        "MAC_TRAILER_BYTES",
        "PKT_ID_BYTES",
        "TIME_BYTES",
        "SAMPLE_RECORD_BYTES",
        "PATH_REF_BYTES",
        "PKT_CNT_BYTES",
        "TIME_UNIT_NS",
        "TIME_MOD",
    ];
    let missing: Vec<&str> = needed
        .iter()
        .filter(|n| int(n).is_none())
        .copied()
        .collect();
    let magic = match all.get("MAGIC") {
        Some(ConstVal::Bytes(b)) => b.clone(),
        _ => {
            out.push(viol(
                "crates/wire/src/codec.rs",
                "missing-const",
                "MAGIC byte-string constant not found in source".to_string(),
            ));
            return out;
        }
    };
    if !missing.is_empty() {
        out.push(viol(
            "crates/wire/src/codec.rs",
            "missing-const",
            format!("wire constants not resolvable from source: {missing:?}"),
        ));
        return out;
    }
    let c = WireConsts {
        magic,
        version: int("VERSION").unwrap_or(0),
        header_bytes: int("HEADER_BYTES").unwrap_or(0) as usize,
        path_entry_bytes: int("PATH_ENTRY_BYTES").unwrap_or(0) as usize,
        mac_trailer_bytes: int("MAC_TRAILER_BYTES").unwrap_or(0) as usize,
        pkt_id_bytes: int("PKT_ID_BYTES").unwrap_or(0) as usize,
        time_bytes: int("TIME_BYTES").unwrap_or(0) as usize,
        sample_record_bytes: int("SAMPLE_RECORD_BYTES").unwrap_or(0) as usize,
        path_ref_bytes: int("PATH_REF_BYTES").unwrap_or(0) as usize,
        pkt_cnt_bytes: int("PKT_CNT_BYTES").unwrap_or(0) as usize,
        time_unit_ns: int("TIME_UNIT_NS").unwrap_or(1),
        time_mod: int("TIME_MOD").unwrap_or(1),
    };

    // Internal consistency of the declared constants themselves.
    if c.sample_record_bytes != c.pkt_id_bytes + c.time_bytes {
        out.push(viol(
            "crates/core/src/receipt.rs",
            "const-sum",
            format!(
                "SAMPLE_RECORD_BYTES {} ≠ PKT_ID_BYTES {} + TIME_BYTES {}",
                c.sample_record_bytes, c.pkt_id_bytes, c.time_bytes
            ),
        ));
    }

    // 2. Structurally walk the golden fixture.
    let golden_rel = "tests/golden/wire_v1.hex";
    let golden = match std::fs::read_to_string(root.join(golden_rel)) {
        Ok(g) => g,
        Err(e) => {
            out.push(viol(
                golden_rel,
                "missing-golden",
                format!("cannot read fixture: {e}"),
            ));
            return out;
        }
    };
    let mut frames: HashMap<&str, Vec<u8>> = HashMap::new();
    for line in golden.lines() {
        if let Some((label, hex)) = line.trim().split_once(' ') {
            match hex_decode(hex.trim()) {
                Some(bytes) => {
                    frames.insert(label, bytes);
                }
                None => out.push(viol(
                    golden_rel,
                    "golden-hex",
                    format!("line '{label}' is not valid hex"),
                )),
            }
        }
    }
    let (Some(compact_bytes), Some(precise_bytes)) = (frames.get("compact"), frames.get("precise"))
    else {
        out.push(viol(
            golden_rel,
            "golden-missing-frame",
            "fixture must carry one 'compact' and one 'precise' frame".to_string(),
        ));
        return out;
    };
    let compact = match walk_frame(compact_bytes, false, &c) {
        Ok(f) => Some(f),
        Err(e) => {
            out.push(viol(
                golden_rel,
                "golden-walk",
                format!("compact frame: {e}"),
            ));
            None
        }
    };
    let precise = match walk_frame(precise_bytes, true, &c) {
        Ok(f) => Some(f),
        Err(e) => {
            out.push(viol(
                golden_rel,
                "golden-walk",
                format!("precise frame: {e}"),
            ));
            None
        }
    };

    // 3. Differential: same batch, two profiles.
    if let (Some(compact), Some(precise)) = (&compact, &precise) {
        for e in differential(compact, precise, &c) {
            out.push(viol(golden_rel, "golden-differential", e));
        }
    }

    // 4. README documented sizes.
    let readme_rel = "README.md";
    match std::fs::read_to_string(root.join(readme_rel)) {
        Ok(readme) => {
            let want: [(String, &str); 5] = [
                (format!("{}-B header", c.header_bytes), "header size"),
                (
                    format!("{} B per distinct path", c.path_entry_bytes),
                    "path-table entry size",
                ),
                (
                    format!("= {} B", c.sample_record_bytes),
                    "compact sample record size",
                ),
                (
                    format!(
                        "{} B + {} B per window digest",
                        c.path_ref_bytes + 2 * c.pkt_id_bytes + c.pkt_cnt_bytes + 4,
                        c.pkt_id_bytes
                    ),
                    "compact aggregate receipt size",
                ),
                (format!("{} B:", c.mac_trailer_bytes), "MAC trailer size"),
            ];
            for (needle, what) in &want {
                if !readme.contains(needle.as_str()) {
                    out.push(viol(
                        readme_rel,
                        "readme-drift",
                        format!(
                            "README no longer documents the {what} as '{needle}' — \
                             the declared constants and the README tables drifted apart"
                        ),
                    ));
                }
            }
        }
        Err(e) => out.push(viol(
            readme_rel,
            "missing-readme",
            format!("cannot read README: {e}"),
        )),
    }

    out
}
