//! Diagnostics, suppression accounting, and output rendering.

use std::collections::BTreeMap;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule ID (`R1`…`R6`, or `A0` for a malformed directive).
    pub rule: &'static str,
    /// Sub-check within the rule (e.g. `unwrap`, `index`, `clock`).
    pub check: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// One audited suppression, as resolved against the tree.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule the suppression targets.
    pub rule: String,
    /// File it lives in.
    pub file: String,
    /// Line of the directive comment.
    pub line: u32,
    /// `line`, `item`, or `file`.
    pub scope: &'static str,
    /// The mandatory justification.
    pub reason: String,
    /// Lines the directive reaches (inclusive).
    pub covers: (u32, u32),
    /// Whether it suppressed at least one violation this run.
    pub used: bool,
}

/// The result of a full lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed violations — any entry fails the gate.
    pub violations: Vec<Violation>,
    /// Every allow directive in the tree (the audited allowlist).
    pub allows: Vec<Allow>,
    /// Violations that an allow suppressed (kept for `--audit`).
    pub suppressed: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the gate passes.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation counts per rule ID.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for v in &self.violations {
            *m.entry(v.rule).or_insert(0) += 1;
        }
        m
    }

    /// Render the human-readable report.
    pub fn render_human(&self, audit: bool) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}: {} [{}/{}]\n",
                v.file, v.line, v.message, v.rule, v.check
            ));
        }
        if audit {
            out.push_str(&format!(
                "\naudited allowlist ({} entries):\n",
                self.allows.len()
            ));
            for a in &self.allows {
                out.push_str(&format!(
                    "  {}:{} allow({}, {}) [{}{}]\n",
                    a.file,
                    a.line,
                    a.rule,
                    a.reason,
                    a.scope,
                    if a.used { "" } else { ", UNUSED" },
                ));
            }
        }
        let unused = self.allows.iter().filter(|a| !a.used).count();
        out.push_str(&format!(
            "vpm-lint: {} file(s), {} violation(s), {} allow(s) ({} unused)\n",
            self.files_scanned,
            self.violations.len(),
            self.allows.len(),
            unused,
        ));
        if !self.violations.is_empty() {
            let counts: Vec<String> = self
                .counts()
                .into_iter()
                .map(|(r, n)| format!("{r}: {n}"))
                .collect();
            out.push_str(&format!("by rule: {}\n", counts.join(", ")));
        }
        out
    }

    /// Render the machine-readable JSON report (stable field order,
    /// hand-rolled so the lint stays dependency-free).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"check\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                esc(v.rule),
                esc(&v.check),
                esc(&v.file),
                v.line,
                esc(&v.message)
            ));
        }
        out.push_str("],\"allows\":[");
        for (i, a) in self.allows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"scope\":\"{}\",\"reason\":\"{}\",\"used\":{}}}",
                esc(&a.rule),
                esc(&a.file),
                a.line,
                a.scope,
                esc(&a.reason),
                a.used
            ));
        }
        out.push_str(&format!(
            "],\"files_scanned\":{},\"suppressed\":{},\"ok\":{}}}",
            self.files_scanned,
            self.suppressed.len(),
            self.ok()
        ));
        out
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_reports_ok() {
        let mut r = Report::default();
        assert!(r.ok());
        r.violations.push(Violation {
            rule: "R1",
            check: "unwrap".into(),
            file: "a\"b.rs".into(),
            line: 3,
            message: "bad \\ thing".into(),
        });
        let j = r.render_json();
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("bad \\\\ thing"));
        assert!(j.ends_with("\"ok\":false}"));
    }
}
