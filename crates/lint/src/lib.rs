//! `vpm-lint` — the workspace's in-tree invariant analyzer.
//!
//! Four rule families guard invariants the type system cannot:
//!
//! * **R1 — panic-freedom.** No `unwrap`/`expect`/abort-macros/
//!   unchecked indexing in non-test code of the hardened crates
//!   (`vpm-wire`, `vpm-sim`, `vpm-core`). The codec is total on
//!   attacker-controlled bytes; a panic is a remote DoS.
//! * **R2 — determinism.** No wall-clock reads or `HashMap`/`HashSet`
//!   iteration on verdict/wire/golden paths. Hash order is seeded
//!   per-process; anything it feeds can differ run to run.
//! * **R3 — lock discipline.** No `Mutex`/`RwLock` guard live across a
//!   notify, blocking wait, or stream I/O in the same scope (the
//!   busy-wait-removal PR's hazard class).
//! * **R4 — wire-constant drift.** The v1 constants declared in source,
//!   the pinned golden fixture, and the README's frame tables must
//!   agree, checked by structurally walking both golden frames and
//!   cross-validating the compact frame against the precise one.
//! * **R5 — error-variant reachability.** Every variant of the audited
//!   error enums must be constructed or matched by at least one test.
//! * **R6 — shim-surface drift.** The public API of every offline shim
//!   under `shims/` must match the audited manifest
//!   (`shims/MANIFEST.txt`) exactly, both directions — widening a shim
//!   is a reviewed change, not a drive-by edit.
//!
//! False positives are suppressed inline with
//! `// vpm-lint: allow(RULE, reason)` — the reason is mandatory and
//! every suppression lands in the audited allowlist (`--audit`,
//! JSON output). Malformed directives are themselves diagnostics
//! (`A0`), so a typo cannot silently suppress nothing.
//!
//! Dependency-free by design: the lexer in [`lexer`] is a minimal Rust
//! tokenizer, not a parser, which is exactly enough for token-sequence
//! rules and keeps the analyzer inside the repo's offline shim policy.

pub mod errcheck;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod shimcheck;
pub mod walk;
pub mod wirecheck;

pub use report::{Allow, Report, Violation};
pub use walk::WalkError;

use lexer::AllowScope;
use std::collections::HashSet;
use std::path::Path;

/// The rule IDs a directive may name.
pub const RULE_IDS: [&str; 6] = ["R1", "R2", "R3", "R4", "R5", "R6"];

/// Run the analyzer over the workspace rooted at `root`. `rule`
/// restricts the run to a single rule ID (malformed-directive `A0`
/// diagnostics are always reported).
pub fn run(root: &Path, rule: Option<&str>) -> Result<Report, WalkError> {
    let want = |r: &str| rule.is_none_or(|only| only == r);
    let files = walk::collect(root)?;
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    let mut constructed: HashSet<(String, String)> = HashSet::new();

    for f in &files {
        let src = std::fs::read_to_string(&f.abs)
            .map_err(|e| WalkError::Io(format!("{}: {e}", f.rel)))?;
        let lexed = lexer::lex(&src);
        errcheck::test_scope_paths(&lexed, f.test_only, &mut constructed);

        for bd in &lexed.bad_directives {
            report.violations.push(Violation {
                rule: "A0",
                check: "bad-directive".to_string(),
                file: f.rel.clone(),
                line: bd.line,
                message: bd.problem.clone(),
            });
        }
        if f.test_only {
            continue;
        }

        let mut file_viols = Vec::new();
        if want("R1") && rules::in_scope(&f.rel, &rules::R1_SCOPE) {
            file_viols.extend(rules::r1(&f.rel, &lexed.tokens));
        }
        if want("R2") && rules::in_scope(&f.rel, &rules::R2_SCOPE) {
            file_viols.extend(rules::r2(&f.rel, &lexed.tokens));
        }
        if want("R3") && rules::in_scope(&f.rel, &rules::R3_SCOPE) {
            file_viols.extend(rules::r3(&f.rel, &lexed.tokens));
        }

        let mut allows = resolve_allows(&f.rel, &lexed, &mut report.violations);
        for v in file_viols {
            let hit = allows
                .iter_mut()
                .find(|a| a.rule == v.rule && a.covers.0 <= v.line && v.line <= a.covers.1);
            match hit {
                Some(a) => {
                    a.used = true;
                    report.suppressed.push(v);
                }
                None => report.violations.push(v),
            }
        }
        // Under `--rule`, allows for inactive rules never get a chance
        // to match; keep them out of the audit so they don't read as
        // unused.
        report
            .allows
            .extend(allows.into_iter().filter(|a| want(&a.rule)));
    }

    if want("R4") {
        report.violations.extend(wirecheck::r4(root));
    }
    if want("R5") {
        report.violations.extend(errcheck::r5(root, &constructed));
    }
    if want("R6") {
        report.violations.extend(shimcheck::r6(root));
    }

    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Resolve the file's directives into allowlist entries with concrete
/// line coverage. Directives naming an unknown rule become `A0`
/// diagnostics instead of silently suppressing nothing.
fn resolve_allows(
    rel: &str,
    lexed: &lexer::Lexed<'_>,
    violations: &mut Vec<Violation>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for d in &lexed.directives {
        if !RULE_IDS.contains(&d.rule.as_str()) {
            violations.push(Violation {
                rule: "A0",
                check: "bad-directive".to_string(),
                file: rel.to_string(),
                line: d.line,
                message: format!(
                    "allow names unknown rule '{}' (known: {})",
                    d.rule,
                    RULE_IDS.join(", ")
                ),
            });
            continue;
        }
        let (scope, covers) = match d.scope {
            AllowScope::Line => ("line", (d.line, d.line)),
            AllowScope::File => ("file", (1, u32::MAX)),
            AllowScope::NextItem => (
                "item",
                next_item_range(&lexed.tokens, d.line).unwrap_or((d.line + 1, d.line + 1)),
            ),
        };
        allows.push(Allow {
            rule: d.rule.clone(),
            file: rel.to_string(),
            line: d.line,
            scope,
            reason: d.reason.clone(),
            covers,
            used: false,
        });
    }
    allows
}

/// The line span of the first statement or item starting after
/// `after_line`: through the `;` that ends it or the `}` that closes
/// its top-level brace block.
fn next_item_range(tokens: &[lexer::Token<'_>], after_line: u32) -> Option<(u32, u32)> {
    let start = tokens.iter().position(|t| t.line > after_line)?;
    let first_line = tokens[start].line;
    let mut depth = 0i64;
    for t in &tokens[start..] {
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 && t.is_punct('}') {
                return Some((first_line, t.line));
            }
            if depth < 0 {
                // The enclosing block closed first: the "item" was the
                // tail of this block.
                return Some((first_line, t.line));
            }
        } else if t.is_punct(';') && depth == 0 {
            return Some((first_line, t.line));
        }
    }
    Some((first_line, tokens.last()?.line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn mini_tree(tag: &str, lib_src: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("vpm_lint_lib_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(dir.join("crates/wire/src")).unwrap();
        fs::write(
            dir.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/wire\"]\n",
        )
        .unwrap();
        fs::write(dir.join("crates/wire/src/lib.rs"), lib_src).unwrap();
        dir
    }

    #[test]
    fn violations_report_and_line_allows_suppress() {
        let dir = mini_tree(
            "line",
            "fn f(x: Option<u32>) -> u32 {\n\
             \tx.unwrap() // vpm-lint: allow(R1, demo of a line allow)\n\
             }\n\
             fn g(y: Option<u32>) -> u32 { y.unwrap() }\n",
        );
        let r = run(&dir, Some("R1")).unwrap();
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].line, 4);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.allows.len(), 1);
        assert!(r.allows[0].used);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn item_allow_covers_the_whole_next_fn() {
        let dir = mini_tree(
            "item",
            "// vpm-lint: allow(R1, demo: whole fn is allowed)\n\
             fn f(x: Option<u32>) -> u32 {\n\
             \tlet a = x.unwrap();\n\
             \ta + [1u32, 2][1]\n\
             }\n\
             fn g(y: Option<u32>) -> u32 { y.unwrap() }\n",
        );
        let r = run(&dir, Some("R1")).unwrap();
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].line, 6);
        assert_eq!(r.suppressed.len(), 2, "{:?}", r.suppressed);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_allow_covers_everything_and_unknown_rules_are_a0() {
        let dir = mini_tree(
            "file",
            "// vpm-lint: allow-file(R1, demo file-wide allow)\n\
             // vpm-lint: allow(R9, no such rule)\n\
             fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        let r = run(&dir, Some("R1")).unwrap();
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, "A0");
        assert_eq!(r.suppressed.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reasonless_allow_is_a_diagnostic_and_suppresses_nothing() {
        let dir = mini_tree(
            "noreason",
            "fn f(x: Option<u32>) -> u32 {\n\
             \tx.unwrap() // vpm-lint: allow(R1)\n\
             }\n",
        );
        let r = run(&dir, Some("R1")).unwrap();
        let rules: Vec<&str> = r.violations.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"A0"), "{:?}", r.violations);
        assert!(rules.contains(&"R1"), "{:?}", r.violations);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn test_scope_is_exempt_from_r1() {
        let dir = mini_tree(
            "testscope",
            "#[cfg(test)]\nmod tests {\n\tfn t() { None::<u32>.unwrap(); }\n}\n",
        );
        let r = run(&dir, Some("R1")).unwrap();
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        fs::remove_dir_all(&dir).ok();
    }
}
