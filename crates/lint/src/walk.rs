//! Workspace-aware `.rs` file discovery.
//!
//! The walker reads the root `Cargo.toml` `members` list (a line-based
//! parse is enough for this repo's literal array) and collects every
//! `.rs` file under each member's `src/` and `tests/` directories plus
//! the facade package's `src/`, `tests/`, and `examples/`. Files under
//! a `tests/`, `examples/`, or `benches/` directory are *test scope*
//! in their entirety; everything else is product scope until the lexer
//! says otherwise (`#[cfg(test)]` / `mod tests`).

use std::fs;
use std::path::{Path, PathBuf};

/// One discovered source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// The whole file is test/bench scope (integration tests,
    /// examples, benches).
    pub test_only: bool,
}

/// Errors the walker can hit. The lint gate treats any of these as a
/// failed run — a tree it cannot enumerate is not a verified tree.
#[derive(Debug)]
pub enum WalkError {
    /// The root `Cargo.toml` is missing or unreadable.
    NoManifest(String),
    /// A directory listed in `members` could not be read.
    Io(String),
}

impl std::fmt::Display for WalkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalkError::NoManifest(e) => write!(f, "cannot read workspace manifest: {e}"),
            WalkError::Io(e) => write!(f, "cannot walk workspace: {e}"),
        }
    }
}

/// Parse the `members = [ … ]` array out of the root manifest.
pub fn workspace_members(root: &Path) -> Result<Vec<String>, WalkError> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))
        .map_err(|e| WalkError::NoManifest(e.to_string()))?;
    let mut members = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with("members") && line.contains('[') {
            in_members = true;
        }
        if in_members {
            for part in line.split(',') {
                let part = part.trim();
                if let Some(stripped) = part.split('"').nth(1) {
                    members.push(stripped.to_string());
                }
            }
            if line.contains(']') {
                break;
            }
        }
    }
    Ok(members)
}

/// Collect every workspace `.rs` file.
pub fn collect(root: &Path) -> Result<Vec<SourceFile>, WalkError> {
    let mut files = Vec::new();
    let mut dirs: Vec<(PathBuf, bool)> = vec![
        (root.join("src"), false),
        (root.join("tests"), true),
        (root.join("examples"), true),
        (root.join("benches"), true),
    ];
    for member in workspace_members(root)? {
        let base = root.join(&member);
        dirs.push((base.join("src"), false));
        dirs.push((base.join("tests"), true));
        dirs.push((base.join("benches"), true));
        let p = base.join("build.rs");
        if p.is_file() {
            push_file(root, &p, false, &mut files);
        }
    }
    for (dir, test_only) in dirs {
        if dir.is_dir() {
            walk_dir(root, &dir, test_only, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    files.dedup_by(|a, b| a.rel == b.rel);
    Ok(files)
}

fn walk_dir(
    root: &Path,
    dir: &Path,
    test_only: bool,
    out: &mut Vec<SourceFile>,
) -> Result<(), WalkError> {
    let entries =
        fs::read_dir(dir).map_err(|e| WalkError::Io(format!("{}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| WalkError::Io(e.to_string()))?;
        let path = entry.path();
        if path.is_dir() {
            // `target/` never appears under src/tests, but guard anyway.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk_dir(root, &path, test_only, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            push_file(root, &path, test_only, out);
        }
    }
    Ok(())
}

fn push_file(root: &Path, abs: &Path, test_only: bool, out: &mut Vec<SourceFile>) {
    let rel = abs
        .strip_prefix(root)
        .unwrap_or(abs)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    out.push(SourceFile {
        rel,
        abs: abs.to_path_buf(),
        test_only,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_parse_from_a_literal_array() {
        let dir = std::env::temp_dir().join(format!("vpm_lint_walk_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("Cargo.toml"),
            "[workspace]\nmembers = [\n    \"crates/a\",\n    \"crates/b\",\n]\n",
        )
        .unwrap();
        let m = workspace_members(&dir).unwrap();
        assert_eq!(m, vec!["crates/a".to_string(), "crates/b".to_string()]);
        fs::remove_dir_all(&dir).ok();
    }
}
