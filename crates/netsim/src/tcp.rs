//! Window-based TCP Reno flow model.
//!
//! Implements the sender and receiver state machines needed for
//! realistic congestion dynamics: slow start, congestion avoidance,
//! duplicate-ACK fast retransmit with window halving, and RTO fallback
//! to a window of one. The model is packet-granular (sequence numbers
//! count segments, not bytes) — the standard formulation for
//! discrete-event congestion studies, and the role NS plays in the
//! paper's evaluation.

use std::collections::BTreeSet;
use vpm_packet::SimDuration;

/// Sender reaction to an incoming cumulative ACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckReaction {
    /// The ACK advanced the window; sender may transmit more.
    NewData,
    /// A duplicate ACK below the fast-retransmit threshold.
    DupAck,
    /// Third duplicate ACK: retransmit this sequence number now.
    FastRetransmit(u64),
}

/// TCP Reno sender state.
#[derive(Debug, Clone)]
pub struct RenoSender {
    /// Congestion window in segments (fractional during CA growth).
    pub cwnd: f64,
    /// Slow-start threshold in segments.
    pub ssthresh: f64,
    /// Next new sequence number to transmit.
    pub next_seq: u64,
    /// Highest cumulative ACK received (next expected by receiver).
    pub cum_acked: u64,
    /// Duplicate-ACK counter.
    dup_acks: u32,
    /// In fast recovery until `recovery_point` is acked.
    in_recovery: bool,
    recovery_point: u64,
    /// Fixed retransmission timeout.
    pub rto: SimDuration,
    /// Segment size in bytes.
    pub seg_bytes: usize,
}

impl RenoSender {
    /// Fresh sender with initial window 2 and a fixed RTO.
    pub fn new(seg_bytes: usize, rto: SimDuration) -> Self {
        RenoSender {
            cwnd: 2.0,
            ssthresh: 64.0,
            next_seq: 0,
            cum_acked: 0,
            dup_acks: 0,
            in_recovery: false,
            recovery_point: 0,
            rto,
            seg_bytes,
        }
    }

    /// Segments in flight (new data only).
    pub fn inflight(&self) -> u64 {
        self.next_seq - self.cum_acked
    }

    /// May the sender transmit a new segment?
    pub fn can_send(&self) -> bool {
        self.inflight() < self.cwnd.floor().max(1.0) as u64
    }

    /// Take the next new sequence number.
    pub fn take_next(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Process a cumulative ACK.
    pub fn on_ack(&mut self, cum: u64) -> AckReaction {
        if cum > self.cum_acked {
            let newly = cum - self.cum_acked;
            self.cum_acked = cum;
            self.dup_acks = 0;
            if self.in_recovery && cum >= self.recovery_point {
                self.in_recovery = false;
            }
            if !self.in_recovery {
                if self.cwnd < self.ssthresh {
                    self.cwnd += newly as f64; // slow start
                } else {
                    self.cwnd += newly as f64 / self.cwnd; // congestion avoidance
                }
            }
            AckReaction::NewData
        } else {
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.in_recovery {
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.ssthresh;
                self.in_recovery = true;
                self.recovery_point = self.next_seq;
                AckReaction::FastRetransmit(self.cum_acked)
            } else {
                AckReaction::DupAck
            }
        }
    }

    /// Retransmission timeout fired: collapse to slow start and return
    /// the sequence number to retransmit.
    pub fn on_timeout(&mut self) -> u64 {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.dup_acks = 0;
        self.in_recovery = false;
        self.cum_acked // first unacked segment
    }
}

/// TCP receiver producing cumulative ACKs from possibly out-of-order
/// data.
#[derive(Debug, Clone, Default)]
pub struct RenoReceiver {
    expected: u64,
    out_of_order: BTreeSet<u64>,
}

impl RenoReceiver {
    /// Fresh receiver expecting sequence 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register arrival of `seq`; returns the cumulative ACK to send
    /// (the next expected sequence number).
    pub fn on_data(&mut self, seq: u64) -> u64 {
        if seq == self.expected {
            self.expected += 1;
            while self.out_of_order.remove(&self.expected) {
                self.expected += 1;
            }
        } else if seq > self.expected {
            self.out_of_order.insert(seq);
        }
        // seq < expected: stale duplicate, re-ACK current edge.
        self.expected
    }

    /// Next expected sequence number.
    pub fn expected(&self) -> u64 {
        self.expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender() -> RenoSender {
        RenoSender::new(1500, SimDuration::from_millis(200))
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut s = sender();
        assert_eq!(s.cwnd, 2.0);
        // ACK two segments: cwnd 2 → 4 (slow start adds 1 per segment).
        s.take_next();
        s.take_next();
        s.on_ack(1);
        s.on_ack(2);
        assert_eq!(s.cwnd, 4.0);
    }

    #[test]
    fn congestion_avoidance_linear() {
        let mut s = sender();
        s.ssthresh = 2.0; // force CA immediately
        s.take_next();
        s.take_next();
        s.on_ack(1);
        s.on_ack(2);
        // Each ACK adds 1/cwnd: strictly less than slow-start growth.
        assert!(s.cwnd > 2.0 && s.cwnd < 3.1, "cwnd {}", s.cwnd);
    }

    #[test]
    fn triple_dup_ack_halves_window() {
        let mut s = sender();
        s.cwnd = 16.0;
        s.ssthresh = 8.0;
        for _ in 0..20 {
            s.take_next();
        }
        s.on_ack(5); // advance
        assert_eq!(s.on_ack(5), AckReaction::DupAck);
        assert_eq!(s.on_ack(5), AckReaction::DupAck);
        match s.on_ack(5) {
            AckReaction::FastRetransmit(seq) => assert_eq!(seq, 5),
            other => panic!("expected fast retransmit, got {other:?}"),
        }
        assert!((s.cwnd - 8.0).abs() < 1.0, "cwnd {}", s.cwnd);
        // Further dup ACKs do not retrigger.
        assert_eq!(s.on_ack(5), AckReaction::DupAck);
    }

    #[test]
    fn timeout_collapses_to_one() {
        let mut s = sender();
        s.cwnd = 20.0;
        for _ in 0..10 {
            s.take_next();
        }
        let rexmit = s.on_timeout();
        assert_eq!(rexmit, 0);
        assert_eq!(s.cwnd, 1.0);
        assert_eq!(s.ssthresh, 10.0);
    }

    #[test]
    fn receiver_cumulative_ack() {
        let mut r = RenoReceiver::new();
        assert_eq!(r.on_data(0), 1);
        assert_eq!(r.on_data(2), 1); // gap at 1
        assert_eq!(r.on_data(3), 1);
        assert_eq!(r.on_data(1), 4); // hole filled, jumps past buffered
        assert_eq!(r.on_data(1), 4); // stale duplicate re-ACKs
        assert_eq!(r.expected(), 4);
    }

    #[test]
    fn recovery_exit_on_full_ack() {
        let mut s = sender();
        s.cwnd = 8.0;
        s.ssthresh = 4.0;
        for _ in 0..8 {
            s.take_next();
        }
        s.on_ack(2);
        s.on_ack(2);
        s.on_ack(2);
        assert!(matches!(
            s.on_ack(2),
            AckReaction::DupAck | AckReaction::FastRetransmit(_)
        ));
        // Cumulative ACK covering the recovery point exits recovery and
        // resumes window growth.
        s.on_ack(8);
        let before = s.cwnd;
        s.take_next();
        s.on_ack(9);
        assert!(s.cwnd > before);
    }
}
