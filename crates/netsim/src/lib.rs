//! Discrete-event network simulator — the NS substitute for VPM.
//!
//! The paper produces its evaluation inputs in two steps (§7.2):
//! packet *loss* is injected with the Gilbert-Elliott model, and packet
//! *delay* comes from NS simulations of congestion scenarios ("long-
//! lived TCP or UDP flows compete for/saturate the bandwidth of a
//! bottleneck link"). This crate rebuilds that machinery from scratch:
//!
//! * [`event`] — a deterministic discrete-event queue;
//! * [`queue`] — an analytic drop-tail FIFO bottleneck (rate +
//!   bounded queueing delay);
//! * [`gilbert`] — the Gilbert-Elliott two-state Markov loss channel
//!   (paper ref \[9\]);
//! * [`reorder`] — bounded packet reordering (packets farther apart
//!   than the safety threshold `J` never reorder, per ref \[10\]);
//! * [`clock`] — per-HOP clocks with offset/drift/jitter (NTP-grade
//!   synchronization is *not* assumed by VPM, only encouraged);
//! * [`sources`] — non-adaptive traffic sources (CBR, bursty on/off
//!   UDP);
//! * [`tcp`] — a window-based TCP Reno flow model (slow start,
//!   congestion avoidance, fast retransmit, RTO);
//! * [`congestion`] — the end-to-end scenario runner that pushes a
//!   foreground trace plus cross traffic through a bottleneck and
//!   extracts the per-packet delay series the VPM experiments consume;
//! * [`channel`] — composition of delay/loss/reordering into a single
//!   "what one domain does to traffic" transformation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod clock;
pub mod congestion;
pub mod event;
pub mod gilbert;
pub mod queue;
pub mod reorder;
pub mod sources;
pub mod tcp;

pub use channel::{ChannelConfig, DelayModel, Delivery};
pub use clock::HopClock;
pub use congestion::{BottleneckConfig, CrossTraffic, PacketFate};
pub use gilbert::GilbertElliott;
pub use queue::DropTail;
pub use reorder::ReorderModel;
