//! Analytic drop-tail FIFO bottleneck.
//!
//! A FIFO served at a fixed rate admits an exact analytic treatment:
//! the backlog at any instant is `(busy_until - now)`, expressed in
//! time. Bounding the queue by *maximum queueing delay* is equivalent
//! to bounding it in bytes at a fixed service rate, and makes the
//! drop condition exact without tracking individual buffer slots.

use serde::{Deserialize, Serialize};
use vpm_packet::{SimDuration, SimTime};

/// A drop-tail FIFO with fixed service rate and bounded queueing delay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DropTail {
    /// Service rate in bits per second.
    rate_bps: f64,
    /// Maximum queueing delay before tail drop.
    limit: SimDuration,
    /// Virtual time until which the server is busy.
    busy_until: SimTime,
    /// Counters.
    admitted: u64,
    dropped: u64,
}

/// Outcome of offering a packet to the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOutcome {
    /// Admitted; will finish transmission at the given time.
    Departs(SimTime),
    /// Tail-dropped: admitting it would exceed the delay bound.
    Dropped,
}

impl DropTail {
    /// Create a queue. `rate_bps` must be positive.
    pub fn new(rate_bps: f64, limit: SimDuration) -> Self {
        assert!(rate_bps > 0.0, "queue rate must be positive");
        DropTail {
            rate_bps,
            limit,
            busy_until: SimTime::ZERO,
            admitted: 0,
            dropped: 0,
        }
    }

    /// Transmission time of `bytes` at the service rate.
    pub fn service_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.rate_bps)
    }

    /// Current backlog (as waiting time) seen by a packet arriving now.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Offer a packet of `bytes` arriving at `now` (arrivals must be
    /// fed in non-decreasing time order).
    pub fn offer(&mut self, now: SimTime, bytes: usize) -> QueueOutcome {
        let wait = self.backlog(now);
        if wait > self.limit {
            self.dropped += 1;
            return QueueOutcome::Dropped;
        }
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        let depart = start + self.service_time(bytes);
        self.busy_until = depart;
        self.admitted += 1;
        QueueOutcome::Departs(depart)
    }

    /// Packets admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Service rate in bits per second.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(mbps: f64, limit_ms: u64) -> DropTail {
        DropTail::new(mbps * 1e6, SimDuration::from_millis(limit_ms))
    }

    #[test]
    fn idle_queue_serves_immediately() {
        let mut dt = q(8.0, 10); // 8 Mbps → 1 byte per µs
        match dt.offer(SimTime::from_millis(1), 1000) {
            QueueOutcome::Departs(t) => {
                assert_eq!(t, SimTime::from_millis(1) + SimDuration::from_micros(1000));
            }
            QueueOutcome::Dropped => panic!("dropped on idle queue"),
        }
    }

    #[test]
    fn backlog_accumulates_and_drains() {
        let mut dt = q(8.0, 100);
        let t0 = SimTime::ZERO;
        // Two back-to-back 1000 B packets: second waits for the first.
        let d1 = match dt.offer(t0, 1000) {
            QueueOutcome::Departs(t) => t,
            _ => panic!(),
        };
        let d2 = match dt.offer(t0, 1000) {
            QueueOutcome::Departs(t) => t,
            _ => panic!(),
        };
        assert_eq!(d2, d1 + SimDuration::from_micros(1000));
        // After the queue drains, service is immediate again.
        let later = d2 + SimDuration::from_millis(5);
        assert_eq!(dt.backlog(later), SimDuration::ZERO);
    }

    #[test]
    fn tail_drop_beyond_limit() {
        let mut dt = q(8.0, 1); // limit: 1 ms of backlog
        let t0 = SimTime::ZERO;
        let mut dropped = 0;
        // 1000 B @ 8 Mbps = 1 ms each: the 3rd packet sees 2 ms backlog.
        for _ in 0..5 {
            if let QueueOutcome::Dropped = dt.offer(t0, 1000) {
                dropped += 1;
            }
        }
        assert!(dropped >= 2, "dropped {dropped}");
        assert_eq!(dt.admitted() + dt.dropped(), 5);
    }

    #[test]
    fn utilization_bounded_by_rate() {
        // Saturate a 10 Mbps queue for a simulated second; the sum of
        // serviced bytes must not exceed capacity.
        let mut dt = q(10.0, 50);
        let mut t = SimTime::ZERO;
        let mut sent_bytes = 0u64;
        let mut last_depart = SimTime::ZERO;
        while t < SimTime::from_secs(1) {
            if let QueueOutcome::Departs(d) = dt.offer(t, 1250) {
                sent_bytes += 1250;
                last_depart = last_depart.max(d);
            }
            t += SimDuration::from_micros(100); // 100 Mbps offered
        }
        let capacity = 10e6 * last_depart.as_secs_f64() / 8.0;
        assert!(
            (sent_bytes as f64) <= capacity * 1.01,
            "{sent_bytes} B > {capacity} B"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        DropTail::new(0.0, SimDuration::from_millis(1));
    }
}
