//! Channel composition: what one domain does to a packet stream.
//!
//! VPM experiments need to transform "the sequence observed at the
//! ingress HOP" into "the sequence observed at the egress HOP": delay
//! each packet (constant, jittered, or per-packet from a congestion
//! simulation), possibly lose it (Gilbert-Elliott or queue drops from
//! the congestion sim), and possibly reorder near-simultaneous
//! deliveries. This module composes those pieces into one call.

use crate::congestion::PacketFate;
use crate::gilbert::GilbertElliott;
use crate::reorder::ReorderModel;
use vpm_packet::{SimDuration, SimTime};

/// Per-packet delay model inside a domain.
#[derive(Debug, Clone)]
pub enum DelayModel {
    /// Fixed transit delay.
    Constant(SimDuration),
    /// Uniform jitter: `base + U[0, jitter]`.
    Jitter {
        /// Minimum transit delay.
        base: SimDuration,
        /// Additional uniform jitter bound.
        jitter: SimDuration,
    },
    /// Per-packet fates from a congestion simulation
    /// ([`crate::congestion::run_bottleneck`]); `Dropped` entries are
    /// queue drops inside the domain.
    Series(Vec<PacketFate>),
}

/// Full channel configuration.
#[derive(Debug, Clone)]
pub struct ChannelConfig {
    /// Delay model.
    pub delay: DelayModel,
    /// Optional Gilbert-Elliott loss: `(rate, mean burst)`.
    pub loss: Option<(f64, f64)>,
    /// Reordering model.
    pub reorder: ReorderModel,
    /// Seed for the channel's randomness.
    pub seed: u64,
}

impl ChannelConfig {
    /// Lossless constant-delay channel (an ideal domain).
    pub fn ideal(delay: SimDuration) -> Self {
        ChannelConfig {
            delay: DelayModel::Constant(delay),
            loss: None,
            reorder: ReorderModel::none(),
            seed: 0,
        }
    }
}

/// One surviving packet at the channel output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Index into the channel's input sequence.
    pub idx: usize,
    /// Exit (observation) time at the far end.
    pub ts_out: SimTime,
}

/// Apply the channel to input observation times. Returns one entry per
/// input packet: the exit time, or `None` if the packet was lost inside
/// the domain.
pub fn apply(ts_in: &[SimTime], cfg: &ChannelConfig) -> Vec<Option<SimTime>> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x9e37_79b9);
    let mut ge = cfg
        .loss
        .map(|(rate, burst)| GilbertElliott::with_target(rate, burst, cfg.seed ^ 0x51ce));

    let mut out: Vec<Option<SimTime>> = Vec::with_capacity(ts_in.len());
    for (i, &t) in ts_in.iter().enumerate() {
        // Loss first (a dropped packet never picks up delay).
        if let Some(ge) = ge.as_mut() {
            if !ge.survives() {
                out.push(None);
                continue;
            }
        }
        let delay = match &cfg.delay {
            DelayModel::Constant(d) => Some(*d),
            DelayModel::Jitter { base, jitter } => {
                let extra = if jitter.as_nanos() == 0 {
                    0
                } else {
                    rng.gen_range(0..=jitter.as_nanos())
                };
                Some(*base + SimDuration::from_nanos(extra))
            }
            DelayModel::Series(fates) => {
                fates.get(i).copied().unwrap_or(PacketFate::Dropped).delay()
            }
        };
        out.push(delay.map(|d| t + d));
    }

    // Reordering: perturb exit times of survivors.
    if cfg.reorder.p_reorder > 0.0 {
        let survivors: Vec<usize> = (0..out.len()).filter(|&i| out[i].is_some()).collect();
        let times: Vec<SimTime> = survivors
            .iter()
            .map(|&i| out[i].expect("filtered"))
            .collect();
        let perturbed = cfg.reorder.perturb(&times, cfg.seed ^ 0x0e0e);
        for (k, &i) in survivors.iter().enumerate() {
            out[i] = Some(perturbed[k]);
        }
    }
    out
}

/// Sort surviving packets into far-end arrival order.
pub fn arrivals(out: &[Option<SimTime>]) -> Vec<Delivery> {
    let mut v: Vec<Delivery> = out
        .iter()
        .enumerate()
        .filter_map(|(idx, t)| t.map(|ts_out| Delivery { idx, ts_out }))
        .collect();
    v.sort_by_key(|d| (d.ts_out, d.idx));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(n: usize, gap_us: u64) -> Vec<SimTime> {
        (0..n)
            .map(|i| SimTime::from_micros(gap_us * i as u64))
            .collect()
    }

    #[test]
    fn ideal_channel_shifts_uniformly() {
        let ts = times(100, 10);
        let out = apply(&ts, &ChannelConfig::ideal(SimDuration::from_millis(2)));
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.unwrap(), ts[i] + SimDuration::from_millis(2));
        }
        let arr = arrivals(&out);
        assert_eq!(arr.len(), 100);
        assert!(arr.windows(2).all(|w| w[0].idx < w[1].idx));
    }

    #[test]
    fn loss_drops_packets() {
        let ts = times(50_000, 10);
        let cfg = ChannelConfig {
            delay: DelayModel::Constant(SimDuration::from_millis(1)),
            loss: Some((0.25, 5.0)),
            reorder: ReorderModel::none(),
            seed: 3,
        };
        let out = apply(&ts, &cfg);
        let lost = out.iter().filter(|o| o.is_none()).count();
        let rate = lost as f64 / ts.len() as f64;
        assert!((rate - 0.25).abs() < 0.03, "loss rate {rate}");
    }

    #[test]
    fn series_model_uses_fates() {
        let ts = times(3, 100);
        let cfg = ChannelConfig {
            delay: DelayModel::Series(vec![
                PacketFate::Delivered(SimDuration::from_millis(1)),
                PacketFate::Dropped,
                PacketFate::Delivered(SimDuration::from_millis(3)),
            ]),
            loss: None,
            reorder: ReorderModel::none(),
            seed: 0,
        };
        let out = apply(&ts, &cfg);
        assert_eq!(out[0], Some(ts[0] + SimDuration::from_millis(1)));
        assert_eq!(out[1], None);
        assert_eq!(out[2], Some(ts[2] + SimDuration::from_millis(3)));
    }

    #[test]
    fn series_shorter_than_input_drops_tail() {
        let ts = times(3, 100);
        let cfg = ChannelConfig {
            delay: DelayModel::Series(vec![PacketFate::Delivered(SimDuration::ZERO)]),
            loss: None,
            reorder: ReorderModel::none(),
            seed: 0,
        };
        let out = apply(&ts, &cfg);
        assert!(out[0].is_some());
        assert!(out[1].is_none() && out[2].is_none());
    }

    #[test]
    fn reordering_changes_arrival_order() {
        let ts = times(20_000, 5);
        let cfg = ChannelConfig {
            delay: DelayModel::Constant(SimDuration::from_millis(1)),
            loss: None,
            reorder: ReorderModel {
                p_reorder: 0.1,
                max_shift: SimDuration::from_micros(300),
            },
            seed: 5,
        };
        let arr = arrivals(&apply(&ts, &cfg));
        assert_eq!(arr.len(), ts.len());
        let out_of_order = arr.windows(2).filter(|w| w[0].idx > w[1].idx).count();
        assert!(out_of_order > 0, "no reordering happened");
    }

    #[test]
    fn jitter_within_bounds() {
        let ts = times(10_000, 10);
        let base = SimDuration::from_millis(1);
        let jitter = SimDuration::from_micros(200);
        let cfg = ChannelConfig {
            delay: DelayModel::Jitter { base, jitter },
            loss: None,
            reorder: ReorderModel::none(),
            seed: 7,
        };
        let out = apply(&ts, &cfg);
        for (i, o) in out.iter().enumerate() {
            let d = o.unwrap().saturating_since(ts[i]);
            assert!(d >= base && d <= base + jitter, "delay {d}");
        }
    }
}
