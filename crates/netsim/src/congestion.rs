//! Congestion scenarios: foreground trace + cross traffic through a
//! bottleneck.
//!
//! This reproduces step 2 of the paper's methodology (§7.2): "we use
//! the NS simulator to create realistic congestion scenarios, and
//! generate the sequence of delay values that our packet sequence would
//! encounter". The foreground sequence (the traffic whose receipts VPM
//! generates) shares a drop-tail bottleneck with cross traffic —
//! either a bursty high-rate UDP flow (the scenario Figure 2 reports,
//! chosen because it "introduced the highest delay variance in the
//! shortest time scale") or long-lived TCP Reno flows, or both.

use crate::event::EventQueue;
use crate::queue::{DropTail, QueueOutcome};
use crate::sources::{Arrival, OnOffUdp};
use crate::tcp::{AckReaction, RenoReceiver, RenoSender};
use serde::{Deserialize, Serialize};
use vpm_packet::{SimDuration, SimTime};
use vpm_trace::TracePacket;

/// Bottleneck-link parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BottleneckConfig {
    /// Link rate in bits per second.
    pub rate_bps: f64,
    /// Maximum queueing delay (drop-tail bound).
    pub queue_limit: SimDuration,
    /// One-way propagation delay of the link.
    pub prop_delay: SimDuration,
}

impl BottleneckConfig {
    /// Parameters tuned for the paper's regime: a foreground path of
    /// ~100 kpps (~330 Mbps at ~400 B/pkt) squeezed through a 500 Mbps
    /// link whose queue can build up to tens of milliseconds — the
    /// delay range today's SLAs talk about (§5.3).
    pub fn paper_default() -> Self {
        BottleneckConfig {
            rate_bps: 500e6,
            queue_limit: SimDuration::from_millis(50),
            prop_delay: SimDuration::from_micros(500),
        }
    }
}

/// Cross-traffic mix competing with the foreground sequence.
#[derive(Debug, Clone, Copy)]
pub enum CrossTraffic {
    /// No competition: foreground only.
    None,
    /// A bursty, high-rate UDP flow (Figure 2's congestion source).
    BurstyUdp {
        /// Rate during bursts, bits per second.
        rate_bps: f64,
        /// Mean burst duration.
        mean_on: SimDuration,
        /// Mean silence duration.
        mean_off: SimDuration,
        /// UDP packet size in bytes.
        pkt_bytes: usize,
    },
    /// Long-lived TCP Reno flows saturating the bottleneck.
    LongLivedTcp {
        /// Number of concurrent flows.
        flows: usize,
        /// Segment size in bytes.
        seg_bytes: usize,
    },
    /// Both of the above.
    Mixed {
        /// UDP burst rate, bits per second.
        udp_rate_bps: f64,
        /// Mean burst duration.
        mean_on: SimDuration,
        /// Mean silence duration.
        mean_off: SimDuration,
        /// Number of TCP flows.
        tcp_flows: usize,
    },
}

impl CrossTraffic {
    /// The configuration used for Figure 2: bursts that oversubscribe
    /// the paper-default bottleneck while ON, but short enough that the
    /// queue oscillates through its whole range instead of pinning at
    /// the drop-tail cap — "the highest delay variance in the shortest
    /// time scale" (paper §7.2).
    pub fn paper_bursty_udp() -> Self {
        CrossTraffic::BurstyUdp {
            rate_bps: 420e6,
            mean_on: SimDuration::from_millis(22),
            mean_off: SimDuration::from_millis(55),
            pkt_bytes: 1250,
        }
    }
}

/// What happened to one foreground packet at the bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketFate {
    /// Delivered after the given one-way delay (queueing + service +
    /// propagation).
    Delivered(SimDuration),
    /// Tail-dropped at the bottleneck queue.
    Dropped,
}

impl PacketFate {
    /// Delay if delivered.
    pub fn delay(&self) -> Option<SimDuration> {
        match self {
            PacketFate::Delivered(d) => Some(*d),
            PacketFate::Dropped => None,
        }
    }
}

#[derive(Debug)]
enum Ev {
    /// A fixed-schedule arrival (foreground or UDP cross traffic).
    Fixed { fg_idx: Option<usize>, bytes: usize },
    /// TCP sender wants to (re)transmit `seq`.
    TcpSend { flow: usize, seq: u64 },
    /// TCP segment reached the receiver.
    TcpDeliver { flow: usize, seq: u64 },
    /// Cumulative ACK reached the sender.
    TcpAck { flow: usize, cum: u64 },
    /// Retransmission timer fired (stale if `armed` ≠ current arm time).
    TcpRto { flow: usize, armed: SimTime },
}

struct TcpFlowState {
    sender: RenoSender,
    receiver: RenoReceiver,
    rto_armed_at: SimTime,
}

/// Run the bottleneck simulation and return the fate of every
/// foreground packet (indexed like `foreground`).
///
/// `foreground` must be sorted by arrival time.
pub fn run_bottleneck(
    foreground: &[Arrival],
    cfg: &BottleneckConfig,
    cross: &CrossTraffic,
    seed: u64,
) -> Vec<PacketFate> {
    let horizon = foreground
        .last()
        .map_or(SimTime::ZERO, |&(t, _)| t + SimDuration::from_millis(1));

    let mut queue = DropTail::new(cfg.rate_bps, cfg.queue_limit);
    let mut events: EventQueue<Ev> = EventQueue::new();
    let mut fates = vec![PacketFate::Dropped; foreground.len()];

    for (i, &(t, bytes)) in foreground.iter().enumerate() {
        events.push(
            t,
            Ev::Fixed {
                fg_idx: Some(i),
                bytes,
            },
        );
    }

    // Cross traffic setup.
    let mut tcp_flows: Vec<TcpFlowState> = Vec::new();
    let horizon_d = horizon.saturating_since(SimTime::ZERO);
    match *cross {
        CrossTraffic::None => {}
        CrossTraffic::BurstyUdp {
            rate_bps,
            mean_on,
            mean_off,
            pkt_bytes,
        } => {
            let src = OnOffUdp {
                rate_bps,
                mean_on,
                mean_off,
                pkt_bytes,
            };
            for (t, bytes) in src.generate(horizon_d, seed ^ 0xfeed) {
                events.push(
                    t,
                    Ev::Fixed {
                        fg_idx: None,
                        bytes,
                    },
                );
            }
        }
        CrossTraffic::LongLivedTcp { flows, seg_bytes } => {
            spawn_tcp(&mut tcp_flows, &mut events, flows, seg_bytes);
        }
        CrossTraffic::Mixed {
            udp_rate_bps,
            mean_on,
            mean_off,
            tcp_flows: n,
        } => {
            let src = OnOffUdp {
                rate_bps: udp_rate_bps,
                mean_on,
                mean_off,
                pkt_bytes: 1250,
            };
            for (t, bytes) in src.generate(horizon_d, seed ^ 0xfeed) {
                events.push(
                    t,
                    Ev::Fixed {
                        fg_idx: None,
                        bytes,
                    },
                );
            }
            spawn_tcp(&mut tcp_flows, &mut events, n, 1500);
        }
    }

    // Main event loop.
    while let Some((now, ev)) = events.pop() {
        match ev {
            Ev::Fixed { fg_idx, bytes } => match queue.offer(now, bytes) {
                QueueOutcome::Departs(depart) => {
                    if let Some(i) = fg_idx {
                        let delay = depart.saturating_since(now) + cfg.prop_delay;
                        fates[i] = PacketFate::Delivered(delay);
                    }
                }
                QueueOutcome::Dropped => {
                    if let Some(i) = fg_idx {
                        fates[i] = PacketFate::Dropped;
                    }
                }
            },
            Ev::TcpSend { flow, seq } => {
                if now > horizon {
                    continue;
                }
                let seg = tcp_flows[flow].sender.seg_bytes;
                match queue.offer(now, seg) {
                    QueueOutcome::Departs(depart) => {
                        events.push(depart + cfg.prop_delay, Ev::TcpDeliver { flow, seq });
                    }
                    QueueOutcome::Dropped => { /* loss signals via dup-ACK/RTO */ }
                }
            }
            Ev::TcpDeliver { flow, seq } => {
                let cum = tcp_flows[flow].receiver.on_data(seq);
                // Reverse path: uncongested, pure propagation.
                events.push(now + cfg.prop_delay, Ev::TcpAck { flow, cum });
            }
            Ev::TcpAck { flow, cum } => {
                let st = &mut tcp_flows[flow];
                match st.sender.on_ack(cum) {
                    AckReaction::NewData => {
                        arm_rto(st, flow, now, &mut events);
                        pump(st, flow, now, horizon, &mut events);
                    }
                    AckReaction::DupAck => {}
                    AckReaction::FastRetransmit(seq) => {
                        arm_rto(st, flow, now, &mut events);
                        events.push(now, Ev::TcpSend { flow, seq });
                    }
                }
            }
            Ev::TcpRto { flow, armed } => {
                let st = &mut tcp_flows[flow];
                if armed != st.rto_armed_at || now > horizon {
                    continue; // stale timer
                }
                let seq = st.sender.on_timeout();
                arm_rto(st, flow, now, &mut events);
                events.push(now, Ev::TcpSend { flow, seq });
                pump(st, flow, now, horizon, &mut events);
            }
        }
    }

    fates
}

fn spawn_tcp(
    flows: &mut Vec<TcpFlowState>,
    events: &mut EventQueue<Ev>,
    n: usize,
    seg_bytes: usize,
) {
    for i in 0..n {
        let mut st = TcpFlowState {
            sender: RenoSender::new(seg_bytes, SimDuration::from_millis(200)),
            receiver: RenoReceiver::new(),
            rto_armed_at: SimTime::ZERO,
        };
        // Stagger flow starts by 1 ms to avoid phase lock.
        let start = SimTime::from_millis(i as u64);
        let seq = st.sender.take_next();
        events.push(start, Ev::TcpSend { flow: i, seq });
        let seq2 = st.sender.take_next();
        events.push(start, Ev::TcpSend { flow: i, seq: seq2 });
        st.rto_armed_at = start;
        events.push(
            start + st.sender.rto,
            Ev::TcpRto {
                flow: i,
                armed: start,
            },
        );
        flows.push(st);
    }
}

fn arm_rto(st: &mut TcpFlowState, flow: usize, now: SimTime, events: &mut EventQueue<Ev>) {
    st.rto_armed_at = now;
    events.push(now + st.sender.rto, Ev::TcpRto { flow, armed: now });
}

fn pump(
    st: &mut TcpFlowState,
    flow: usize,
    now: SimTime,
    horizon: SimTime,
    events: &mut EventQueue<Ev>,
) {
    if now > horizon {
        return;
    }
    while st.sender.can_send() {
        let seq = st.sender.take_next();
        events.push(now, Ev::TcpSend { flow, seq });
    }
}

/// Convenience: run the bottleneck over a generated trace and return
/// per-trace-packet fates.
pub fn foreground_delays(
    trace: &[TracePacket],
    cfg: &BottleneckConfig,
    cross: &CrossTraffic,
    seed: u64,
) -> Vec<PacketFate> {
    let arrivals: Vec<Arrival> = trace
        .iter()
        .map(|tp| (tp.ts, tp.packet.wire_len()))
        .collect();
    run_bottleneck(&arrivals, cfg, cross, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpm_trace::{TraceConfig, TraceGenerator};

    fn small_trace(pps: f64, ms: u64, seed: u64) -> Vec<TracePacket> {
        let cfg = TraceConfig {
            target_pps: pps,
            duration: SimDuration::from_millis(ms),
            ..TraceConfig::paper_default(1, seed)
        };
        TraceGenerator::new(cfg).generate()
    }

    #[test]
    fn uncongested_link_gives_base_delay() {
        let trace = small_trace(5_000.0, 200, 1);
        let cfg = BottleneckConfig {
            rate_bps: 1e9,
            queue_limit: SimDuration::from_millis(50),
            prop_delay: SimDuration::from_micros(500),
        };
        let fates = foreground_delays(&trace, &cfg, &CrossTraffic::None, 0);
        let mut max = SimDuration::ZERO;
        for f in &fates {
            let d = f.delay().expect("no drops on an empty link");
            max = max.max(d);
        }
        // service(1500B @1Gbps)=12µs; delay ≈ prop + service ≪ 1 ms
        assert!(max < SimDuration::from_millis(1), "max {max}");
    }

    #[test]
    fn bursty_udp_builds_delay_spikes() {
        let trace = small_trace(20_000.0, 2_000, 2);
        let cfg = BottleneckConfig {
            rate_bps: 100e6,
            queue_limit: SimDuration::from_millis(50),
            prop_delay: SimDuration::from_micros(500),
        };
        // Foreground ~20kpps·400B ≈ 64 Mbps; bursts add 90 Mbps.
        let cross = CrossTraffic::BurstyUdp {
            rate_bps: 90e6,
            mean_on: SimDuration::from_millis(100),
            mean_off: SimDuration::from_millis(150),
            pkt_bytes: 1250,
        };
        let fates = foreground_delays(&trace, &cfg, &cross, 3);
        let delays: Vec<f64> = fates
            .iter()
            .filter_map(|f| f.delay().map(|d| d.as_millis_f64()))
            .collect();
        assert!(!delays.is_empty());
        let max = delays.iter().copied().fold(0.0, f64::max);
        let min = delays.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max > 5.0, "no delay spikes: max {max} ms");
        assert!(min < 1.0, "even quiet periods delayed: min {min} ms");
    }

    #[test]
    fn tcp_cross_traffic_fills_pipe() {
        let trace = small_trace(2_000.0, 1_000, 4);
        let cfg = BottleneckConfig {
            rate_bps: 50e6,
            queue_limit: SimDuration::from_millis(40),
            prop_delay: SimDuration::from_millis(1),
        };
        let cross = CrossTraffic::LongLivedTcp {
            flows: 4,
            seg_bytes: 1500,
        };
        let fates = foreground_delays(&trace, &cfg, &cross, 5);
        let delays: Vec<f64> = fates
            .iter()
            .filter_map(|f| f.delay().map(|d| d.as_millis_f64()))
            .collect();
        assert!(!delays.is_empty());
        // TCP should push queueing delay well above the base.
        let mean: f64 = delays.iter().sum::<f64>() / delays.len() as f64;
        assert!(mean > 2.0, "TCP never congested the link: mean {mean} ms");
    }

    #[test]
    fn overload_drops_at_bounded_delay() {
        let trace = small_trace(20_000.0, 500, 6);
        let cfg = BottleneckConfig {
            rate_bps: 30e6, // ~64 Mbps offered into 30 Mbps: sustained overload
            queue_limit: SimDuration::from_millis(20),
            prop_delay: SimDuration::ZERO,
        };
        let fates = foreground_delays(&trace, &cfg, &CrossTraffic::None, 7);
        let drops = fates.iter().filter(|f| f.delay().is_none()).count();
        assert!(drops > 0, "overload must drop");
        for f in &fates {
            if let Some(d) = f.delay() {
                // queueing bounded by limit + one service time
                assert!(d < SimDuration::from_millis(22), "delay {d}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let trace = small_trace(5_000.0, 300, 8);
        let cfg = BottleneckConfig::paper_default();
        let cross = CrossTraffic::paper_bursty_udp();
        let a = foreground_delays(&trace, &cfg, &cross, 9);
        let b = foreground_delays(&trace, &cfg, &cross, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_cross_traffic_combines_both_sources() {
        let trace = small_trace(5_000.0, 1_000, 10);
        let cfg = BottleneckConfig {
            rate_bps: 60e6,
            queue_limit: SimDuration::from_millis(40),
            prop_delay: SimDuration::from_micros(500),
        };
        let cross = CrossTraffic::Mixed {
            udp_rate_bps: 30e6,
            mean_on: SimDuration::from_millis(30),
            mean_off: SimDuration::from_millis(60),
            tcp_flows: 3,
        };
        let fates = foreground_delays(&trace, &cfg, &cross, 11);
        let delays: Vec<f64> = fates
            .iter()
            .filter_map(|f| f.delay().map(|d| d.as_millis_f64()))
            .collect();
        assert!(!delays.is_empty());
        let mean: f64 = delays.iter().sum::<f64>() / delays.len() as f64;
        // TCP fills residual capacity and UDP bursts spike it: delays
        // must show real congestion but stay within the queue bound.
        assert!(mean > 1.0, "mixed traffic too gentle: mean {mean} ms");
        let max = delays.iter().copied().fold(0.0, f64::max);
        assert!(max <= 42.0, "max {max} ms exceeds queue bound");
    }
}
