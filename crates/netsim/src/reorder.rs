//! Bounded packet reordering.
//!
//! The paper's reordering assumption (§6.3, backed by ref \[10\]) is
//! that two packets can swap only if they were observed less than a
//! safety threshold `J` apart. We model that directly: each packet may,
//! with some probability, be held back by an extra delay strictly less
//! than `J`; re-sorting by the perturbed timestamps yields an arrival
//! order in which only near-simultaneous packets ever swap.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vpm_packet::{SimDuration, SimTime};

/// Reordering model: holds packets back by `< max_shift` with
/// probability `p_reorder`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ReorderModel {
    /// Probability that a packet is held back.
    pub p_reorder: f64,
    /// Strict upper bound on the hold-back (must be < the path's `J`).
    pub max_shift: SimDuration,
}

impl ReorderModel {
    /// A model that never reorders.
    pub fn none() -> Self {
        ReorderModel {
            p_reorder: 0.0,
            max_shift: SimDuration::ZERO,
        }
    }

    /// Perturb a non-decreasing timestamp sequence. Returns the new
    /// timestamps (same indexing as the input); sorting indices by the
    /// returned times (stably) gives the reordered arrival order.
    pub fn perturb(&self, times: &[SimTime], seed: u64) -> Vec<SimTime> {
        let mut rng = SmallRng::seed_from_u64(seed);
        times
            .iter()
            .map(|&t| {
                if self.p_reorder > 0.0 && rng.gen::<f64>() < self.p_reorder {
                    let shift = rng.gen_range(0..self.max_shift.as_nanos().max(1));
                    t + SimDuration::from_nanos(shift)
                } else {
                    t
                }
            })
            .collect()
    }

    /// Convenience: produce the arrival *order* (permutation of input
    /// indices) after perturbation.
    pub fn arrival_order(&self, times: &[SimTime], seed: u64) -> Vec<usize> {
        let perturbed = self.perturb(times, seed);
        let mut idx: Vec<usize> = (0..times.len()).collect();
        idx.sort_by_key(|&i| (perturbed[i], i));
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evenly_spaced(n: usize, gap: SimDuration) -> Vec<SimTime> {
        (0..n)
            .map(|i| SimTime::ZERO + SimDuration::from_nanos(gap.as_nanos() * i as u64))
            .collect()
    }

    #[test]
    fn none_is_identity() {
        let times = evenly_spaced(100, SimDuration::from_micros(10));
        let order = ReorderModel::none().arrival_order(&times, 1);
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn reorders_close_packets() {
        let times = evenly_spaced(10_000, SimDuration::from_micros(10));
        let model = ReorderModel {
            p_reorder: 0.05,
            max_shift: SimDuration::from_micros(500),
        };
        let order = model.arrival_order(&times, 2);
        let displaced = order
            .iter()
            .enumerate()
            .filter(|&(pos, &i)| pos != i)
            .count();
        assert!(displaced > 0, "no packets displaced");
    }

    #[test]
    fn never_reorders_beyond_bound() {
        // Packets more than max_shift apart must keep their order.
        let gap = SimDuration::from_micros(10);
        let times = evenly_spaced(5_000, gap);
        let model = ReorderModel {
            p_reorder: 0.3,
            max_shift: SimDuration::from_micros(200),
        };
        let order = model.arrival_order(&times, 3);
        let bound = (model.max_shift.as_nanos() / gap.as_nanos()) as i64 + 1;
        for (pos, &i) in order.iter().enumerate() {
            let displacement = (pos as i64 - i as i64).abs();
            assert!(
                displacement <= bound,
                "packet {i} displaced by {displacement} positions (> {bound})"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let times = evenly_spaced(1000, SimDuration::from_micros(5));
        let model = ReorderModel {
            p_reorder: 0.2,
            max_shift: SimDuration::from_micros(100),
        };
        assert_eq!(
            model.arrival_order(&times, 7),
            model.arrival_order(&times, 7)
        );
    }
}
