//! Non-adaptive traffic sources.
//!
//! The paper's headline congestion scenario is "a bursty, high-rate UDP
//! flow" saturating a bottleneck (Figure 2 caption). These sources
//! produce fixed `(time, bytes)` arrival sequences — they do not react
//! to loss, which is exactly what makes them brutal to a FIFO.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vpm_packet::{SimDuration, SimTime};

/// A timed packet arrival: `(arrival time, wire bytes)`.
pub type Arrival = (SimTime, usize);

/// Constant-bit-rate source.
///
/// Emits `pkt_bytes`-sized packets evenly spaced to sustain `rate_bps`
/// over `[0, horizon)`.
pub fn cbr(rate_bps: f64, pkt_bytes: usize, horizon: SimDuration) -> Vec<Arrival> {
    assert!(rate_bps > 0.0 && pkt_bytes > 0);
    let gap = SimDuration::from_secs_f64(pkt_bytes as f64 * 8.0 / rate_bps);
    let mut out = Vec::new();
    let mut t = SimTime::ZERO;
    while t < SimTime::ZERO + horizon {
        out.push((t, pkt_bytes));
        t += gap;
    }
    out
}

/// Bursty on/off UDP source.
///
/// Alternates between ON periods (CBR at `rate_bps`) and OFF periods
/// (silent). Period lengths are drawn uniformly from
/// `[0.5, 1.5] × mean` so bursts do not phase-lock with anything else
/// in the simulation, while the worst-case burst stays bounded (an
/// exponential tail would occasionally pin a drop-tail queue at its
/// cap for hundreds of milliseconds, which collapses the delay
/// distribution the Figure 2 experiment depends on).
#[derive(Debug, Clone, Copy)]
pub struct OnOffUdp {
    /// Transmission rate during ON periods, bits per second.
    pub rate_bps: f64,
    /// Mean ON duration.
    pub mean_on: SimDuration,
    /// Mean OFF duration.
    pub mean_off: SimDuration,
    /// Packet size in bytes.
    pub pkt_bytes: usize,
}

impl OnOffUdp {
    /// Generate arrivals over `[0, horizon)`.
    pub fn generate(&self, horizon: SimDuration, seed: u64) -> Vec<Arrival> {
        assert!(self.rate_bps > 0.0 && self.pkt_bytes > 0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let gap = SimDuration::from_secs_f64(self.pkt_bytes as f64 * 8.0 / self.rate_bps);
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + horizon;
        let jittered = |rng: &mut SmallRng, mean: SimDuration| {
            let u: f64 = rng.gen(); // uniform [0.5, 1.5] × mean
            SimDuration::from_secs_f64((0.5 + u) * mean.as_secs_f64())
        };
        // Start OFF half the time so the first burst position varies.
        if rng.gen::<bool>() {
            t += jittered(&mut rng, self.mean_off);
        }
        while t < end {
            let on_len = jittered(&mut rng, self.mean_on);
            let on_end = (t + on_len).min(end);
            while t < on_end {
                out.push((t, self.pkt_bytes));
                t += gap;
            }
            t += jittered(&mut rng, self.mean_off);
        }
        out
    }

    /// Long-run average rate of the source, bits per second.
    pub fn average_rate(&self) -> f64 {
        let on = self.mean_on.as_secs_f64();
        let off = self.mean_off.as_secs_f64();
        self.rate_bps * on / (on + off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_rate_and_spacing() {
        let arr = cbr(8e6, 1000, SimDuration::from_secs(1)); // 1 ms gaps
        assert_eq!(arr.len(), 1000);
        for w in arr.windows(2) {
            assert_eq!(w[1].0 - w[0].0, SimDuration::from_millis(1));
        }
    }

    #[test]
    fn onoff_average_rate() {
        let src = OnOffUdp {
            rate_bps: 100e6,
            mean_on: SimDuration::from_millis(50),
            mean_off: SimDuration::from_millis(50),
            pkt_bytes: 1250,
        };
        let horizon = SimDuration::from_secs(20);
        let arr = src.generate(horizon, 3);
        let bytes: usize = arr.iter().map(|a| a.1).sum();
        let rate = bytes as f64 * 8.0 / horizon.as_secs_f64();
        let target = src.average_rate();
        assert!(
            (rate - target).abs() / target < 0.15,
            "rate {rate} vs {target}"
        );
    }

    #[test]
    fn onoff_is_bursty() {
        let src = OnOffUdp {
            rate_bps: 100e6,
            mean_on: SimDuration::from_millis(20),
            mean_off: SimDuration::from_millis(80),
            pkt_bytes: 1250,
        };
        let arr = src.generate(SimDuration::from_secs(5), 5);
        // Gaps should be bimodal: tiny inside bursts, large between.
        let mut large_gaps = 0;
        for w in arr.windows(2) {
            if w[1].0 - w[0].0 > SimDuration::from_millis(10) {
                large_gaps += 1;
            }
        }
        assert!(large_gaps > 10, "only {large_gaps} inter-burst gaps");
    }

    #[test]
    fn sorted_outputs() {
        let src = OnOffUdp {
            rate_bps: 50e6,
            mean_on: SimDuration::from_millis(10),
            mean_off: SimDuration::from_millis(30),
            pkt_bytes: 500,
        };
        let arr = src.generate(SimDuration::from_secs(2), 11);
        for w in arr.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }
}
