//! Gilbert-Elliott loss model (paper ref \[9\]).
//!
//! A two-state Markov chain: in the *good* state packets survive; in
//! the *bad* state they are dropped (the classic Gilbert special case
//! `h = 1`). Transition probabilities are derived from the target
//! stationary loss rate and the desired mean burst length, which is how
//! the paper parameterizes loss injection ("to introduce loss, we
//! discard a subset of the packets, chosen using the Gilbert-Elliot
//! loss model").

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Two-state Markov loss channel.
///
/// ```
/// use vpm_netsim::GilbertElliott;
///
/// // 25% loss in bursts of ~5 packets.
/// let mut ch = GilbertElliott::with_target(0.25, 5.0, 42);
/// let survivors = ch.mask(100_000).iter().filter(|&&s| s).count();
/// let loss = 1.0 - survivors as f64 / 100_000.0;
/// assert!((loss - 0.25).abs() < 0.03);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// P(good → bad) per packet.
    p_gb: f64,
    /// P(bad → good) per packet.
    p_bg: f64,
    /// Current state; `true` = bad (dropping).
    in_bad: bool,
    #[serde(skip, default = "default_rng")]
    rng: SmallRng,
}

fn default_rng() -> SmallRng {
    SmallRng::seed_from_u64(0)
}

impl GilbertElliott {
    /// Build a channel with explicit transition probabilities.
    pub fn from_transitions(p_gb: f64, p_bg: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_gb) && (0.0..=1.0).contains(&p_bg));
        GilbertElliott {
            p_gb,
            p_bg,
            in_bad: false,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Build a channel with a target stationary `loss_rate` and a mean
    /// loss-burst length of `mean_burst` packets.
    ///
    /// With `h = 1`, the stationary probability of the bad state equals
    /// the loss rate: `π_b = p_gb / (p_gb + p_bg)`, and the mean bad
    /// sojourn is `1 / p_bg`.
    pub fn with_target(loss_rate: f64, mean_burst: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss_rate),
            "loss rate must be in [0,1), got {loss_rate}"
        );
        assert!(mean_burst >= 1.0, "mean burst must be ≥ 1 packet");
        if loss_rate == 0.0 {
            return Self::from_transitions(0.0, 1.0, seed);
        }
        let p_bg = 1.0 / mean_burst;
        let p_gb = loss_rate * p_bg / (1.0 - loss_rate);
        Self::from_transitions(p_gb.min(1.0), p_bg, seed)
    }

    /// A channel that never drops.
    pub fn lossless(seed: u64) -> Self {
        Self::with_target(0.0, 1.0, seed)
    }

    /// Advance one packet; returns `true` if the packet survives.
    pub fn survives(&mut self) -> bool {
        // Transition first, then the (new) state decides the fate —
        // standard per-packet Gilbert stepping.
        if self.in_bad {
            if self.rng.gen::<f64>() < self.p_bg {
                self.in_bad = false;
            }
        } else if self.rng.gen::<f64>() < self.p_gb {
            self.in_bad = true;
        }
        !self.in_bad
    }

    /// The stationary loss rate implied by the transitions.
    pub fn stationary_loss(&self) -> f64 {
        if self.p_gb + self.p_bg == 0.0 {
            0.0
        } else {
            self.p_gb / (self.p_gb + self.p_bg)
        }
    }

    /// Apply the channel to `n` packets, returning a survival mask.
    pub fn mask(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.survives()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_never_drops() {
        let mut ch = GilbertElliott::lossless(1);
        assert!(ch.mask(10_000).iter().all(|&s| s));
        assert_eq!(ch.stationary_loss(), 0.0);
    }

    #[test]
    fn hits_target_rate() {
        for target in [0.10, 0.25, 0.50] {
            let mut ch = GilbertElliott::with_target(target, 5.0, 42);
            let n = 400_000;
            let lost = ch.mask(n).iter().filter(|&&s| !s).count();
            let got = lost as f64 / n as f64;
            assert!((got - target).abs() < 0.02, "target {target} got {got}");
            assert!((ch.stationary_loss() - target).abs() < 1e-9);
        }
    }

    #[test]
    fn losses_are_bursty() {
        // With mean_burst 10, consecutive-loss runs should average well
        // above 1 (i.i.d. loss at the same rate would give ~1.3).
        let mut ch = GilbertElliott::with_target(0.2, 10.0, 7);
        let mask = ch.mask(300_000);
        let mut bursts = Vec::new();
        let mut run = 0u32;
        for s in mask {
            if !s {
                run += 1;
            } else if run > 0 {
                bursts.push(run);
                run = 0;
            }
        }
        let mean = bursts.iter().copied().sum::<u32>() as f64 / bursts.len() as f64;
        assert!(mean > 5.0, "mean burst {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GilbertElliott::with_target(0.3, 4.0, 9).mask(1000);
        let b = GilbertElliott::with_target(0.3, 4.0, 9).mask(1000);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn rejects_rate_one() {
        GilbertElliott::with_target(1.0, 5.0, 0);
    }
}
