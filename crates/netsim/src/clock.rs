//! Per-HOP clocks.
//!
//! VPM explicitly does *not* require synchronized clocks (paper §4,
//! "(No) Clock Synchronization") — but a domain's delay estimates are
//! only as good as its HOPs' mutual synchronization, and two adjacent
//! HOPs whose skew exceeds the advertised `MaxDiff` will generate
//! inconsistent receipts. This module models imperfect clocks so those
//! behaviours can be exercised.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vpm_packet::SimTime;

/// A local clock with fixed offset, linear drift and read jitter.
#[derive(Debug, Clone)]
pub struct HopClock {
    /// Constant offset from true time, nanoseconds (may be negative).
    pub offset_ns: i64,
    /// Linear drift in parts per million of elapsed true time.
    pub drift_ppm: f64,
    /// Uniform read jitter amplitude (± this many ns).
    pub jitter_ns: u64,
    rng: SmallRng,
}

impl HopClock {
    /// A perfect clock.
    pub fn ideal() -> Self {
        HopClock {
            offset_ns: 0,
            drift_ppm: 0.0,
            jitter_ns: 0,
            rng: SmallRng::seed_from_u64(0),
        }
    }

    /// An NTP-grade clock: offset within ±0.5 ms, drift within ±50 ppm,
    /// 10 µs read jitter — the "reasonably synchronized, at the
    /// granularity of a millisecond" regime the paper assumes (§4).
    pub fn ntp_grade(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        HopClock {
            offset_ns: rng.gen_range(-500_000..=500_000),
            drift_ppm: rng.gen_range(-50.0..=50.0),
            jitter_ns: 10_000,
            rng,
        }
    }

    /// A badly desynchronized clock (offset up to ± `offset_ms`).
    pub fn skewed(offset_ms: i64, seed: u64) -> Self {
        HopClock {
            offset_ns: offset_ms * 1_000_000,
            drift_ppm: 0.0,
            jitter_ns: 10_000,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Read the local clock at true time `t`.
    pub fn read(&mut self, t: SimTime) -> SimTime {
        let drift = (t.as_nanos() as f64 * self.drift_ppm * 1e-6) as i64;
        let jitter = if self.jitter_ns == 0 {
            0
        } else {
            self.rng
                .gen_range(-(self.jitter_ns as i64)..=(self.jitter_ns as i64))
        };
        let local = t.as_nanos() as i64 + self.offset_ns + drift + jitter;
        SimTime::from_nanos(local.max(0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpm_packet::SimDuration;

    #[test]
    fn ideal_clock_is_identity() {
        let mut c = HopClock::ideal();
        for ms in [0u64, 1, 100, 10_000] {
            let t = SimTime::from_millis(ms);
            assert_eq!(c.read(t), t);
        }
    }

    #[test]
    fn offset_shifts_readings() {
        let mut c = HopClock::skewed(3, 1);
        let t = SimTime::from_secs(1);
        let r = c.read(t);
        let delta = r.signed_delta(t);
        assert!((delta - 3_000_000).abs() <= 10_000 + 1, "delta {delta}");
    }

    #[test]
    fn drift_grows_with_time() {
        let mut c = HopClock {
            offset_ns: 0,
            drift_ppm: 100.0,
            jitter_ns: 0,
            rng: SmallRng::seed_from_u64(0),
        };
        let early = c
            .read(SimTime::from_secs(1))
            .signed_delta(SimTime::from_secs(1));
        let late = c
            .read(SimTime::from_secs(100))
            .signed_delta(SimTime::from_secs(100));
        assert!(late > early);
        assert!(
            (late - 10_000_000).abs() < 1000,
            "100ppm over 100s ≈ 10ms, got {late}"
        );
    }

    #[test]
    fn ntp_grade_within_spec() {
        for seed in 0..20 {
            let mut c = HopClock::ntp_grade(seed);
            let t = SimTime::from_secs(10);
            let delta = c.read(t).signed_delta(t).abs();
            // offset ≤ 0.5ms + drift ≤ 50ppm·10s = 0.5ms + jitter 10µs
            assert!(delta <= 1_020_000, "seed {seed}: delta {delta}");
        }
    }

    #[test]
    fn clamps_below_zero() {
        let mut c = HopClock::skewed(-10, 2);
        let r = c.read(SimTime::from_millis(1));
        assert_eq!(r.as_nanos(), 0);
        let _ = SimDuration::ZERO;
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// With non-negative drift and no read jitter, a clock is a
            /// monotone map of true time: later reads never go
            /// backwards (strictly increasing once past the zero
            /// clamp).
            #[test]
            fn reads_monotone_under_positive_drift(
                offset_ms in -5i64..=5,
                drift_ppm in 0.0f64..=500.0,
                raw in proptest::collection::vec(0u64..=100_000_000_000, 2..40),
            ) {
                let mut times = raw;
                times.sort_unstable();
                let mut c = HopClock {
                    offset_ns: offset_ms * 1_000_000,
                    drift_ppm,
                    jitter_ns: 0,
                    rng: SmallRng::seed_from_u64(0),
                };
                let mut prev = None;
                for &t in &times {
                    let r = c.read(SimTime::from_nanos(t));
                    if let Some(p) = prev {
                        prop_assert!(r >= p, "time went backwards: {p} -> {r}");
                    }
                    prev = Some(r);
                }
            }

            /// The ideal clock is the identity at every instant.
            #[test]
            fn ideal_clock_is_the_identity_everywhere(
                raw in proptest::collection::vec(0u64..=u64::MAX / 4, 1..40),
            ) {
                let mut c = HopClock::ideal();
                for &t in &raw {
                    let time = SimTime::from_nanos(t);
                    prop_assert_eq!(c.read(time), time);
                }
            }

            /// §4's regime: over a simulated run of up to 10 s, two
            /// independently seeded NTP-grade clocks stay mutually
            /// synchronized "at the granularity of a millisecond" —
            /// ±0.5 ms offset each, ±50 ppm drift each and 10 µs read
            /// jitter bound their skew by ~2 ms, well under the paper's
            /// multi-millisecond MaxDiff advertisements.
            #[test]
            fn two_ntp_grade_clocks_stay_in_the_millisecond_regime(
                seed_a in any::<u64>(),
                seed_b in any::<u64>(),
                raw in proptest::collection::vec(0u64..=10_000_000_000, 1..40),
            ) {
                let mut a = HopClock::ntp_grade(seed_a);
                let mut b = HopClock::ntp_grade(seed_b);
                for &t in &raw {
                    let time = SimTime::from_nanos(t);
                    let skew = a.read(time).signed_delta(b.read(time)).abs();
                    // offsets ≤ 2·0.5 ms, drift ≤ 2·50 ppm·10 s = 1 ms,
                    // jitter ≤ 2·10 µs.
                    prop_assert!(
                        skew <= 2_020_000,
                        "mutual skew {skew} ns at t={t} exceeds the ms regime"
                    );
                }
            }
        }
    }
}
