//! Deterministic discrete-event queue.
//!
//! A minimal min-heap keyed by `(time, insertion sequence)`. The
//! insertion-sequence tiebreak makes simulations fully deterministic
//! even when many events share a timestamp — a property every
//! experiment in this repository relies on for reproducibility.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vpm_packet::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event queue ordered by `(time, insertion order)`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `ev` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, ev: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, ev });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.ev))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), "c");
        q.push(SimTime::from_millis(1), "a");
        q.push(SimTime::from_millis(3), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(2), ());
        q.push(SimTime::from_millis(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
    }
}
