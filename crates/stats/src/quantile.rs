//! Quantile estimation from samples with order-statistic confidence
//! intervals — the \[20\] (Sommers et al.) estimator VPM relies on.
//!
//! Given `n` i.i.d.-ish sampled delays, the rank of the true `q`-th
//! quantile among them is Binomial(n, q); a normal approximation to
//! that binomial yields ranks `(lo, hi)` such that the order statistics
//! at those ranks bound the true quantile at the requested confidence.
//! This is how a receipt collector turns a 0.1–5% packet sample into a
//! statement like "90% of packets crossed X in under 5 ms, with
//! probability ≥ 0.95" (paper §2.2 condition 1).

use crate::normal::phi_inv;
use serde::{Deserialize, Serialize};

/// A quantile estimate with its confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantileEstimate {
    /// The quantile being estimated, in `(0, 1)`.
    pub q: f64,
    /// Point estimate (interpolated empirical quantile).
    pub value: f64,
    /// Lower confidence bound (an order statistic of the sample).
    pub lo: f64,
    /// Upper confidence bound (an order statistic of the sample).
    pub hi: f64,
    /// Confidence level of `[lo, hi]`.
    pub confidence: f64,
    /// Number of samples the estimate is based on.
    pub n: usize,
}

impl QuantileEstimate {
    /// Half-width of the confidence interval — the "accuracy" of this
    /// single quantile estimate.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// Interpolated empirical quantile (Hyndman-Fan type 7, the common
/// default) of an **ascending-sorted** slice.
///
/// # Panics
/// Panics if `sorted` is empty or `q` outside `[0, 1]`.
pub fn empirical_quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile order {q} outside [0,1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = h - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Estimate the `q`-th quantile from an **ascending-sorted** sample,
/// with an order-statistic confidence interval at level `confidence`.
///
/// Returns `None` when the sample is empty. With very small samples the
/// interval degrades to the sample range, which is the honest answer.
///
/// ```
/// use vpm_stats::quantile::{estimate_quantile, sort_samples};
///
/// let delays_ms = sort_samples((0..1000).map(|i| i as f64 / 100.0).collect());
/// let p90 = estimate_quantile(&delays_ms, 0.9, 0.95).unwrap();
/// assert!((p90.value - 9.0).abs() < 0.1);
/// assert!(p90.lo <= p90.value && p90.value <= p90.hi);
/// ```
pub fn estimate_quantile(sorted: &[f64], q: f64, confidence: f64) -> Option<QuantileEstimate> {
    if sorted.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile order {q} outside [0,1]");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence {confidence} outside (0,1)"
    );
    let n = sorted.len();
    let value = empirical_quantile(sorted, q);

    let z = phi_inv(0.5 + confidence / 2.0);
    let nq = n as f64 * q;
    let sd = (n as f64 * q * (1.0 - q)).sqrt();
    let lo_rank = (nq - z * sd).floor();
    let hi_rank = (nq + z * sd).ceil();
    let lo_idx = lo_rank.max(0.0) as usize;
    let hi_idx = (hi_rank.max(0.0) as usize).min(n - 1);
    let lo_idx = lo_idx.min(n - 1);

    Some(QuantileEstimate {
        q,
        value,
        lo: sorted[lo_idx],
        hi: sorted[hi_idx],
        confidence,
        n,
    })
}

/// Sort a sample in place and return it — convenience for callers that
/// own their vector.
pub fn sort_samples(mut samples: Vec<f64>) -> Vec<f64> {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantile_of_singleton() {
        assert_eq!(empirical_quantile(&[3.5], 0.9), 3.5);
    }

    #[test]
    fn quantile_interpolates() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(empirical_quantile(&s, 0.0), 1.0);
        assert_eq!(empirical_quantile(&s, 1.0), 5.0);
        assert_eq!(empirical_quantile(&s, 0.5), 3.0);
        assert!((empirical_quantile(&s, 0.25) - 2.0).abs() < 1e-12);
        assert!((empirical_quantile(&s, 0.1) - 1.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quantile_rejects_empty() {
        empirical_quantile(&[], 0.5);
    }

    #[test]
    fn estimate_includes_value_in_interval() {
        let sorted: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        for q in [0.1, 0.5, 0.9, 0.99] {
            let e = estimate_quantile(&sorted, q, 0.95).unwrap();
            assert!(e.lo <= e.value && e.value <= e.hi, "q={q}: {e:?}");
        }
    }

    #[test]
    fn interval_narrows_with_sample_size() {
        let small: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let large: Vec<f64> = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
        let es = estimate_quantile(&small, 0.9, 0.95).unwrap();
        let el = estimate_quantile(&large, 0.9, 0.95).unwrap();
        assert!(
            el.half_width() < es.half_width(),
            "large {el:?} not tighter than small {es:?}"
        );
    }

    #[test]
    fn coverage_on_uniform_samples() {
        // The 95% interval should contain the true quantile in roughly
        // 95% of repetitions; check it's at least 85% over 200 trials.
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        let q = 0.9;
        let mut covered = 0;
        let trials = 200;
        for _ in 0..trials {
            let sorted = sort_samples((0..500).map(|_| rng.gen::<f64>()).collect());
            let e = estimate_quantile(&sorted, q, 0.95).unwrap();
            if e.lo <= q && q <= e.hi {
                covered += 1;
            }
        }
        assert!(covered >= 170, "covered only {covered}/{trials}");
    }

    #[test]
    fn none_on_empty() {
        assert!(estimate_quantile(&[], 0.5, 0.95).is_none());
    }

    proptest! {
        #[test]
        fn quantile_monotone_in_q(
            mut values in proptest::collection::vec(0.0f64..1e6, 2..200),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(empirical_quantile(&values, lo) <= empirical_quantile(&values, hi) + 1e-9);
        }

        #[test]
        fn quantile_within_range(
            mut values in proptest::collection::vec(-1e6f64..1e6, 1..200),
            q in 0.0f64..1.0,
        ) {
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let v = empirical_quantile(&values, q);
            prop_assert!(v >= values[0] - 1e-9);
            prop_assert!(v <= values[values.len() - 1] + 1e-9);
        }
    }
}
