//! Loss-rate statistics.
//!
//! VPM computes *exact* loss from aggregate packet counts (paper §4)
//! and can additionally *estimate* loss from the sampled subset (as in
//! Trajectory Sampling ++, §3.2). The estimators here serve both: exact
//! ratios for aggregates, Wilson score intervals for sampled loss.

use crate::normal::phi_inv;
use serde::{Deserialize, Serialize};

/// Sent/delivered counters with exact rate computation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LossStats {
    /// Packets observed entering (e.g. at the ingress HOP).
    pub sent: u64,
    /// Packets observed leaving (e.g. at the egress HOP).
    pub delivered: u64,
}

impl LossStats {
    /// New counter pair.
    pub fn new(sent: u64, delivered: u64) -> Self {
        LossStats { sent, delivered }
    }

    /// Packets lost (saturating — a lying reporter can claim more
    /// delivered than sent; the verifier handles that separately).
    pub fn lost(&self) -> u64 {
        self.sent.saturating_sub(self.delivered)
    }

    /// Exact loss rate in `[0, 1]`; `None` when nothing was sent.
    pub fn rate(&self) -> Option<f64> {
        if self.sent == 0 {
            None
        } else {
            Some(self.lost() as f64 / self.sent as f64)
        }
    }

    /// Accumulate another counter pair.
    pub fn merge(&mut self, other: LossStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
    }
}

/// Wilson score interval for a binomial proportion: `k` successes out
/// of `n` trials at the given confidence level. Returns `(lo, hi)`.
///
/// # Panics
/// Panics if `n == 0`, `k > n`, or confidence outside `(0, 1)`.
pub fn wilson_interval(k: u64, n: u64, confidence: f64) -> (f64, f64) {
    assert!(n > 0, "wilson_interval needs n > 0");
    assert!(k <= n, "k={k} > n={n}");
    assert!(confidence > 0.0 && confidence < 1.0);
    let z = phi_inv(0.5 + confidence / 2.0);
    let n_f = n as f64;
    let p = k as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let center = (p + z2 / (2.0 * n_f)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_rate() {
        let l = LossStats::new(1000, 750);
        assert_eq!(l.lost(), 250);
        assert!((l.rate().unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(LossStats::default().rate(), None);
    }

    #[test]
    fn lying_reporter_saturates() {
        let l = LossStats::new(10, 15); // claims delivering more than sent
        assert_eq!(l.lost(), 0);
        assert_eq!(l.rate().unwrap(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LossStats::new(100, 90);
        a.merge(LossStats::new(50, 40));
        assert_eq!(a, LossStats::new(150, 130));
    }

    #[test]
    fn wilson_basic_properties() {
        let (lo, hi) = wilson_interval(5, 100, 0.95);
        assert!(lo < 0.05 && 0.05 < hi, "({lo}, {hi})");
        assert!(lo >= 0.0 && hi <= 1.0);
        // Extremes stay in range.
        let (lo0, _) = wilson_interval(0, 100, 0.95);
        assert_eq!(lo0, 0.0);
        let (_, hi1) = wilson_interval(100, 100, 0.95);
        assert_eq!(hi1, 1.0);
    }

    #[test]
    fn wilson_narrows_with_n() {
        let (lo1, hi1) = wilson_interval(10, 100, 0.95);
        let (lo2, hi2) = wilson_interval(1000, 10_000, 0.95);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn wilson_rejects_empty() {
        wilson_interval(0, 0, 0.95);
    }
}
