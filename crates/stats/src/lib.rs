//! Statistics substrate for VPM.
//!
//! The VPM paper estimates a domain's delay performance from *sampled*
//! per-packet delays using the technique of Sommers, Barford, Duffield
//! and Ron, "Accurate and Efficient SLA Compliance Monitoring" (SIGCOMM
//! 2007) — cited as \[20\]. The essence of that technique is estimating
//! *delay quantiles* (not averages) together with confidence bounds
//! derived from order statistics. This crate implements:
//!
//! * [`quantile`] — empirical quantiles and order-statistic confidence
//!   intervals for quantile estimates (the \[20\] estimator);
//! * [`normal`] — the normal distribution helpers those intervals need
//!   (Φ, Φ⁻¹ via Acklam's algorithm, erf);
//! * [`loss`] — exact and sampled loss-rate statistics with Wilson
//!   score intervals;
//! * [`summary`] — streaming mean/variance/min/max (Welford) summaries;
//! * [`accuracy`] — the "delay accuracy" metric of the paper's Figure 2
//!   (worst-case quantile estimation error over a quantile set).
//!
//! Everything operates on plain `f64` values so the crate stays free of
//! unit decisions; callers convert durations to milliseconds (the
//! paper's reporting unit) at the boundary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod loss;
pub mod normal;
pub mod quantile;
pub mod sla;
pub mod summary;

pub use accuracy::{quantile_error, QuantileErrorReport};
pub use loss::{wilson_interval, LossStats};
pub use quantile::{empirical_quantile, estimate_quantile, QuantileEstimate};
pub use sla::{combined_verdict, SlaSpec, Verdict};
pub use summary::Summary;
