//! SLA compliance verdicts from quantile estimates.
//!
//! The point of \[20\]-style quantile estimation — and of VPM itself —
//! is answering questions like "did this domain keep 95% of packets
//! under 30 ms this month?" *with statistical backing*. This module
//! turns a [`QuantileEstimate`] (point estimate + confidence interval)
//! plus a loss bound into a three-valued verdict:
//!
//! * **Violated** — the entire confidence interval sits beyond the
//!   bound: provable from the receipts at the stated confidence;
//! * **Compliant** — the entire interval sits within the bound;
//! * **Inconclusive** — the interval straddles the bound; more samples
//!   (a higher sampling rate, §5.2) would shrink it.

use crate::loss::LossStats;
use crate::quantile::QuantileEstimate;
use serde::{Deserialize, Serialize};

/// An SLA clause over a delay quantile and a loss rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaSpec {
    /// The delay quantile the SLA constrains (e.g. 0.95).
    pub quantile: f64,
    /// The delay bound for that quantile, in the same unit as the
    /// estimates (milliseconds throughout this workspace).
    pub delay_bound: f64,
    /// Maximum allowed loss rate in `[0, 1]`.
    pub loss_bound: f64,
}

/// A three-valued compliance verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The receipts prove compliance at the interval's confidence.
    Compliant,
    /// The receipts prove a violation at the interval's confidence.
    Violated,
    /// The interval straddles the bound — collect more samples.
    Inconclusive,
}

/// Verdict on the delay clause alone.
pub fn delay_verdict(spec: &SlaSpec, est: &QuantileEstimate) -> Verdict {
    debug_assert!(
        (est.q - spec.quantile).abs() < 1e-9,
        "estimate is for q={}, SLA is about q={}",
        est.q,
        spec.quantile
    );
    if est.lo > spec.delay_bound {
        Verdict::Violated
    } else if est.hi <= spec.delay_bound {
        Verdict::Compliant
    } else {
        Verdict::Inconclusive
    }
}

/// Verdict on the loss clause alone (exact counts ⇒ two-valued, but we
/// keep the same type; exact zero-traffic is inconclusive).
pub fn loss_verdict(spec: &SlaSpec, loss: &LossStats) -> Verdict {
    match loss.rate() {
        None => Verdict::Inconclusive,
        Some(r) if r > spec.loss_bound => Verdict::Violated,
        Some(_) => Verdict::Compliant,
    }
}

/// Combined verdict: violated if either clause is provably violated;
/// compliant only if both are provably compliant.
pub fn combined_verdict(
    spec: &SlaSpec,
    delay: Option<&QuantileEstimate>,
    loss: &LossStats,
) -> Verdict {
    let d = delay.map_or(Verdict::Inconclusive, |e| delay_verdict(spec, e));
    let l = loss_verdict(spec, loss);
    match (d, l) {
        (Verdict::Violated, _) | (_, Verdict::Violated) => Verdict::Violated,
        (Verdict::Compliant, Verdict::Compliant) => Verdict::Compliant,
        _ => Verdict::Inconclusive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(lo: f64, value: f64, hi: f64) -> QuantileEstimate {
        QuantileEstimate {
            q: 0.95,
            value,
            lo,
            hi,
            confidence: 0.95,
            n: 1000,
        }
    }

    fn spec() -> SlaSpec {
        SlaSpec {
            quantile: 0.95,
            delay_bound: 30.0,
            loss_bound: 0.01,
        }
    }

    #[test]
    fn delay_clause_three_values() {
        assert_eq!(
            delay_verdict(&spec(), &est(31.0, 35.0, 40.0)),
            Verdict::Violated
        );
        assert_eq!(
            delay_verdict(&spec(), &est(10.0, 15.0, 20.0)),
            Verdict::Compliant
        );
        assert_eq!(
            delay_verdict(&spec(), &est(25.0, 29.0, 33.0)),
            Verdict::Inconclusive
        );
        // Boundary: hi exactly at the bound is compliant (≤).
        assert_eq!(
            delay_verdict(&spec(), &est(20.0, 25.0, 30.0)),
            Verdict::Compliant
        );
    }

    #[test]
    fn loss_clause() {
        assert_eq!(
            loss_verdict(&spec(), &LossStats::new(1000, 995)),
            Verdict::Compliant
        );
        assert_eq!(
            loss_verdict(&spec(), &LossStats::new(1000, 900)),
            Verdict::Violated
        );
        assert_eq!(
            loss_verdict(&spec(), &LossStats::default()),
            Verdict::Inconclusive
        );
    }

    #[test]
    fn combined_logic() {
        let s = spec();
        let good_delay = est(10.0, 15.0, 20.0);
        let bad_delay = est(31.0, 35.0, 40.0);
        let fuzzy_delay = est(25.0, 29.0, 33.0);
        let good_loss = LossStats::new(1000, 999);
        let bad_loss = LossStats::new(1000, 500);

        assert_eq!(
            combined_verdict(&s, Some(&good_delay), &good_loss),
            Verdict::Compliant
        );
        assert_eq!(
            combined_verdict(&s, Some(&good_delay), &bad_loss),
            Verdict::Violated
        );
        assert_eq!(
            combined_verdict(&s, Some(&bad_delay), &good_loss),
            Verdict::Violated
        );
        assert_eq!(
            combined_verdict(&s, Some(&fuzzy_delay), &good_loss),
            Verdict::Inconclusive
        );
        // No delay estimate at all: cannot prove compliance.
        assert_eq!(
            combined_verdict(&s, None, &good_loss),
            Verdict::Inconclusive
        );
        // …but loss violations are provable regardless.
        assert_eq!(combined_verdict(&s, None, &bad_loss), Verdict::Violated);
    }
}
