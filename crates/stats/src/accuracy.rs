//! The "delay accuracy" metric of the paper's Figure 2.
//!
//! Figure 2 reports "the accuracy with which domain X's delay
//! performance is estimated" in milliseconds, as a function of sampling
//! rate and loss. We operationalize accuracy the way the underlying
//! \[20\] technique does: compare the quantile function estimated from
//! the matched samples against the ground-truth quantile function of
//! *all* packets, and report the worst error over a set of quantiles of
//! interest (by default the deciles plus the 95th and 99th percentiles
//! — SLAs are stated over such upper quantiles).

use crate::quantile::empirical_quantile;
use serde::{Deserialize, Serialize};

/// Default quantile set over which accuracy is evaluated.
pub const DEFAULT_QUANTILES: [f64; 11] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99];

/// Per-quantile and worst-case estimation error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileErrorReport {
    /// `(q, true value, estimated value)` triples.
    pub per_quantile: Vec<(f64, f64, f64)>,
    /// Worst absolute error across the quantile set.
    pub max_error: f64,
    /// Mean absolute error across the quantile set.
    pub mean_error: f64,
    /// Number of samples the estimate used.
    pub n_samples: usize,
}

/// Compare estimated quantiles (from `samples`) against ground truth
/// (from `truth`) over `quantiles`. Inputs need not be sorted.
///
/// Returns `None` when either input is empty (no estimate possible).
pub fn quantile_error(
    truth: &[f64],
    samples: &[f64],
    quantiles: &[f64],
) -> Option<QuantileErrorReport> {
    if truth.is_empty() || samples.is_empty() || quantiles.is_empty() {
        return None;
    }
    let mut t: Vec<f64> = truth.to_vec();
    let mut s: Vec<f64> = samples.to_vec();
    t.sort_by(|a, b| a.partial_cmp(b).expect("NaN in truth"));
    s.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));

    let mut per_quantile = Vec::with_capacity(quantiles.len());
    let mut max_error: f64 = 0.0;
    let mut sum = 0.0;
    for &q in quantiles {
        let tv = empirical_quantile(&t, q);
        let sv = empirical_quantile(&s, q);
        let err = (tv - sv).abs();
        max_error = max_error.max(err);
        sum += err;
        per_quantile.push((q, tv, sv));
    }
    Some(QuantileErrorReport {
        per_quantile,
        max_error,
        mean_error: sum / quantiles.len() as f64,
        n_samples: samples.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_sample_zero_error() {
        let truth: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let r = quantile_error(&truth, &truth, &DEFAULT_QUANTILES).unwrap();
        assert!(r.max_error < 1e-9);
        assert!(r.mean_error < 1e-9);
    }

    #[test]
    fn biased_sample_large_error() {
        // Sample only the fastest half — classic "sugarcoating".
        let truth: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let biased: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let r = quantile_error(&truth, &biased, &DEFAULT_QUANTILES).unwrap();
        assert!(r.max_error > 400.0, "max_error {}", r.max_error);
    }

    #[test]
    fn random_thinning_small_error() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(3);
        let truth: Vec<f64> = (0..100_000).map(|_| rng.gen::<f64>() * 10.0).collect();
        let sample: Vec<f64> = truth
            .iter()
            .copied()
            .filter(|_| rng.gen::<f64>() < 0.01)
            .collect();
        let r = quantile_error(&truth, &sample, &DEFAULT_QUANTILES).unwrap();
        assert!(r.max_error < 0.5, "max_error {}", r.max_error);
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert!(quantile_error(&[], &[1.0], &DEFAULT_QUANTILES).is_none());
        assert!(quantile_error(&[1.0], &[], &DEFAULT_QUANTILES).is_none());
        assert!(quantile_error(&[1.0], &[1.0], &[]).is_none());
    }
}
