//! Streaming summaries (Welford's online mean/variance).

use serde::{Deserialize, Serialize};

/// Streaming count/mean/variance/min/max of an f64 sequence.
///
/// Uses Welford's algorithm, numerically stable for long streams.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Summary of a slice.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Add an observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance; `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Population standard deviation; `None` if empty.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum; `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum; `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another summary into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((s.stddev().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(s.min().unwrap(), 2.0);
        assert_eq!(s.max().unwrap(), 9.0);
    }

    proptest! {
        #[test]
        fn merge_equals_concat(
            a in proptest::collection::vec(-1e3f64..1e3, 0..100),
            b in proptest::collection::vec(-1e3f64..1e3, 0..100),
        ) {
            let mut merged = Summary::of(&a);
            merged.merge(&Summary::of(&b));
            let concat: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
            let direct = Summary::of(&concat);
            prop_assert_eq!(merged.count(), direct.count());
            if direct.count() > 0 {
                prop_assert!((merged.mean().unwrap() - direct.mean().unwrap()).abs() < 1e-9);
                prop_assert!((merged.variance().unwrap() - direct.variance().unwrap()).abs() < 1e-6);
                prop_assert_eq!(merged.min(), direct.min());
                prop_assert_eq!(merged.max(), direct.max());
            }
        }
    }
}
