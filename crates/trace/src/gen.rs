//! The synthetic trace generator.
//!
//! Generates the packet sequence a HOP would observe for one HOP path
//! (one source/destination origin-prefix pair), mimicking the paper's
//! methodology of extracting per-prefix-pair sequences from a Tier-1
//! trace at ~100 kpps.

use crate::dist::{BoundedPareto, Exp, PacketSizeMix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vpm_packet::ipv4::{PROTO_TCP, PROTO_UDP};
use vpm_packet::{
    HeaderSpec, Ipv4Header, Packet, SimDuration, SimTime, TcpFlags, TcpHeader, Transport, UdpHeader,
};

/// A timestamped packet as it appears in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracePacket {
    /// Time the packet enters the path (observation time at HOP 1).
    pub ts: SimTime,
    /// The packet itself.
    pub packet: Packet,
}

/// Flow-population parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FlowMix {
    /// Bounded-Pareto shape for flow sizes in packets.
    pub pareto_alpha: f64,
    /// Minimum flow size in packets.
    pub min_flow_pkts: f64,
    /// Maximum flow size in packets.
    pub max_flow_pkts: f64,
    /// Fraction of flows that are TCP (the rest are UDP).
    pub tcp_fraction: f64,
    /// Per-flow packet rate range (packets per second), log-uniform.
    pub flow_pps_range: (f64, f64),
}

impl Default for FlowMix {
    fn default() -> Self {
        FlowMix {
            pareto_alpha: 1.2,
            min_flow_pkts: 2.0,
            max_flow_pkts: 20_000.0,
            tcp_fraction: 0.85,
            flow_pps_range: (20.0, 5_000.0),
        }
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TraceConfig {
    /// The prefix pair naming the HOP path this sequence belongs to.
    pub spec: HeaderSpec,
    /// Target aggregate packet rate for the path.
    pub target_pps: f64,
    /// Trace duration.
    pub duration: SimDuration,
    /// RNG seed — the generator is fully deterministic given the config.
    pub seed: u64,
    /// Flow-population parameters.
    pub mix: FlowMix,
}

impl TraceConfig {
    /// The paper's canonical workload: 100 kpps for `secs` seconds on a
    /// default prefix pair.
    pub fn paper_default(secs: u64, seed: u64) -> Self {
        TraceConfig {
            spec: HeaderSpec::new(
                "10.0.0.0/12".parse().expect("static prefix"),
                "172.16.0.0/14".parse().expect("static prefix"),
            ),
            target_pps: 100_000.0,
            duration: SimDuration::from_secs(secs),
            seed,
            mix: FlowMix::default(),
        }
    }
}

/// Aggregate statistics of a generated trace.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of packets.
    pub packets: u64,
    /// Number of distinct flows.
    pub flows: u64,
    /// Trace span from first to last packet.
    pub span: SimDuration,
    /// Realized packets per second.
    pub realized_pps: f64,
    /// Mean wire length in bytes.
    pub mean_wire_len: f64,
}

/// The synthetic trace generator. See module docs.
#[derive(Debug)]
pub struct TraceGenerator {
    cfg: TraceConfig,
}

impl TraceGenerator {
    /// Create a generator for the given config.
    pub fn new(cfg: TraceConfig) -> Self {
        assert!(cfg.target_pps > 0.0, "target_pps must be positive");
        assert!(
            cfg.duration > SimDuration::ZERO,
            "duration must be positive"
        );
        TraceGenerator { cfg }
    }

    /// Generate the full trace, sorted by timestamp, with `seq` numbers
    /// assigned in arrival order.
    pub fn generate(&self) -> Vec<TracePacket> {
        let cfg = &self.cfg;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let size_dist = BoundedPareto::new(
            cfg.mix.pareto_alpha,
            cfg.mix.min_flow_pkts,
            cfg.mix.max_flow_pkts,
        );
        let sizes = PacketSizeMix::default();
        let dur_s = cfg.duration.as_secs_f64();

        // Flow arrival rate so realized pps ≈ target. Flows that start
        // near the end are truncated by the horizon, so a single pass
        // under-delivers; we run corrective passes until the realized
        // count is within 2% of the target (deterministic: the RNG
        // stream continues across passes).
        let mean_flow_pkts = size_dist.mean();
        let target_pkts = (cfg.target_pps * dur_s) as u64;

        let (lo_pps, hi_pps) = cfg.mix.flow_pps_range;
        let log_lo = lo_pps.ln();
        let log_hi = hi_pps.ln();

        let mut out: Vec<TracePacket> = Vec::with_capacity(target_pkts as usize);
        let mut flow_idx: u64 = 0;
        for _pass in 0..6 {
            let deficit = target_pkts.saturating_sub(out.len() as u64);
            if (deficit as f64) < 0.02 * target_pkts as f64 {
                break;
            }
            let n_flows = (deficit as f64 / mean_flow_pkts).ceil() as u64;
            let end = flow_idx + n_flows.max(1);
            while flow_idx < end {
                emit_flow(
                    &mut out,
                    &mut rng,
                    cfg,
                    &size_dist,
                    &sizes,
                    dur_s,
                    (log_lo, log_hi),
                    flow_idx,
                );
                flow_idx += 1;
            }
        }

        out.sort_by_key(|tp| tp.ts);
        for (i, tp) in out.iter_mut().enumerate() {
            tp.packet.seq = i as u64;
        }
        out
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_flow(
    out: &mut Vec<TracePacket>,
    rng: &mut SmallRng,
    cfg: &TraceConfig,
    size_dist: &BoundedPareto,
    sizes: &PacketSizeMix,
    dur_s: f64,
    (log_lo, log_hi): (f64, f64),
    flow_idx: u64,
) {
    {
        {
            // Body kept at its original nesting to preserve the RNG
            // consumption order of the single-pass generator.
            let start = rng.gen::<f64>() * dur_s;
            let npkts = size_dist.sample(rng).round().max(1.0) as u64;
            let flow_pps = (log_lo + rng.gen::<f64>() * (log_hi - log_lo)).exp();
            let gap = Exp::new(flow_pps);

            let is_tcp = rng.gen::<f64>() < cfg.mix.tcp_fraction;
            let src = cfg.spec.src_prefix.nth_host(rng.gen::<u64>());
            let dst = cfg.spec.dst_prefix.nth_host(rng.gen::<u64>());
            let sport: u16 = rng.gen_range(1024..=65535);
            let dport: u16 = if is_tcp {
                *[80u16, 443, 22, 25, 8080, rng.gen_range(1024..=65535)]
                    .get(rng.gen_range(0..6usize))
                    .expect("static table")
            } else {
                *[53u16, 123, 4500, rng.gen_range(1024..=65535)]
                    .get(rng.gen_range(0..4usize))
                    .expect("static table")
            };
            let mut ip_id: u16 = rng.gen();
            let mut tcp_seq: u32 = rng.gen();

            let mut t = start;
            for _ in 0..npkts {
                if t >= dur_s {
                    break;
                }
                let wire = sizes.sample(rng).max(40);
                let (transport, thl) = if is_tcp {
                    (
                        Transport::Tcp(TcpHeader {
                            sport,
                            dport,
                            seq: tcp_seq,
                            ack: tcp_seq.wrapping_sub(1),
                            flags: TcpFlags::ACK,
                            window: 65535,
                        }),
                        20u16,
                    )
                } else {
                    (
                        Transport::Udp(UdpHeader {
                            sport,
                            dport,
                            length: wire.saturating_sub(20),
                        }),
                        8u16,
                    )
                };
                let payload = wire.saturating_sub(20 + thl);
                let mut ipv4 = Ipv4Header::simple(
                    src,
                    dst,
                    if is_tcp { PROTO_TCP } else { PROTO_UDP },
                    20 + thl + payload,
                );
                ipv4.id = ip_id;
                ipv4.ttl = 64 - (flow_idx % 30) as u8;
                ip_id = ip_id.wrapping_add(1);
                tcp_seq = tcp_seq.wrapping_add(payload.max(1) as u32);

                out.push(TracePacket {
                    ts: SimTime::from_nanos((t * 1e9) as u64),
                    packet: Packet {
                        seq: 0, // assigned after sorting
                        ipv4,
                        transport,
                        payload_len: payload,
                    },
                });
                t += gap.sample(rng);
            }
        }
    }
}

impl TraceGenerator {
    /// Compute aggregate statistics of a generated trace.
    pub fn stats(trace: &[TracePacket]) -> TraceStats {
        if trace.is_empty() {
            return TraceStats {
                packets: 0,
                flows: 0,
                span: SimDuration::ZERO,
                realized_pps: 0.0,
                mean_wire_len: 0.0,
            };
        }
        let span = trace[trace.len() - 1].ts - trace[0].ts;
        let mut flows = std::collections::HashSet::new();
        let mut bytes = 0u64;
        for tp in trace {
            flows.insert((
                tp.packet.ipv4.src,
                tp.packet.ipv4.dst,
                tp.packet.transport.sport(),
                tp.packet.transport.dport(),
                tp.packet.ipv4.protocol,
            ));
            bytes += tp.packet.wire_len() as u64;
        }
        TraceStats {
            packets: trace.len() as u64,
            flows: flows.len() as u64,
            span,
            realized_pps: trace.len() as f64 / span.as_secs_f64().max(1e-9),
            mean_wire_len: bytes as f64 / trace.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64) -> TraceConfig {
        TraceConfig {
            target_pps: 20_000.0,
            duration: SimDuration::from_millis(500),
            ..TraceConfig::paper_default(1, seed)
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = TraceGenerator::new(small_cfg(7)).generate();
        let b = TraceGenerator::new(small_cfg(7)).generate();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[..50.min(a.len())], b[..50.min(b.len())]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceGenerator::new(small_cfg(1)).generate();
        let b = TraceGenerator::new(small_cfg(2)).generate();
        assert_ne!(
            a.iter()
                .take(20)
                .map(|t| t.packet.digest())
                .collect::<Vec<_>>(),
            b.iter()
                .take(20)
                .map(|t| t.packet.digest())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn sorted_and_sequenced() {
        let t = TraceGenerator::new(small_cfg(3)).generate();
        assert!(!t.is_empty());
        for w in t.windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
        for (i, tp) in t.iter().enumerate() {
            assert_eq!(tp.packet.seq, i as u64);
        }
    }

    #[test]
    fn realized_rate_near_target() {
        let cfg = small_cfg(11);
        let t = TraceGenerator::new(cfg).generate();
        let s = TraceGenerator::stats(&t);
        let rel = (s.realized_pps - cfg.target_pps).abs() / cfg.target_pps;
        assert!(
            rel < 0.35,
            "realized {} vs target {}",
            s.realized_pps,
            cfg.target_pps
        );
    }

    #[test]
    fn packets_match_spec() {
        let cfg = small_cfg(5);
        let t = TraceGenerator::new(cfg).generate();
        for tp in t.iter().take(500) {
            assert!(cfg.spec.matches(&tp.packet), "{:?}", tp.packet.ipv4);
        }
    }

    #[test]
    fn digests_mostly_unique() {
        let t = TraceGenerator::new(small_cfg(13)).generate();
        let n = t.len().min(20_000);
        let mut set = std::collections::HashSet::new();
        for tp in &t[..n] {
            set.insert(tp.packet.digest());
        }
        // A few collisions are tolerable; gross duplication means broken
        // header diversity.
        assert!(
            set.len() as f64 > 0.995 * n as f64,
            "{} unique of {n}",
            set.len()
        );
    }

    #[test]
    fn mean_size_near_400() {
        let t = TraceGenerator::new(small_cfg(17)).generate();
        let s = TraceGenerator::stats(&t);
        assert!(
            (330.0..500.0).contains(&s.mean_wire_len),
            "mean wire len {}",
            s.mean_wire_len
        );
    }

    #[test]
    fn flow_population_is_plural() {
        let t = TraceGenerator::new(small_cfg(19)).generate();
        let s = TraceGenerator::stats(&t);
        assert!(s.flows > 50, "only {} flows", s.flows);
    }
}
