//! pcap export/import for synthetic traces.
//!
//! Writes classic libpcap files (LINKTYPE_RAW = raw IPv4, no link
//! header) using the real wire codec from `vpm-packet`, so generated
//! traces can be inspected with tcpdump/Wireshark — and so the wire
//! codec gets exercised against an external format.

use crate::gen::TracePacket;
use std::io::{self, Read, Write};
use vpm_packet::{wire, SimTime};

/// Classic pcap magic (microsecond timestamps, little-endian).
pub const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_RAW: packets begin directly with the IPv4 header.
pub const LINKTYPE_RAW: u32 = 101;

/// Errors from pcap I/O.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic number.
    BadMagic(u32),
    /// Unsupported link type.
    BadLinkType(u32),
    /// A record was truncated.
    Truncated,
    /// A packet failed to parse back through the wire codec.
    BadPacket(wire::WireError),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "I/O error: {e}"),
            PcapError::BadMagic(m) => write!(f, "bad pcap magic {m:#010x}"),
            PcapError::BadLinkType(l) => write!(f, "unsupported link type {l}"),
            PcapError::Truncated => write!(f, "truncated pcap record"),
            PcapError::BadPacket(e) => write!(f, "packet decode failed: {e}"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// Write a trace as a pcap file.
pub fn write_pcap<W: Write>(mut w: W, trace: &[TracePacket]) -> Result<(), PcapError> {
    // Global header.
    w.write_all(&PCAP_MAGIC.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // version major
    w.write_all(&4u16.to_le_bytes())?; // version minor
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&65535u32.to_le_bytes())?; // snaplen
    w.write_all(&LINKTYPE_RAW.to_le_bytes())?;

    for tp in trace {
        let bytes = wire::encode(&tp.packet);
        let ns = tp.ts.as_nanos();
        w.write_all(&((ns / 1_000_000_000) as u32).to_le_bytes())?;
        w.write_all(&(((ns % 1_000_000_000) / 1_000) as u32).to_le_bytes())?;
        w.write_all(&(bytes.len() as u32).to_le_bytes())?;
        w.write_all(&(bytes.len() as u32).to_le_bytes())?;
        w.write_all(&bytes)?;
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> Result<Option<u32>, PcapError> {
    let mut buf = [0u8; 4];
    match r.read_exact(&mut buf) {
        Ok(()) => Ok(Some(u32::from_le_bytes(buf))),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Read a pcap file back into a trace (sequence numbers reassigned).
pub fn read_pcap<R: Read>(mut r: R) -> Result<Vec<TracePacket>, PcapError> {
    let magic = read_u32(&mut r)?.ok_or(PcapError::Truncated)?;
    if magic != PCAP_MAGIC {
        return Err(PcapError::BadMagic(magic));
    }
    let mut header_rest = [0u8; 16];
    r.read_exact(&mut header_rest).map_err(PcapError::Io)?;
    let mut link = [0u8; 4];
    r.read_exact(&mut link).map_err(PcapError::Io)?;
    let link = u32::from_le_bytes(link);
    if link != LINKTYPE_RAW {
        return Err(PcapError::BadLinkType(link));
    }

    let mut out = Vec::new();
    while let Some(ts_sec) = read_u32(&mut r)? {
        let ts_usec = read_u32(&mut r)?.ok_or(PcapError::Truncated)?;
        let incl = read_u32(&mut r)?.ok_or(PcapError::Truncated)? as usize;
        let _orig = read_u32(&mut r)?.ok_or(PcapError::Truncated)?;
        let mut bytes = vec![0u8; incl];
        r.read_exact(&mut bytes).map_err(|_| PcapError::Truncated)?;
        let mut packet = wire::decode(&bytes).map_err(PcapError::BadPacket)?;
        packet.seq = out.len() as u64;
        out.push(TracePacket {
            ts: SimTime::from_nanos(ts_sec as u64 * 1_000_000_000 + ts_usec as u64 * 1_000),
            packet,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{TraceConfig, TraceGenerator};
    use vpm_packet::SimDuration;

    fn tiny_trace() -> Vec<TracePacket> {
        TraceGenerator::new(TraceConfig {
            target_pps: 2_000.0,
            duration: SimDuration::from_millis(100),
            ..TraceConfig::paper_default(1, 5)
        })
        .generate()
    }

    #[test]
    fn roundtrip_preserves_headers_and_microsecond_times() {
        let trace = tiny_trace();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &trace).unwrap();
        let back = read_pcap(&buf[..]).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.iter().zip(&back) {
            // pcap stores microseconds: times agree to 1 µs.
            let dt = a.ts.signed_delta(b.ts).abs();
            assert!(dt < 1_000, "timestamp drift {dt} ns");
            assert_eq!(a.packet.ipv4, b.packet.ipv4);
            assert_eq!(a.packet.transport, b.packet.transport);
            assert_eq!(a.packet.digest(), b.packet.digest());
        }
    }

    #[test]
    fn header_fields() {
        let mut buf = Vec::new();
        write_pcap(&mut buf, &[]).unwrap();
        assert_eq!(buf.len(), 24, "global header only");
        assert_eq!(
            u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            PCAP_MAGIC
        );
        assert_eq!(
            u32::from_le_bytes(buf[20..24].try_into().unwrap()),
            LINKTYPE_RAW
        );
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(matches!(
            read_pcap(&b"\x00\x01\x02\x03rest-too-short"[..]),
            Err(PcapError::BadMagic(_))
        ));
        let trace = tiny_trace();
        let mut buf = Vec::new();
        write_pcap(&mut buf, &trace[..3]).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(matches!(read_pcap(&buf[..]), Err(PcapError::Truncated)));
    }
}
