//! Synthetic packet traces — the CAIDA substitute.
//!
//! The paper evaluates VPM on packet sequences extracted from 2008
//! CAIDA traces of a Tier-1 ISP (all packets carrying a given source
//! and destination origin-prefix pair, at roughly 100 kpps). Those
//! traces are proprietary, so this crate generates synthetic sequences
//! that preserve the properties VPM's algorithms are actually sensitive
//! to:
//!
//! * **header entropy** — digests must be near-uniform so thresholds
//!   translate into rates; we draw hosts, ports, IP ids and TCP
//!   sequence numbers across a realistic flow population;
//! * **packet-size mix** — the paper's overhead math assumes ~400 B
//!   average packets; we use the classic tri-modal Internet mix
//!   (40/576/1500 plus a uniform component);
//! * **rate** — a configurable target pps (default 100 kpps) with
//!   Poisson-ish arrivals from many concurrent flows with heavy-tailed
//!   (bounded-Pareto) sizes.
//!
//! See DESIGN.md "Substitutions" for the full justification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod gen;
pub mod io;
pub mod pcap;

pub use gen::{FlowMix, TraceConfig, TraceGenerator, TracePacket, TraceStats};
