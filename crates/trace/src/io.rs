//! Trace serialization: JSON-lines export/import.
//!
//! One JSON object per line keeps traces streamable and diffable; the
//! format is versioned via a header line so future layouts can evolve.

use crate::gen::TracePacket;
use std::io::{self, BufRead, Write};

/// Magic header line identifying the format.
pub const HEADER: &str = "#vpm-trace-v1";

/// Errors from trace I/O.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or wrong header line.
    BadHeader(String),
    /// A line failed to parse.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        msg: String,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "I/O error: {e}"),
            TraceIoError::BadHeader(h) => write!(f, "bad trace header {h:?}"),
            TraceIoError::BadLine { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Write a trace to `w` in JSON-lines format.
pub fn write_trace<W: Write>(mut w: W, trace: &[TracePacket]) -> Result<(), TraceIoError> {
    writeln!(w, "{HEADER}")?;
    for tp in trace {
        let line = serde_json::to_string(tp).map_err(|e| TraceIoError::BadLine {
            line: 0,
            msg: e.to_string(),
        })?;
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Read a trace from `r`.
pub fn read_trace<R: BufRead>(r: R) -> Result<Vec<TracePacket>, TraceIoError> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| TraceIoError::BadHeader("<empty>".into()))??;
    if header.trim() != HEADER {
        return Err(TraceIoError::BadHeader(header));
    }
    let mut out = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let tp = serde_json::from_str(&line).map_err(|e| TraceIoError::BadLine {
            line: i + 2,
            msg: e.to_string(),
        })?;
        out.push(tp);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{TraceConfig, TraceGenerator};
    use vpm_packet::SimDuration;

    fn tiny_trace() -> Vec<TracePacket> {
        let cfg = TraceConfig {
            target_pps: 5_000.0,
            duration: SimDuration::from_millis(50),
            ..TraceConfig::paper_default(1, 99)
        };
        TraceGenerator::new(cfg).generate()
    }

    #[test]
    fn roundtrip() {
        let trace = tiny_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_trace(&b"not a header\n"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadHeader(_)));
    }

    #[test]
    fn rejects_garbage_line() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &tiny_trace()[..1]).unwrap();
        buf.extend_from_slice(b"{broken json\n");
        let err = read_trace(&buf[..]).unwrap_err();
        match err {
            TraceIoError::BadLine { line, .. } => assert_eq!(line, 3),
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn tolerates_blank_lines() {
        let trace = tiny_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace[..2]).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert_eq!(read_trace(&buf[..]).unwrap(), vec![]);
    }
}
