//! Random distributions used by the trace generator.
//!
//! Implemented from first principles on top of `rand` (the offline
//! crate set has no `rand_distr`): exponential and bounded-Pareto via
//! inverse transform, and the tri-modal Internet packet-size mixture.

use rand::Rng;

/// Exponential distribution with the given rate (events per unit).
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    rate: f64,
}

impl Exp {
    /// Create an exponential distribution; `rate` must be positive.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
        Exp { rate }
    }

    /// Draw a sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform; 1-U avoids ln(0).
        -(1.0 - rng.gen::<f64>()).ln() / self.rate
    }
}

/// Bounded Pareto distribution on `[xm, cap]` with shape `alpha`.
///
/// Used for flow sizes in packets — heavy-tailed with a finite cap, the
/// standard model for Internet flow-size distributions.
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    alpha: f64,
    xm: f64,
    cap: f64,
}

impl BoundedPareto {
    /// Create a bounded Pareto; requires `0 < xm < cap` and `alpha > 0`.
    pub fn new(alpha: f64, xm: f64, cap: f64) -> Self {
        assert!(alpha > 0.0 && xm > 0.0 && cap > xm, "bad Pareto params");
        BoundedPareto { alpha, xm, cap }
    }

    /// Draw a sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let ratio = (self.xm / self.cap).powf(self.alpha);
        // Inverse CDF of the truncated Pareto.
        self.xm / (1.0 - u * (1.0 - ratio)).powf(1.0 / self.alpha)
    }

    /// Analytic mean of the bounded Pareto (used to size the flow
    /// arrival rate so realized pps hits the target).
    pub fn mean(&self) -> f64 {
        let a = self.alpha;
        let l = self.xm;
        let h = self.cap;
        if (a - 1.0).abs() < 1e-9 {
            // α = 1 special case.
            let c = 1.0 / (1.0 / l - 1.0 / h);
            return c * (h / l).ln() / l.max(1e-12);
        }
        let num = l.powf(a) / (1.0 - (l / h).powf(a));
        num * (a / (a - 1.0)) * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
    }
}

/// The classic tri-modal Internet packet-size mixture plus a small
/// uniform component. Sizes are total wire lengths in bytes.
#[derive(Debug, Clone, Copy)]
pub struct PacketSizeMix {
    /// Probability of a 40-byte (ACK-sized) packet.
    pub p_small: f64,
    /// Probability of a 576-byte packet.
    pub p_medium: f64,
    /// Probability of a 1500-byte (MTU) packet.
    pub p_large: f64,
    // remainder: uniform in [64, 1400]
}

impl Default for PacketSizeMix {
    fn default() -> Self {
        // Tuned so the mean lands near 400 B — the figure the paper's
        // overhead arithmetic uses (§7.1).
        PacketSizeMix {
            p_small: 0.58,
            p_medium: 0.16,
            p_large: 0.13,
        }
    }
}

impl PacketSizeMix {
    /// Draw a total packet length in bytes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        let u: f64 = rng.gen();
        if u < self.p_small {
            40
        } else if u < self.p_small + self.p_medium {
            576
        } else if u < self.p_small + self.p_medium + self.p_large {
            1500
        } else {
            rng.gen_range(64..=1400)
        }
    }

    /// Approximate mean of the mixture in bytes.
    pub fn approx_mean(&self) -> f64 {
        let p_rest = 1.0 - self.p_small - self.p_medium - self.p_large;
        self.p_small * 40.0 + self.p_medium * 576.0 + self.p_large * 1500.0 + p_rest * 732.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn exponential_mean() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = Exp::new(4.0);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        Exp::new(0.0);
    }

    #[test]
    fn pareto_bounds_and_mean() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = BoundedPareto::new(1.2, 2.0, 10_000.0);
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!((2.0..=10_000.0).contains(&x), "out of bounds: {x}");
            sum += x;
        }
        let emp = sum / n as f64;
        let ana = d.mean();
        assert!(
            (emp - ana).abs() / ana < 0.15,
            "empirical {emp} vs analytic {ana}"
        );
    }

    #[test]
    fn pareto_alpha_one() {
        let d = BoundedPareto::new(1.0, 1.0, 100.0);
        // mean of bounded Pareto with α=1 on [1,100]: ln(100)/(1-1/100)
        let expect = (100.0f64).ln() / (1.0 - 0.01);
        assert!((d.mean() - expect).abs() / expect < 0.05, "{}", d.mean());
    }

    #[test]
    fn size_mix_mean_near_400() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mix = PacketSizeMix::default();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| mix.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!(
            (350.0..470.0).contains(&mean),
            "size mix mean {mean} strays from ~400B"
        );
        assert!((mix.approx_mean() - mean).abs() < 40.0);
    }

    #[test]
    fn size_mix_emits_all_modes() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mix = PacketSizeMix::default();
        let mut saw = std::collections::HashSet::new();
        for _ in 0..10_000 {
            saw.insert(mix.sample(&mut rng));
        }
        assert!(saw.contains(&40));
        assert!(saw.contains(&576));
        assert!(saw.contains(&1500));
        assert!(saw.len() > 10, "uniform component missing");
    }
}
