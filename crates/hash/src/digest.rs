//! Packet digests.
//!
//! A digest is the 64-bit fingerprint a HOP computes over the invariant
//! portion of a packet (IP + transport headers; see
//! `vpm-packet::Packet::digest`). Every VPM decision — marker election,
//! delay sampling, aggregate cutting — is driven by digests, so the
//! digest must be (a) identical at every HOP that observes the packet
//! and (b) close to uniformly distributed over `u64` for threshold
//! arithmetic to translate into predictable rates.

use crate::lookup3;
use serde::{Deserialize, Serialize};

/// Seed for packet digests. All HOPs must use the same seed for the same
/// traffic, otherwise their receipts cannot be matched; VPM fixes it at
/// design time, like the marker threshold `µ` (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DigestSeed(pub u64);

/// The system-wide default digest seed.
pub const DEFAULT_DIGEST_SEED: DigestSeed = DigestSeed(0x5650_4d32_3031_3000); // "VPM2010\0"

/// A 64-bit packet digest (`PktID` in receipt terminology).
///
/// Ordering and equality are plain integer semantics; `Digest` is used
/// directly as the `PktID` field of sample records and aggregate
/// identifiers.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Digest(pub u64);

impl Digest {
    /// Map the digest to a float in `[0, 1)`, for diagnostics and tests.
    #[inline]
    pub fn as_unit_f64(self) -> f64 {
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Digest a byte string with the given seed.
#[inline]
pub fn digest_bytes(bytes: &[u8], seed: DigestSeed) -> Digest {
    Digest(lookup3::hash64(bytes, seed.0))
}

/// Digest a word slice with the given seed.
///
/// lookup3 guarantees that on little-endian byte order `hashword2` over
/// `n` words equals `hashlittle2` over the same `4n` bytes, so for
/// word-aligned digest inputs (little-endian word decoding) this is
/// exactly [`digest_bytes`] — but ~3× cheaper, since the word path
/// skips all per-byte assembly.
#[inline]
pub fn digest_words(words: &[u32], seed: DigestSeed) -> Digest {
    Digest(lookup3::hash64_words(words, seed.0))
}

/// Digest a batch of fixed-width word blocks (one digest per block)
/// into `out`, which is **cleared first**: after the call,
/// `out[i] == digest_words(&blocks[i], seed)` and
/// `out.len() == blocks.len()`, regardless of what the (reusable)
/// scratch Vec held before.
///
/// This is the slice-digesting hot path for batched collectors: full
/// quads of blocks go through the multi-lane lookup3 kernel
/// ([`crate::lanes::hash64_words_x4`] — 4 digests per invocation, SSE2
/// where statically available), the ≤3-block remainder through the
/// scalar path. Byte-identical to calling [`digest_words`] on each
/// block (pinned by proptests below), so callers see only the
/// throughput difference.
pub fn digest_batch<const W: usize>(blocks: &[[u32; W]], seed: DigestSeed, out: &mut Vec<Digest>) {
    out.clear();
    out.reserve(blocks.len());
    let mut rest = blocks;
    while let [q0, q1, q2, q3, tail @ ..] = rest {
        let hashes = crate::lanes::hash64_words_x4(q0, q1, q2, q3, seed.0);
        out.extend(hashes.into_iter().map(Digest));
        rest = tail;
    }
    for block in rest {
        out.push(digest_words(block, seed));
    }
}

/// The scalar reference implementation of [`digest_batch`]: one
/// [`digest_words`] call per block, no multi-lane kernel. Same
/// clear-and-fill contract. Kept public so benches can measure the
/// lane win and tests can pin byte-identity without reimplementing
/// the loop.
pub fn digest_batch_scalar<const W: usize>(
    blocks: &[[u32; W]],
    seed: DigestSeed,
    out: &mut Vec<Digest>,
) {
    out.clear();
    out.reserve(blocks.len());
    for block in blocks {
        out.push(digest_words(block, seed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic() {
        let d1 = digest_bytes(b"packet header bytes", DEFAULT_DIGEST_SEED);
        let d2 = digest_bytes(b"packet header bytes", DEFAULT_DIGEST_SEED);
        assert_eq!(d1, d2);
    }

    #[test]
    fn seed_sensitivity() {
        let a = digest_bytes(b"packet", DigestSeed(1));
        let b = digest_bytes(b"packet", DigestSeed(2));
        assert_ne!(a, b);
    }

    #[test]
    fn unit_mapping_in_range() {
        for x in [0u64, 1, u64::MAX, 0x8000_0000_0000_0000] {
            let u = Digest(x).as_unit_f64();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn rough_uniformity_of_unit_mapping() {
        // Mean of mapped digests over distinct inputs should be ~0.5.
        let n = 20_000u64;
        let mut acc = 0.0;
        for i in 0..n {
            acc += digest_bytes(&i.to_le_bytes(), DEFAULT_DIGEST_SEED).as_unit_f64();
        }
        let mean = acc / n as f64;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }

    #[test]
    fn digest_batch_matches_per_element() {
        let blocks: Vec<[u32; 6]> = (0..100u32)
            .map(|i| [i, i ^ 7, i.wrapping_mul(13), 0, u32::MAX - i, i << 8])
            .collect();
        let mut out = Vec::new();
        digest_batch(&blocks, DEFAULT_DIGEST_SEED, &mut out);
        assert_eq!(out.len(), blocks.len());
        for (block, d) in blocks.iter().zip(&out) {
            assert_eq!(*d, digest_words(block, DEFAULT_DIGEST_SEED));
        }
    }

    /// Pin the clear-and-fill contract: a reused, dirty scratch Vec
    /// holds exactly the new batch afterwards — no stale digests ahead
    /// of (or behind) the fresh ones.
    #[test]
    fn digest_batch_clears_a_dirty_scratch_buffer() {
        let stale: Vec<[u32; 4]> = (0..10u32).map(|i| [i, i, i, i]).collect();
        let fresh: Vec<[u32; 4]> = (0..3u32).map(|i| [i ^ 9, 0, 1, 2]).collect();
        let mut out = Vec::new();
        digest_batch(&stale, DEFAULT_DIGEST_SEED, &mut out);
        assert_eq!(out.len(), 10);
        digest_batch(&fresh, DEFAULT_DIGEST_SEED, &mut out);
        assert_eq!(out.len(), fresh.len(), "stale digests must not survive");
        for (block, d) in fresh.iter().zip(&out) {
            assert_eq!(*d, digest_words(block, DEFAULT_DIGEST_SEED));
        }
    }

    proptest! {
        /// Multi-lane vs scalar byte-identity over the whole length
        /// range that matters (0..=257 covers empty, sub-quad, exact
        /// quads, and every remainder class well past one batch), at
        /// the collector's digest width W=6.
        #[test]
        fn digest_batch_lanes_match_scalar_w6(
            words in proptest::collection::vec(any::<u32>(), 0..=257 * 6),
            seed in any::<u64>(),
        ) {
            let s = DigestSeed(seed);
            let blocks: Vec<[u32; 6]> = words
                .chunks_exact(6)
                .map(|c| [c[0], c[1], c[2], c[3], c[4], c[5]])
                .collect();
            let mut lanes = Vec::new();
            let mut scalar = Vec::new();
            digest_batch(&blocks, s, &mut lanes);
            digest_batch_scalar(&blocks, s, &mut scalar);
            prop_assert_eq!(lanes, scalar);
        }

        /// Same identity at a width with no mix loop (W=3, pure tail)
        /// and a multi-mix-block width (W=8): the kernel must track
        /// scalar control flow at every width class, not just the
        /// packet digest's W=6.
        #[test]
        fn digest_batch_lanes_match_scalar_other_widths(
            words in proptest::collection::vec(any::<u32>(), 0..=24 * 24),
            seed in any::<u64>(),
        ) {
            let s = DigestSeed(seed);
            let b3: Vec<[u32; 3]> = words.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
            let b8: Vec<[u32; 8]> = words
                .chunks_exact(8)
                .map(|c| [c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])
                .collect();
            let (mut lanes, mut scalar) = (Vec::new(), Vec::new());
            digest_batch(&b3, s, &mut lanes);
            digest_batch_scalar(&b3, s, &mut scalar);
            prop_assert_eq!(&lanes, &scalar);
            digest_batch(&b8, s, &mut lanes);
            digest_batch_scalar(&b8, s, &mut scalar);
            prop_assert_eq!(&lanes, &scalar);
        }

        /// Misaligned inputs: digesting a sub-slice starting at an
        /// arbitrary offset (so quad boundaries — and the underlying
        /// addresses — shift relative to the allocation) must equal
        /// digesting those blocks alone. The lane kernel may not care
        /// where a block sits in memory or within a batch.
        #[test]
        fn digest_batch_is_offset_invariant(
            words in proptest::collection::vec(any::<u32>(), 6..=130 * 6),
            raw_offset in any::<u16>(),
            seed in any::<u64>(),
        ) {
            let s = DigestSeed(seed);
            let blocks: Vec<[u32; 6]> = words
                .chunks_exact(6)
                .map(|c| [c[0], c[1], c[2], c[3], c[4], c[5]])
                .collect();
            let off = raw_offset as usize % blocks.len();
            let sub = &blocks[off..];
            let mut from_sub = Vec::new();
            digest_batch(sub, s, &mut from_sub);
            let mut whole = Vec::new();
            digest_batch(&blocks, s, &mut whole);
            prop_assert_eq!(from_sub.len(), sub.len());
            for (i, block) in sub.iter().enumerate() {
                prop_assert_eq!(from_sub[i], digest_words(block, s));
            }
            // And the tail of the whole-batch run sees the same blocks
            // but at different quad phase — digests must still agree
            // element-wise with the scalar truth.
            prop_assert_eq!(&whole[off..], &from_sub[..]);
        }

        /// The word path must agree with the byte path on word-aligned
        /// input: this is what lets the batched collector digest
        /// pre-assembled word blocks while per-packet code hashes bytes.
        #[test]
        fn digest_words_matches_digest_bytes(words in proptest::collection::vec(any::<u32>(), 0..32), seed in any::<u64>()) {
            let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            let s = DigestSeed(seed);
            prop_assert_eq!(digest_words(&words, s), digest_bytes(&bytes, s));
        }

        #[test]
        fn digest_is_pure(bytes in proptest::collection::vec(any::<u8>(), 0..128), seed in any::<u64>()) {
            let s = DigestSeed(seed);
            prop_assert_eq!(digest_bytes(&bytes, s), digest_bytes(&bytes, s));
        }

        #[test]
        fn distinct_suffix_bytes_change_digest(bytes in proptest::collection::vec(any::<u8>(), 1..64)) {
            let mut other = bytes.clone();
            let last = other.len() - 1;
            other[last] = other[last].wrapping_add(1);
            prop_assert_ne!(
                digest_bytes(&bytes, DEFAULT_DIGEST_SEED),
                digest_bytes(&other, DEFAULT_DIGEST_SEED)
            );
        }
    }
}
