//! The keyed sampling function of Algorithm 1 (paper §5.1).
//!
//! `SampleFcn(Digest(q), Digest(p))` decides whether an already-observed
//! packet `q` is delay-sampled, keyed by the digest of the *next marker
//! packet* `p`. Because `p` is in the future when `q` is forwarded, a
//! domain cannot know at forwarding time whether `q`'s fate will be
//! reported on — this is what makes the sampling bias-resistant.
//!
//! The function must be:
//! * deterministic and identical at every HOP (so thresholds give the
//!   superset property of §5.2),
//! * uniform over `u64` for any fixed marker (so a threshold `σ`
//!   translates into a predictable sampling rate),
//! * and practically unpredictable without knowing the marker digest.

use crate::digest::Digest;
use crate::lookup3;

/// A fixed domain-separation key so `SampleFcn` outputs are independent
/// of raw digest values and of other uses of lookup3 in the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleKey(pub u64);

/// Default domain-separation key for `SampleFcn`.
pub const DEFAULT_SAMPLE_KEY: SampleKey = SampleKey(0x53_41_4d_50_4c_45_46_4e); // "SAMPLEFN"

/// `SampleFcn(Digest(q), Digest(p))` with the default key.
///
/// Returns a uniform 64-bit value; Algorithm 1 samples `q` when this
/// value exceeds the HOP-local sampling threshold `σ`.
#[inline]
pub fn sample_fcn(q: Digest, marker: Digest) -> u64 {
    sample_fcn_keyed(q, marker, DEFAULT_SAMPLE_KEY)
}

/// `SampleFcn` with an explicit domain-separation key.
#[inline]
pub fn sample_fcn_keyed(q: Digest, marker: Digest, key: SampleKey) -> u64 {
    let words = [
        q.0 as u32,
        (q.0 >> 32) as u32,
        marker.0 as u32,
        (marker.0 >> 32) as u32,
    ];
    lookup3::hash64_words(&words, key.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn depends_on_both_arguments() {
        let q = Digest(42);
        let m1 = Digest(1000);
        let m2 = Digest(1001);
        assert_ne!(sample_fcn(q, m1), sample_fcn(q, m2));
        assert_ne!(sample_fcn(Digest(43), m1), sample_fcn(q, m1));
    }

    #[test]
    fn asymmetric_in_arguments() {
        // SampleFcn(a, b) must differ from SampleFcn(b, a) in general —
        // the marker plays a distinguished role.
        let a = Digest(0x1234_5678_9abc_def0);
        let b = Digest(0x0fed_cba9_8765_4321);
        assert_ne!(sample_fcn(a, b), sample_fcn(b, a));
    }

    #[test]
    fn key_separates_domains() {
        let q = Digest(7);
        let m = Digest(11);
        assert_ne!(
            sample_fcn_keyed(q, m, SampleKey(1)),
            sample_fcn_keyed(q, m, SampleKey(2))
        );
    }

    #[test]
    fn rough_uniformity_for_fixed_marker() {
        // For a fixed marker, the fraction of q's whose sample value
        // exceeds the median must be ~1/2.
        let marker = Digest(0xdead_beef_cafe_f00d);
        let n = 40_000u64;
        let mut above = 0u64;
        for i in 0..n {
            if sample_fcn(Digest(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)), marker) > u64::MAX / 2 {
                above += 1;
            }
        }
        let frac = above as f64 / n as f64;
        assert!((0.48..0.52).contains(&frac), "frac {frac}");
    }

    proptest! {
        #[test]
        fn deterministic(q in any::<u64>(), m in any::<u64>()) {
            prop_assert_eq!(sample_fcn(Digest(q), Digest(m)), sample_fcn(Digest(q), Digest(m)));
        }
    }
}
