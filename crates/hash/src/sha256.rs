//! In-tree SHA-256 (FIPS 180-4) and HMAC-SHA-256 (RFC 2104).
//!
//! The receipt plane needs real cryptographic binding — a MAC trailer
//! over every published wire frame — and the build container has no
//! crates.io access, so the primitive lives here under the same
//! no-dependency discipline as the rest of `vpm-hash`. The
//! implementation is the straightforward scalar compression function:
//! receipts are batched, so MAC cost is amortized over whole frames
//! and the §7.1 budget cares about bytes, not cycles.
//!
//! Correctness is pinned against the NIST FIPS 180-4 example vectors
//! (including the streaming million-`a` message) and all seven RFC
//! 4231 HMAC-SHA-256 test cases.

/// Round constants: fractional parts of the cube roots of the first
/// 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: fractional parts of the square roots of the
/// first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// SHA-256 block size in bytes (also the HMAC pad width).
pub const SHA256_BLOCK_BYTES: usize = 64;

/// SHA-256 digest size in bytes.
pub const SHA256_DIGEST_BYTES: usize = 32;

/// Incremental SHA-256 hasher.
///
/// ```
/// use vpm_hash::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), vpm_hash::sha256(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; SHA256_BLOCK_BYTES],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher in the FIPS 180-4 initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; SHA256_BLOCK_BYTES],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`; may be called any number of times.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (SHA256_BLOCK_BYTES - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == SHA256_BLOCK_BYTES {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        while data.len() >= SHA256_BLOCK_BYTES {
            let (block, rest) = data.split_at(SHA256_BLOCK_BYTES);
            compress(&mut self.state, block.try_into().expect("64-byte split"));
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Pad, run the final blocks, and return the 32-byte digest.
    pub fn finalize(mut self) -> [u8; SHA256_DIGEST_BYTES] {
        let bit_len = self.total_len.wrapping_mul(8);
        // 0x80 terminator, then zeros until 8 bytes remain in a block.
        self.update(&[0x80]);
        while self.buf_len != SHA256_BLOCK_BYTES - 8 {
            self.update(&[0]);
        }
        // Length field is excluded from `total_len` bookkeeping by
        // snapshotting `bit_len` first.
        let mut block = self.buf;
        block[SHA256_BLOCK_BYTES - 8..].copy_from_slice(&bit_len.to_be_bytes());
        compress(&mut self.state, &block);

        let mut out = [0u8; SHA256_DIGEST_BYTES];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// One FIPS 180-4 §6.2.2 compression round over a 64-byte block.
fn compress(state: &mut [u32; 8], block: &[u8; SHA256_BLOCK_BYTES]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; SHA256_DIGEST_BYTES] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// HMAC-SHA-256 of `msg` under `key` (RFC 2104; any key length —
/// keys longer than the 64-byte block are hashed first).
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; SHA256_DIGEST_BYTES] {
    let mut k = [0u8; SHA256_BLOCK_BYTES];
    if key.len() > SHA256_BLOCK_BYTES {
        k[..SHA256_DIGEST_BYTES].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; SHA256_BLOCK_BYTES];
    let mut opad = [0x5cu8; SHA256_BLOCK_BYTES];
    for i in 0..SHA256_BLOCK_BYTES {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time 32-byte comparison: MAC checks must not leak how
/// many prefix bytes matched through early exit.
pub fn mac_eq(a: &[u8; SHA256_DIGEST_BYTES], b: &[u8; SHA256_DIGEST_BYTES]) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
            .collect()
    }

    // FIPS 180-4 example vectors (NIST CSRC "SHA All" examples).
    #[test]
    fn nist_fips_180_4_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
                  ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
        ];
        for (msg, want) in cases {
            assert_eq!(&hex(&sha256(msg)), want, "msg len {}", msg.len());
        }
    }

    #[test]
    fn nist_million_a_streams_through_arbitrary_chunking() {
        // The millionth-`a` vector, fed in deliberately awkward chunk
        // sizes to exercise the buffered update path.
        let mut h = Sha256::new();
        let mut fed = 0usize;
        let mut chunk = 1usize;
        while fed < 1_000_000 {
            let n = chunk.min(1_000_000 - fed);
            h.update(&b"a".repeat(n));
            fed += n;
            chunk = (chunk * 3 + 7) % 257 + 1;
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_one_shot_at_every_split() {
        let data: Vec<u8> = (0..257u16).map(|i| (i * 31 % 251) as u8).collect();
        let want = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split {split}");
        }
    }

    // RFC 4231: all seven HMAC-SHA-256 test cases. TC5 checks the
    // truncated-output case by prefix.
    #[test]
    fn rfc_4231_hmac_sha256_vectors() {
        struct Tc {
            key: Vec<u8>,
            data: Vec<u8>,
            mac: &'static str,
            truncated_to: usize,
        }
        let cases = [
            Tc {
                key: vec![0x0b; 20],
                data: b"Hi There".to_vec(),
                mac: "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
                truncated_to: 32,
            },
            Tc {
                key: b"Jefe".to_vec(),
                data: b"what do ya want for nothing?".to_vec(),
                mac: "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
                truncated_to: 32,
            },
            Tc {
                key: vec![0xaa; 20],
                data: vec![0xdd; 50],
                mac: "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
                truncated_to: 32,
            },
            Tc {
                key: unhex("0102030405060708090a0b0c0d0e0f10111213141516171819"),
                data: vec![0xcd; 50],
                mac: "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
                truncated_to: 32,
            },
            Tc {
                key: vec![0x0c; 20],
                data: b"Test With Truncation".to_vec(),
                mac: "a3b6167473100ee06e0c796c2955552b",
                truncated_to: 16,
            },
            Tc {
                key: vec![0xaa; 131],
                data: b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
                mac: "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
                truncated_to: 32,
            },
            Tc {
                key: vec![0xaa; 131],
                data: b"This is a test using a larger than block-size key and a larger \
                        than block-size data. The key needs to be hashed before being \
                        used by the HMAC algorithm."
                    .to_vec(),
                mac: "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2",
                truncated_to: 32,
            },
        ];
        for (i, tc) in cases.iter().enumerate() {
            let got = hmac_sha256(&tc.key, &tc.data);
            assert_eq!(
                hex(&got[..tc.truncated_to]),
                tc.mac,
                "RFC 4231 test case {}",
                i + 1
            );
        }
    }

    #[test]
    fn mac_eq_is_exact() {
        let a = sha256(b"x");
        let mut b = a;
        assert!(mac_eq(&a, &b));
        b[31] ^= 1;
        assert!(!mac_eq(&a, &b));
        b[31] ^= 1;
        b[0] ^= 0x80;
        assert!(!mac_eq(&a, &b));
    }
}
