//! Threshold arithmetic for marker election (`µ`), delay sampling (`σ`)
//! and aggregate cutting (`δ`).
//!
//! VPM expresses every tunable rate as a threshold over a uniform 64-bit
//! hash value: an event fires when `value > threshold`. Because "fires
//! under threshold `t1`" implies "fires under any `t2 ≤ t1`", thresholds
//! are totally ordered, which yields the two central tunability
//! properties of the paper:
//!
//! * **§5.2** — a HOP with a lower sampling threshold samples a
//!   *superset* of the packets sampled by a HOP with a higher one;
//! * **§6.2** — a HOP with a lower partition threshold cuts a stream at
//!   a *superset* of the cutting points of a HOP with a higher one, so
//!   partitions from different HOPs always nest.

use serde::{Deserialize, Serialize};

/// A pass threshold over uniform `u64` values: `v` passes iff `v > t`.
///
/// `Threshold::from_rate(r)` constructs a threshold whose pass
/// probability over uniform inputs is `r`.
///
/// ```
/// use vpm_hash::Threshold;
///
/// let one_percent = Threshold::from_rate(0.01);
/// assert!((one_percent.rate() - 0.01).abs() < 1e-9);
///
/// // Total order ⇒ superset sampling (paper §5.2): everything that
/// // passes a rarer threshold passes a more frequent one.
/// let ten_percent = Threshold::from_rate(0.10);
/// assert!(ten_percent.is_superset_of(&one_percent));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Threshold(pub u64);

impl Threshold {
    /// A threshold that nothing passes (rate 0).
    pub const NEVER: Threshold = Threshold(u64::MAX);

    /// A threshold that everything except `v == 0` passes (rate ≈ 1).
    pub const ALWAYS: Threshold = Threshold(0);

    /// Build a threshold with pass probability `rate` over uniform
    /// `u64` inputs. `rate` is clamped into `[0, 1]`.
    pub fn from_rate(rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        if rate <= 0.0 {
            return Self::NEVER;
        }
        // P(v > t) = (2^64 - 1 - t) / 2^64  ≈ (2^64 - t) / 2^64
        // ⇒ t = (1 - rate) · 2^64, computed via u128 to avoid overflow.
        let t = ((1.0 - rate) * (u64::MAX as f64 + 1.0)) as u128;
        Threshold(t.min(u64::MAX as u128) as u64)
    }

    /// The pass probability of this threshold over uniform inputs.
    pub fn rate(&self) -> f64 {
        if self.0 == u64::MAX {
            return 0.0;
        }
        (u64::MAX - self.0) as f64 / (u64::MAX as f64 + 1.0)
    }

    /// Does `value` pass this threshold?
    #[inline(always)]
    pub fn passes(&self, value: u64) -> bool {
        value > self.0
    }

    /// `true` if every value passing `other` also passes `self`
    /// (i.e. `self` fires at least as often).
    pub fn is_superset_of(&self, other: &Threshold) -> bool {
        self.0 <= other.0
    }
}

impl std::fmt::Display for Threshold {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Threshold(rate≈{:.6})", self.rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rate_roundtrip() {
        for r in [0.0, 1e-6, 0.001, 0.01, 0.1, 0.5, 0.9, 1.0] {
            let t = Threshold::from_rate(r);
            let back = t.rate();
            assert!(
                (back - r).abs() < 1e-9 || (r == 1.0 && back > 0.999_999),
                "rate {r} -> threshold {t:?} -> {back}"
            );
        }
    }

    #[test]
    fn never_and_always() {
        assert!(!Threshold::NEVER.passes(u64::MAX));
        assert!(!Threshold::NEVER.passes(0));
        assert!(Threshold::ALWAYS.passes(1));
        assert!(!Threshold::ALWAYS.passes(0));
    }

    #[test]
    fn empirical_rate_close_to_requested() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for target in [0.001f64, 0.01, 0.1, 0.5] {
            let t = Threshold::from_rate(target);
            let n = 200_000;
            let mut hits = 0u32;
            for _ in 0..n {
                if t.passes(rng.gen::<u64>()) {
                    hits += 1;
                }
            }
            let got = hits as f64 / n as f64;
            let tol = (target * 0.25).max(0.0008);
            assert!((got - target).abs() < tol, "target {target} got {got}");
        }
    }

    #[test]
    fn superset_ordering() {
        let coarse = Threshold::from_rate(0.01);
        let fine = Threshold::from_rate(0.1);
        assert!(fine.is_superset_of(&coarse));
        assert!(!coarse.is_superset_of(&fine));
        // Everything passing the coarse threshold passes the fine one.
        for v in [u64::MAX, u64::MAX - 10, coarse.0 + 1] {
            if coarse.passes(v) {
                assert!(fine.passes(v));
            }
        }
    }

    proptest! {
        #[test]
        fn superset_property_holds_pointwise(
            r1 in 0.0f64..1.0,
            r2 in 0.0f64..1.0,
            v in any::<u64>(),
        ) {
            let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
            let t_lo = Threshold::from_rate(lo);   // fires less often
            let t_hi = Threshold::from_rate(hi);   // fires more often
            prop_assert!(t_hi.is_superset_of(&t_lo));
            if t_lo.passes(v) {
                prop_assert!(t_hi.passes(v));
            }
        }

        #[test]
        fn rate_monotone_in_threshold(a in any::<u64>(), b in any::<u64>()) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(Threshold(lo).rate() >= Threshold(hi).rate());
        }
    }
}
