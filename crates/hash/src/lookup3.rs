//! A faithful Rust port of Bob Jenkins' `lookup3.c` (public domain, May
//! 2006) — the hash function the VPM paper uses for packet digests.
//!
//! The port covers the byte-oriented entry points (`hashlittle`,
//! `hashlittle2`) and the word-oriented ones (`hashword`, `hashword2`).
//! The byte-oriented functions here always follow the "read one byte at
//! a time" code path of the original, which is alignment-independent
//! and produces identical results to the aligned fast paths of the C
//! code on little-endian machines (that equivalence is part of
//! lookup3.c's own self-test).
//!
//! Test vectors below are the ones printed by `driver5()` in
//! `lookup3.c`.

/// `rot()` from lookup3.c — left rotation of a 32-bit word.
#[inline(always)]
fn rot(x: u32, k: u32) -> u32 {
    x.rotate_left(k)
}

/// `mix()` from lookup3.c — mix three 32-bit values reversibly.
#[inline(always)]
fn mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *a = a.wrapping_sub(*c);
    *a ^= rot(*c, 4);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rot(*a, 6);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rot(*b, 8);
    *b = b.wrapping_add(*a);
    *a = a.wrapping_sub(*c);
    *a ^= rot(*c, 16);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rot(*a, 19);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rot(*b, 4);
    *b = b.wrapping_add(*a);
}

/// `final()` from lookup3.c — final mixing of three 32-bit values into `c`.
#[inline(always)]
fn final_mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 14));
    *a ^= *c;
    *a = a.wrapping_sub(rot(*c, 11));
    *b ^= *a;
    *b = b.wrapping_sub(rot(*a, 25));
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 16));
    *a ^= *c;
    *a = a.wrapping_sub(rot(*c, 4));
    *b ^= *a;
    *b = b.wrapping_sub(rot(*a, 14));
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 24));
}

#[inline(always)]
fn read_u32_le(k: &[u8]) -> u32 {
    u32::from_le_bytes([k[0], k[1], k[2], k[3]])
}

/// Hash a byte slice into two 32-bit values (`hashlittle2` in lookup3.c).
///
/// `pc` and `pb` seed the hash; the returned pair is `(c, b)` where `c`
/// is the primary hash (identical to [`hashlittle`] with seed `pc` when
/// `pb == 0`) and `b` is a secondary hash worth a few extra bits of
/// independence.
pub fn hashlittle2(key: &[u8], pc: u32, pb: u32) -> (u32, u32) {
    let mut len = key.len();
    let mut a: u32 = 0xdead_beef_u32.wrapping_add(len as u32).wrapping_add(pc);
    let mut b: u32 = a;
    let mut c: u32 = a.wrapping_add(pb);

    let mut k = key;
    while len > 12 {
        a = a.wrapping_add(read_u32_le(&k[0..4]));
        b = b.wrapping_add(read_u32_le(&k[4..8]));
        c = c.wrapping_add(read_u32_le(&k[8..12]));
        mix(&mut a, &mut b, &mut c);
        len -= 12;
        k = &k[12..];
    }

    // Last block: affect all 32 bits of (c). The cascade mirrors the
    // fall-through switch of the byte-at-a-time path in lookup3.c.
    if len == 0 {
        return (c, b); // zero-length strings require no mixing
    }
    if len >= 12 {
        c = c.wrapping_add((k[11] as u32) << 24);
    }
    if len >= 11 {
        c = c.wrapping_add((k[10] as u32) << 16);
    }
    if len >= 10 {
        c = c.wrapping_add((k[9] as u32) << 8);
    }
    if len >= 9 {
        c = c.wrapping_add(k[8] as u32);
    }
    if len >= 8 {
        b = b.wrapping_add((k[7] as u32) << 24);
    }
    if len >= 7 {
        b = b.wrapping_add((k[6] as u32) << 16);
    }
    if len >= 6 {
        b = b.wrapping_add((k[5] as u32) << 8);
    }
    if len >= 5 {
        b = b.wrapping_add(k[4] as u32);
    }
    if len >= 4 {
        a = a.wrapping_add((k[3] as u32) << 24);
    }
    if len >= 3 {
        a = a.wrapping_add((k[2] as u32) << 16);
    }
    if len >= 2 {
        a = a.wrapping_add((k[1] as u32) << 8);
    }
    if len >= 1 {
        a = a.wrapping_add(k[0] as u32);
    }
    final_mix(&mut a, &mut b, &mut c);
    (c, b)
}

/// Hash a byte slice into a 32-bit value (`hashlittle` in lookup3.c).
pub fn hashlittle(key: &[u8], initval: u32) -> u32 {
    hashlittle2(key, initval, 0).0
}

/// Hash an array of 32-bit words into a 32-bit value (`hashword`).
pub fn hashword(key: &[u32], initval: u32) -> u32 {
    hashword2(key, initval, 0).0
}

/// Hash an array of 32-bit words into two 32-bit values (`hashword2`).
pub fn hashword2(key: &[u32], pc: u32, pb: u32) -> (u32, u32) {
    let mut len = key.len();
    let mut a: u32 = 0xdead_beef_u32
        .wrapping_add((len as u32) << 2)
        .wrapping_add(pc);
    let mut b: u32 = a;
    let mut c: u32 = a.wrapping_add(pb);

    let mut k = key;
    while len > 3 {
        a = a.wrapping_add(k[0]);
        b = b.wrapping_add(k[1]);
        c = c.wrapping_add(k[2]);
        mix(&mut a, &mut b, &mut c);
        len -= 3;
        k = &k[3..];
    }
    match len {
        3 => {
            c = c.wrapping_add(k[2]);
            b = b.wrapping_add(k[1]);
            a = a.wrapping_add(k[0]);
            final_mix(&mut a, &mut b, &mut c);
        }
        2 => {
            b = b.wrapping_add(k[1]);
            a = a.wrapping_add(k[0]);
            final_mix(&mut a, &mut b, &mut c);
        }
        1 => {
            a = a.wrapping_add(k[0]);
            final_mix(&mut a, &mut b, &mut c);
        }
        _ => {}
    }
    (c, b)
}

/// Convenience: 64-bit hash of a byte slice built from the two lanes of
/// [`hashlittle2`] (`c` in the high half, `b` in the low half).
pub fn hash64(key: &[u8], seed: u64) -> u64 {
    let (c, b) = hashlittle2(key, (seed >> 32) as u32, seed as u32);
    ((c as u64) << 32) | (b as u64)
}

/// Convenience: 64-bit hash of a word slice built from [`hashword2`].
pub fn hash64_words(key: &[u32], seed: u64) -> u64 {
    let (c, b) = hashword2(key, (seed >> 32) as u32, seed as u32);
    ((c as u64) << 32) | (b as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Test vectors from driver5() of lookup3.c.
    #[test]
    fn driver5_empty_zero_seeds() {
        let (c, b) = hashlittle2(b"", 0, 0);
        assert_eq!(c, 0xdeadbeef);
        assert_eq!(b, 0xdeadbeef);
    }

    #[test]
    fn driver5_empty_pb_deadbeef() {
        let (c, b) = hashlittle2(b"", 0, 0xdeadbeef);
        assert_eq!(c, 0xbd5b7dde);
        assert_eq!(b, 0xdeadbeef);
    }

    #[test]
    fn driver5_empty_both_deadbeef() {
        let (c, b) = hashlittle2(b"", 0xdeadbeef, 0xdeadbeef);
        assert_eq!(c, 0x9c093ccd);
        assert_eq!(b, 0xbd5b7dde);
    }

    #[test]
    fn driver5_four_score_pair() {
        let (c, b) = hashlittle2(b"Four score and seven years ago", 0, 0);
        assert_eq!(c, 0x17770551);
        assert_eq!(b, 0xce7226e6);
    }

    #[test]
    fn driver5_four_score_seed0() {
        assert_eq!(hashlittle(b"Four score and seven years ago", 0), 0x17770551);
    }

    #[test]
    fn driver5_four_score_seed1() {
        assert_eq!(hashlittle(b"Four score and seven years ago", 1), 0xcd628161);
    }

    #[test]
    fn hashword_matches_hashlittle_on_word_aligned_input() {
        // lookup3.c guarantees hashword(k, n, iv) == hashlittle(k, 4n, iv)
        // only for little-endian byte orders; verify for a few inputs.
        let words = [0x0403_0201_u32, 0x0807_0605, 0x0c0b_0a09, 0x100f_0e0d];
        let bytes: Vec<u8> = (1..=16u8).collect();
        for n in 0..=4usize {
            assert_eq!(
                hashword(&words[..n], 0x1234_5678),
                hashlittle(&bytes[..4 * n], 0x1234_5678),
                "mismatch at {n} words"
            );
        }
    }

    #[test]
    fn incremental_lengths_differ() {
        // Hashes of every prefix of a buffer should all be distinct — a
        // cheap sanity check lifted from lookup3.c's driver2 spirit.
        let buf: Vec<u8> = (0..=70u8).collect();
        let mut seen = std::collections::HashSet::new();
        for n in 0..buf.len() {
            assert!(
                seen.insert(hashlittle(&buf[..n], 0)),
                "collision at length {n}"
            );
        }
    }

    #[test]
    fn seed_changes_output() {
        let key = b"vpm";
        assert_ne!(hashlittle(key, 0), hashlittle(key, 1));
        assert_ne!(hash64(key, 0), hash64(key, 1));
    }

    #[test]
    fn hash64_words_matches_manual_composition() {
        let words = [1u32, 2, 3, 4, 5];
        let (c, b) = hashword2(&words, 7, 9);
        assert_eq!(
            hash64_words(&words, ((7u64) << 32) | 9),
            ((c as u64) << 32) | b as u64
        );
    }

    #[test]
    fn avalanche_rough() {
        // Flipping one input bit should flip ~16 of 32 output bits on
        // average; accept a generous band since this is a smoke test.
        let base: Vec<u8> = (0..32u8).collect();
        let h0 = hashlittle(&base, 0);
        let mut total = 0u32;
        let mut trials = 0u32;
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut m = base.clone();
                m[byte] ^= 1 << bit;
                total += (hashlittle(&m, 0) ^ h0).count_ones();
                trials += 1;
            }
        }
        let avg = total as f64 / trials as f64;
        assert!((10.0..22.0).contains(&avg), "poor avalanche: {avg}");
    }
}
