//! Hashing substrate for VPM (Verifiable network-Performance Measurements).
//!
//! The VPM paper computes per-packet digests with the "Bob" hash — Bob
//! Jenkins' `lookup3` — because it was shown to behave well on Internet
//! traffic (Molina et al., ITC 2005, cited as \[19\] in the paper). This
//! crate provides:
//!
//! * [`lookup3`] — a from-scratch, test-vector-verified port of
//!   `lookup3.c` (`hashlittle`, `hashlittle2`, `hashword`, `hashword2`);
//! * [`digest`] — 64-bit packet digests built from two independent
//!   32-bit lookup3 lanes;
//! * [`sample`] — the keyed `SampleFcn(Digest(q), Digest(p))` of the
//!   paper's Algorithm 1, which mixes the digest of an already-observed
//!   packet `q` with the digest of a *future* marker packet `p`;
//! * [`threshold`] — the threshold arithmetic used for the marker
//!   threshold `µ`, the sampling threshold `σ` and the partition
//!   threshold `δ`. Thresholds are totally ordered, which is what gives
//!   VPM its superset-sampling and nested-partition properties (paper
//!   §5.2, §6.2);
//! * [`mod@sha256`] — in-tree SHA-256 / HMAC-SHA-256 (NIST FIPS 180-4 and
//!   RFC 4231 test-vector verified), the primitive behind real receipt
//!   binding on the wire;
//! * [`hopkey`] — per-HOP 32-byte secret keys ([`HopKey`]) and rotation
//!   generations ([`KeyEpoch`]) for the transport's key registry.
//!
//! Everything here is deterministic and allocation-free: the same bytes
//! always produce the same digest on every HOP, which is the foundation
//! of receipt consistency checking.
//!
//! `unsafe` is denied crate-wide; the single exception is the SSE2
//! dispatch call in [`lanes`], which carries its own module-scoped
//! allow and a `SAFETY` argument (the feature gate is compile-time).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod hopkey;
pub mod lanes;
pub mod lookup3;
pub mod sample;
pub mod sha256;
pub mod threshold;

pub use digest::{
    digest_batch, digest_batch_scalar, digest_bytes, digest_words, Digest, DigestSeed,
    DEFAULT_DIGEST_SEED,
};
pub use hopkey::{HopKey, KeyEpoch};
pub use lanes::{hash64_words_x4, DIGEST_LANES};
pub use sample::{sample_fcn, sample_fcn_keyed, SampleKey};
pub use sha256::{hmac_sha256, mac_eq, sha256, Sha256, SHA256_BLOCK_BYTES, SHA256_DIGEST_BYTES};
pub use threshold::Threshold;
