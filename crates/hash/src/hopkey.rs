//! Per-HOP secret keys and key epochs for receipt binding.
//!
//! A [`HopKey`] is 32 bytes of secret material. It authenticates a
//! receipt at two layers:
//!
//! * the full 32 bytes key the HMAC-SHA-256 trailer over the encoded
//!   wire frame ([`HopKey::mac`]) — the real binding;
//! * the first 8 bytes, read little-endian, double as the legacy
//!   `lookup3` tag key ([`HopKey::tag_key`]) that signs the
//!   in-batch `auth_tag` field — kept so every historical tag value
//!   (and the pinned golden frames) survives the upgrade unchanged.
//!
//! [`KeyEpoch`] names which rotation generation of a HOP's key signed
//! a given frame. The transport stores every epoch it has seen, so
//! receipts published before a rotation keep verifying; a frame
//! claiming an epoch the transport never registered is rejected.

use crate::sha256::{hmac_sha256, sha256, SHA256_DIGEST_BYTES};

/// A HOP's 32-byte secret MAC key.
///
/// Deliberately opaque: `Debug` redacts the material so keys cannot
/// leak through logs or assertion messages.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct HopKey {
    material: [u8; SHA256_DIGEST_BYTES],
}

impl core::fmt::Debug for HopKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "HopKey(tag_key={:#x}, ..)", self.tag_key())
    }
}

impl HopKey {
    /// Wrap explicit 32-byte key material.
    pub fn from_bytes(material: [u8; SHA256_DIGEST_BYTES]) -> Self {
        HopKey { material }
    }

    /// Derive a key from a 64-bit seed, for the simulator and tests.
    ///
    /// The seed becomes the first 8 bytes verbatim — so
    /// `HopKey::from_seed(s).tag_key() == s`, and every pre-existing
    /// `compute_tag(s)` call site keeps producing the same in-batch
    /// tag — and the remaining 24 bytes are SHA-256 expansion of the
    /// seed under a domain-separation label.
    pub fn from_seed(seed: u64) -> Self {
        let mut input = [0u8; 21];
        input[..13].copy_from_slice(b"VPM-HOPKEY-V1");
        input[13..].copy_from_slice(&seed.to_le_bytes());
        let expanded = sha256(&input);
        let mut material = [0u8; SHA256_DIGEST_BYTES];
        material[..8].copy_from_slice(&seed.to_le_bytes());
        material[8..].copy_from_slice(&expanded[..24]);
        HopKey { material }
    }

    /// The raw key material (e.g. to persist a registration).
    pub fn as_bytes(&self) -> &[u8; SHA256_DIGEST_BYTES] {
        &self.material
    }

    /// The legacy 64-bit `lookup3` tag key: the first 8 key bytes,
    /// little-endian. Signs `ReceiptBatch::auth_tag`.
    pub fn tag_key(&self) -> u64 {
        u64::from_le_bytes(self.material[..8].try_into().expect("8-byte prefix"))
    }

    /// HMAC-SHA-256 over `msg` under this key.
    pub fn mac(&self, msg: &[u8]) -> [u8; SHA256_DIGEST_BYTES] {
        hmac_sha256(&self.material, msg)
    }
}

/// Which rotation generation of a HOP's key signed a frame.
///
/// Epoch 0 is the first registration; each explicit rotation on the
/// transport bumps it by one. Ordered so "newest epoch" is
/// `max`-comparable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct KeyEpoch(pub u32);

impl core::fmt::Display for KeyEpoch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "epoch {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_derivation_preserves_the_legacy_tag_key() {
        for seed in [0u64, 1, 0xabc, 0x5650_4d00 ^ 4, u64::MAX] {
            assert_eq!(HopKey::from_seed(seed).tag_key(), seed);
        }
    }

    #[test]
    fn seed_derivation_is_deterministic_and_seed_sensitive() {
        let a = HopKey::from_seed(7);
        assert_eq!(a, HopKey::from_seed(7));
        let b = HopKey::from_seed(8);
        assert_ne!(a.as_bytes(), b.as_bytes());
        // The expanded tail differs even between adjacent seeds.
        assert_ne!(a.as_bytes()[8..], b.as_bytes()[8..]);
    }

    #[test]
    fn mac_depends_on_full_material_not_just_the_tag_prefix() {
        // Two keys sharing the first 8 bytes (same legacy tag key)
        // must still produce different MACs.
        let mut m1 = [0u8; 32];
        let mut m2 = [0u8; 32];
        m1[..8].copy_from_slice(&0xabcu64.to_le_bytes());
        m2[..8].copy_from_slice(&0xabcu64.to_le_bytes());
        m2[31] = 1;
        let k1 = HopKey::from_bytes(m1);
        let k2 = HopKey::from_bytes(m2);
        assert_eq!(k1.tag_key(), k2.tag_key());
        assert_ne!(k1.mac(b"frame"), k2.mac(b"frame"));
        // And the MAC is message-sensitive.
        assert_ne!(k1.mac(b"frame"), k1.mac(b"fram3"));
    }

    #[test]
    fn debug_redacts_key_material() {
        let k = HopKey::from_seed(0xdead);
        let s = format!("{k:?}");
        assert!(s.contains("tag_key"));
        assert!(s.ends_with("..)"));
        // The expanded secret tail never appears in Debug output.
        let tail_hex: String = k.as_bytes()[8..]
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        assert!(!s.contains(&tail_hex[..8]));
    }
}
