//! Multi-lane lookup3: four packet digests per kernel invocation.
//!
//! [`hash64_words_x4`] computes [`crate::lookup3::hash64_words`] for
//! four equal-width word blocks at once. For the fixed-width blocks the
//! collector digests (`hashword2` over `W` words), lookup3's control
//! flow depends only on `W`, never on the data — every lane walks the
//! same `mix`/`final` schedule — which is exactly the shape that maps
//! onto 4×32-bit SIMD lanes.
//!
//! Two implementations sit behind one dispatch:
//!
//! * **SSE2** (`x86_64`, where the `sse2` target feature is statically
//!   enabled — it is baseline for the architecture): each of lookup3's
//!   `a`/`b`/`c` state words becomes a `__m128i` holding that word for
//!   all four lanes, and the `mix`/`final` schedules run once on vector
//!   registers. Rotates are `slli`/`srli`/`or` triples since SSE2 has
//!   no vector rotate.
//! * **Portable** (everything else, including NEON-class hosts until a
//!   checked `aarch64` kernel lands): the scalar `hashword2` per lane.
//!   Byte-identical by construction, so the dispatch is invisible to
//!   callers.
//!
//! Both paths are pinned byte-identical to the scalar reference by
//! proptests in [`crate::digest`] (lengths 0..=257, misaligned
//! sub-slices) and by the unit tests below.
//!
//! This is the one module in `vpm-hash` allowed to use `unsafe`, and
//! only for the single SSE2 dispatch call (see the `SAFETY` comment);
//! the rest of the crate remains `deny(unsafe_code)`.
#![allow(unsafe_code)]

use crate::lookup3::hash64_words;

/// Number of blocks one multi-lane kernel invocation digests.
pub const DIGEST_LANES: usize = 4;

/// Hash four equal-width word blocks with lookup3 (`hashword2` seeded
/// from the high/low halves of `seed`, like
/// [`hash64_words`]), returning the four
/// 64-bit hashes in block order.
///
/// Guaranteed byte-identical to calling
/// [`hash64_words`] on each block, on
/// every architecture.
#[inline]
pub fn hash64_words_x4<const W: usize>(
    b0: &[u32; W],
    b1: &[u32; W],
    b2: &[u32; W],
    b3: &[u32; W],
    seed: u64,
) -> [u64; 4] {
    #[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
    {
        // SAFETY: the only precondition of calling a
        // `#[target_feature(enable = "sse2")]` function is that the
        // running CPU supports SSE2. The surrounding `cfg` makes that
        // a compile-time fact: this arm only exists in builds where
        // the `sse2` target feature is statically enabled (it is part
        // of the x86_64 baseline), so every CPU this code can run on
        // has it.
        unsafe { sse2::hash64_words_x4(b0, b1, b2, b3, seed) }
    }
    #[cfg(not(all(target_arch = "x86_64", target_feature = "sse2")))]
    {
        hash64_words_x4_portable(b0, b1, b2, b3, seed)
    }
}

/// The portable reference: scalar `hashword2` per lane. Public (not
/// `cfg`-gated) so tests and benches can pin the SIMD path against it
/// on architectures where both exist.
#[inline]
pub fn hash64_words_x4_portable<const W: usize>(
    b0: &[u32; W],
    b1: &[u32; W],
    b2: &[u32; W],
    b3: &[u32; W],
    seed: u64,
) -> [u64; 4] {
    [
        hash64_words(b0, seed),
        hash64_words(b1, seed),
        hash64_words(b2, seed),
        hash64_words(b3, seed),
    ]
}

#[cfg(all(target_arch = "x86_64", target_feature = "sse2"))]
mod sse2 {
    //! The 4-lane SSE2 kernel. Lane `j` of every vector holds block
    //! `j`'s `a`/`b`/`c` state; the schedules below are line-for-line
    //! `lookup3::mix` / `lookup3::final_mix` lifted onto `__m128i`.
    //! All intrinsics here are value-based (no raw pointers), so inside
    //! these `#[target_feature(enable = "sse2")]` functions every call
    //! is safe — the single `unsafe` lives at the dispatch site in the
    //! parent module.

    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_cvtsi128_si32, _mm_or_si128, _mm_set1_epi32, _mm_set_epi32,
        _mm_shuffle_epi32, _mm_slli_epi32, _mm_srli_epi32, _mm_sub_epi32, _mm_xor_si128,
    };

    /// Vector left-rotate by a const amount (SSE2 has no rotate
    /// instruction, so: `(x << K) | (x >> (32 - K))`).
    macro_rules! rotv {
        ($x:expr, $k:literal) => {{
            let x = $x;
            _mm_or_si128(_mm_slli_epi32::<$k>(x), _mm_srli_epi32::<{ 32 - $k }>(x))
        }};
    }

    /// Gather word `i` of each block into one vector (lane `j` =
    /// block `j`). `_mm_set_epi32` takes arguments high-lane-first.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn gather<const W: usize>(
        b0: &[u32; W],
        b1: &[u32; W],
        b2: &[u32; W],
        b3: &[u32; W],
        i: usize,
    ) -> __m128i {
        _mm_set_epi32(b3[i] as i32, b2[i] as i32, b1[i] as i32, b0[i] as i32)
    }

    /// Unpack a vector back into its four lanes.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn lanes(v: __m128i) -> [u32; 4] {
        [
            _mm_cvtsi128_si32(v) as u32,
            _mm_cvtsi128_si32(_mm_shuffle_epi32::<0b01_01_01_01>(v)) as u32,
            _mm_cvtsi128_si32(_mm_shuffle_epi32::<0b10_10_10_10>(v)) as u32,
            _mm_cvtsi128_si32(_mm_shuffle_epi32::<0b11_11_11_11>(v)) as u32,
        ]
    }

    /// `lookup3::mix` on four lanes at once.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn mix_x4(a: &mut __m128i, b: &mut __m128i, c: &mut __m128i) {
        *a = _mm_sub_epi32(*a, *c);
        *a = _mm_xor_si128(*a, rotv!(*c, 4));
        *c = _mm_add_epi32(*c, *b);
        *b = _mm_sub_epi32(*b, *a);
        *b = _mm_xor_si128(*b, rotv!(*a, 6));
        *a = _mm_add_epi32(*a, *c);
        *c = _mm_sub_epi32(*c, *b);
        *c = _mm_xor_si128(*c, rotv!(*b, 8));
        *b = _mm_add_epi32(*b, *a);
        *a = _mm_sub_epi32(*a, *c);
        *a = _mm_xor_si128(*a, rotv!(*c, 16));
        *c = _mm_add_epi32(*c, *b);
        *b = _mm_sub_epi32(*b, *a);
        *b = _mm_xor_si128(*b, rotv!(*a, 19));
        *a = _mm_add_epi32(*a, *c);
        *c = _mm_sub_epi32(*c, *b);
        *c = _mm_xor_si128(*c, rotv!(*b, 4));
        *b = _mm_add_epi32(*b, *a);
    }

    /// `lookup3::final_mix` on four lanes at once.
    #[inline]
    #[target_feature(enable = "sse2")]
    fn final_mix_x4(a: &mut __m128i, b: &mut __m128i, c: &mut __m128i) {
        *c = _mm_xor_si128(*c, *b);
        *c = _mm_sub_epi32(*c, rotv!(*b, 14));
        *a = _mm_xor_si128(*a, *c);
        *a = _mm_sub_epi32(*a, rotv!(*c, 11));
        *b = _mm_xor_si128(*b, *a);
        *b = _mm_sub_epi32(*b, rotv!(*a, 25));
        *c = _mm_xor_si128(*c, *b);
        *c = _mm_sub_epi32(*c, rotv!(*b, 16));
        *a = _mm_xor_si128(*a, *c);
        *a = _mm_sub_epi32(*a, rotv!(*c, 4));
        *b = _mm_xor_si128(*b, *a);
        *b = _mm_sub_epi32(*b, rotv!(*a, 14));
        *c = _mm_xor_si128(*c, *b);
        *c = _mm_sub_epi32(*c, rotv!(*b, 24));
    }

    /// Four `hashword2` evaluations in lockstep; mirrors
    /// `lookup3::hashword2` statement for statement.
    #[target_feature(enable = "sse2")]
    pub(super) fn hash64_words_x4<const W: usize>(
        b0: &[u32; W],
        b1: &[u32; W],
        b2: &[u32; W],
        b3: &[u32; W],
        seed: u64,
    ) -> [u64; 4] {
        let pc = (seed >> 32) as u32;
        let pb = seed as u32;
        let init = 0xdead_beef_u32
            .wrapping_add((W as u32) << 2)
            .wrapping_add(pc);
        let mut a = _mm_set1_epi32(init as i32);
        let mut b = a;
        let mut c = _mm_set1_epi32(init.wrapping_add(pb) as i32);

        let mut len = W;
        let mut k = 0usize;
        while len > 3 {
            a = _mm_add_epi32(a, gather(b0, b1, b2, b3, k));
            b = _mm_add_epi32(b, gather(b0, b1, b2, b3, k + 1));
            c = _mm_add_epi32(c, gather(b0, b1, b2, b3, k + 2));
            mix_x4(&mut a, &mut b, &mut c);
            len -= 3;
            k += 3;
        }
        match len {
            3 => {
                c = _mm_add_epi32(c, gather(b0, b1, b2, b3, k + 2));
                b = _mm_add_epi32(b, gather(b0, b1, b2, b3, k + 1));
                a = _mm_add_epi32(a, gather(b0, b1, b2, b3, k));
                final_mix_x4(&mut a, &mut b, &mut c);
            }
            2 => {
                b = _mm_add_epi32(b, gather(b0, b1, b2, b3, k + 1));
                a = _mm_add_epi32(a, gather(b0, b1, b2, b3, k));
                final_mix_x4(&mut a, &mut b, &mut c);
            }
            1 => {
                a = _mm_add_epi32(a, gather(b0, b1, b2, b3, k));
                final_mix_x4(&mut a, &mut b, &mut c);
            }
            _ => {}
        }

        let cs = lanes(c);
        let bs = lanes(b);
        [
            ((cs[0] as u64) << 32) | bs[0] as u64,
            ((cs[1] as u64) << 32) | bs[1] as u64,
            ((cs[2] as u64) << 32) | bs[2] as u64,
            ((cs[3] as u64) << 32) | bs[3] as u64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks<const W: usize>(n: u32) -> Vec<[u32; W]> {
        (0..n)
            .map(|i| {
                let mut b = [0u32; W];
                for (j, w) in b.iter_mut().enumerate() {
                    *w = i
                        .wrapping_mul(0x9e37_79b9)
                        .wrapping_add(j as u32)
                        .rotate_left(j as u32);
                }
                b
            })
            .collect()
    }

    fn check_width<const W: usize>() {
        let bs = blocks::<W>(16);
        for seed in [0u64, 1, u64::MAX, 0x5650_4d32_3031_3000] {
            for quad in bs.chunks_exact(4) {
                let got = hash64_words_x4(&quad[0], &quad[1], &quad[2], &quad[3], seed);
                let portable =
                    hash64_words_x4_portable(&quad[0], &quad[1], &quad[2], &quad[3], seed);
                assert_eq!(got, portable, "dispatch vs portable, W={W} seed={seed}");
                for (j, block) in quad.iter().enumerate() {
                    assert_eq!(
                        got[j],
                        hash64_words(block, seed),
                        "lane {j} vs scalar, W={W} seed={seed}"
                    );
                }
            }
        }
    }

    /// The kernel must match scalar `hash64_words` lane for lane at
    /// every width class lookup3 distinguishes: the digest width (6 =
    /// one mix block + 3-word tail), each tail arm (1, 2, 3), a
    /// no-mix-loop width (3), multi-block widths (7, 12), and the
    /// degenerate empty block.
    #[test]
    fn all_width_classes_match_scalar() {
        check_width::<0>();
        check_width::<1>();
        check_width::<2>();
        check_width::<3>();
        check_width::<4>();
        check_width::<6>();
        check_width::<7>();
        check_width::<12>();
    }

    #[test]
    fn lanes_are_independent() {
        // Changing one lane's block must change only that lane's hash.
        let bs = blocks::<6>(4);
        let base = hash64_words_x4(&bs[0], &bs[1], &bs[2], &bs[3], 7);
        let mut mutated = bs[2];
        mutated[0] ^= 1;
        let got = hash64_words_x4(&bs[0], &bs[1], &mutated, &bs[3], 7);
        assert_eq!(got[0], base[0]);
        assert_eq!(got[1], base[1]);
        assert_ne!(got[2], base[2]);
        assert_eq!(got[3], base[3]);
    }
}
