//! The audit checkpoint: a verifier's resumable position.
//!
//! Continuous operation means a verifier must be able to stop —
//! process restart, host migration, operator pause — and later resume
//! producing **byte-identical verdicts** to an uninterrupted run. The
//! state that makes that possible is deliberately small: the global
//! subscription cursor to resume from, the retention horizon the
//! cursor was ahead of when the snapshot was taken, the number of
//! workload intervals already folded, and one incremental
//! [`PathAuditState`] record per audited path. Everything else (the
//! receipts themselves) lives on the bus, bounded by
//! [`crate::transport::ReceiptTransport::compact_before`].
//!
//! Checkpoints are taken at quiescent interval boundaries — every
//! delivered frame folded, no partial per-interval accumulator
//! outstanding — which is why the format carries no partial sums. The
//! binary layout is versioned and pinned by the golden fixture
//! `tests/golden/audit_checkpoint_v1.hex`, exactly like the v1 receipt
//! frame; decoding is total (typed [`WireError`], never a panic) and
//! refuses trailing bytes, so a torn or concatenated snapshot cannot
//! silently restore a wrong cursor.
//!
//! ```text
//! checkpoint := magic[4]="VPMC" version[1]=1
//!               next_seq[8] horizon[8] intervals[8] path_count[4]
//!               path_state[path_count × 28]
//! path_state := path[4] audited_intervals[8] flagged_intervals[8]
//!               last_interval[8]
//! ```
//!
//! All integers little-endian, path states sorted by `path` (the
//! encoder enforces the order, the decoder rejects violations — two
//! encoders can therefore never disagree on the bytes of the same
//! state).

use crate::codec::{Reader, WireError, Writer};

/// Checkpoint magic: "VPM Checkpoint".
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"VPMC";

/// Checkpoint layout version this module encodes and decodes.
pub const CHECKPOINT_VERSION: u8 = 1;

/// Fixed prefix: magic + version + next_seq + horizon + intervals +
/// path_count.
pub const CHECKPOINT_HEADER_BYTES: usize = 4 + 1 + 8 + 8 + 8 + 4;

/// One per-path record: path + audited + flagged + last_interval.
pub const PATH_STATE_BYTES: usize = 4 + 8 + 8 + 8;

/// One path's incremental verdict state: everything the auditor has
/// concluded about the path so far, foldable one interval at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathAuditState {
    /// The workload's stable path index.
    pub path: u32,
    /// Intervals fully audited (all HOP reports folded).
    pub audited_intervals: u64,
    /// Audited intervals whose HOP reports were mutually inconsistent.
    pub flagged_intervals: u64,
    /// The most recent interval folded into this state.
    pub last_interval: u64,
}

/// A verifier snapshot: resume cursor plus per-path incremental state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AuditCheckpoint {
    /// Global subscription cursor to resume from (first undelivered
    /// sequence number).
    pub next_seq: u64,
    /// The bus retention horizon at snapshot time. On restore the
    /// transport re-checks the *live* horizon — if GC advanced past
    /// `next_seq` while the verifier was down, resubscription fails
    /// with a typed `LaggedBehind`, never a silently gapped stream.
    pub horizon: u64,
    /// Workload intervals fully folded before the snapshot.
    pub intervals: u64,
    /// Per-path incremental verdict state, sorted by `path`.
    pub paths: Vec<PathAuditState>,
}

impl AuditCheckpoint {
    /// Encode to the versioned v1 byte layout. Fails with
    /// [`WireError::TooManyItems`] past `u32::MAX` paths and refuses
    /// unsorted or duplicated path records — the byte encoding of a
    /// given state must be unique for restart byte-identity to be
    /// checkable at all.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        if self.paths.len() > u32::MAX as usize {
            return Err(WireError::TooManyItems(self.paths.len()));
        }
        // vpm-lint: allow(R1, windows(2) panics only for size 0, and 2 is a literal)
        if self.paths.windows(2).any(|w| w[0].path >= w[1].path) {
            return Err(WireError::TooManyItems(self.paths.len()));
        }
        let mut w = Writer::default();
        w.bytes(CHECKPOINT_MAGIC);
        w.u8(CHECKPOINT_VERSION);
        w.u64(self.next_seq);
        w.u64(self.horizon);
        w.u64(self.intervals);
        w.u32(self.paths.len() as u32);
        for p in &self.paths {
            w.u32(p.path);
            w.u64(p.audited_intervals);
            w.u64(p.flagged_intervals);
            w.u64(p.last_interval);
        }
        Ok(w.into_vec())
    }

    /// Decode a v1 checkpoint. Total on arbitrary bytes: bad magic,
    /// unknown version, truncation, unsorted path records, and
    /// trailing bytes all map to a typed [`WireError`].
    pub fn decode(bytes: &[u8]) -> Result<AuditCheckpoint, WireError> {
        let mut r = Reader::new(bytes);
        let magic: [u8; 4] = r.array()?;
        if &magic != CHECKPOINT_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = r.u8()?;
        if version != CHECKPOINT_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let next_seq = r.u64()?;
        let horizon = r.u64()?;
        let intervals = r.u64()?;
        let count = r.u32()? as usize;
        r.can_hold(count, PATH_STATE_BYTES)?;
        let mut paths = Vec::with_capacity(count);
        let mut prev: Option<u32> = None;
        for _ in 0..count {
            let path = r.u32()?;
            if prev.is_some_and(|p| p >= path) {
                // Unsorted or duplicate records would make two byte
                // encodings of one logical state — refuse.
                return Err(WireError::BadPathRef {
                    reference: path,
                    paths: 0,
                });
            }
            prev = Some(path);
            paths.push(PathAuditState {
                path,
                audited_intervals: r.u64()?,
                flagged_intervals: r.u64()?,
                last_interval: r.u64()?,
            });
        }
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(AuditCheckpoint {
            next_seq,
            horizon,
            intervals,
            paths,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> AuditCheckpoint {
        AuditCheckpoint {
            next_seq: 0x0102_0304_0506_0708,
            horizon: 0x00ab_cdef,
            intervals: 2000,
            paths: vec![
                PathAuditState {
                    path: 0,
                    audited_intervals: 1985,
                    flagged_intervals: 0,
                    last_interval: 1999,
                },
                PathAuditState {
                    path: 3,
                    audited_intervals: 1200,
                    flagged_intervals: 37,
                    last_interval: 1998,
                },
                PathAuditState {
                    path: 15,
                    audited_intervals: 64,
                    flagged_intervals: 64,
                    last_interval: 801,
                },
            ],
        }
    }

    #[test]
    fn round_trips_and_layout_constants_account_for_every_byte() {
        let cp = sample();
        let bytes = cp.encode().unwrap();
        assert_eq!(
            bytes.len(),
            CHECKPOINT_HEADER_BYTES + cp.paths.len() * PATH_STATE_BYTES
        );
        assert_eq!(AuditCheckpoint::decode(&bytes).unwrap(), cp);
        // The empty checkpoint (fresh verifier) round-trips too.
        let empty = AuditCheckpoint::default();
        let bytes = empty.encode().unwrap();
        assert_eq!(bytes.len(), CHECKPOINT_HEADER_BYTES);
        assert_eq!(AuditCheckpoint::decode(&bytes).unwrap(), empty);
    }

    /// The encoded form is pinned by the golden fixture: a layout
    /// change without a version bump fails here, exactly like the v1
    /// receipt frame's fixture.
    #[test]
    fn golden_fixture_matches_the_v1_layout() {
        let golden = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/golden/audit_checkpoint_v1.hex"
        ))
        .expect("golden checkpoint fixture");
        let hex: String = golden.split_whitespace().collect();
        let bytes: Vec<u8> = (0..hex.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).expect("golden fixture is hex"))
            .collect();
        assert_eq!(
            sample().encode().unwrap(),
            bytes,
            "encoder drifted from the pinned v1 checkpoint layout"
        );
        assert_eq!(
            AuditCheckpoint::decode(&bytes).unwrap(),
            sample(),
            "decoder drifted from the pinned v1 checkpoint layout"
        );
    }

    #[test]
    fn malformed_inputs_fail_typed() {
        let good = sample().encode().unwrap();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            AuditCheckpoint::decode(&bad),
            Err(WireError::BadMagic(_))
        ));
        // Unknown version.
        let mut bad = good.clone();
        bad[4] = 9;
        assert_eq!(
            AuditCheckpoint::decode(&bad),
            Err(WireError::UnsupportedVersion(9))
        );
        // Every truncation point is a typed refusal, never a panic.
        for cut in 0..good.len() {
            assert!(matches!(
                AuditCheckpoint::decode(&good[..cut]),
                Err(WireError::Truncated { .. })
            ));
        }
        // Trailing bytes are refused.
        let mut bad = good.clone();
        bad.push(0);
        assert_eq!(
            AuditCheckpoint::decode(&bad),
            Err(WireError::TrailingBytes(1))
        );
        // A duplicate path record is refused (one state, one encoding).
        let mut dup = sample();
        dup.paths[1].path = 0;
        assert!(dup.encode().is_err());
        // An over-claimed path count fails fast in the pre-flight, not
        // by over-allocating.
        let mut bad = good.clone();
        bad[29..33].fill(0xff); // the path_count field of the header
        assert!(matches!(
            AuditCheckpoint::decode(&bad),
            Err(WireError::Truncated { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Decode is total: arbitrary bytes never panic, and whatever
        /// decodes re-encodes to the exact same bytes (the layout has
        /// no redundant representations).
        #[test]
        fn decode_never_panics_and_reencodes_identically(
            bytes in proptest::collection::vec(any::<u8>(), 0..200)
        ) {
            if let Ok(cp) = AuditCheckpoint::decode(&bytes) {
                prop_assert_eq!(cp.encode().unwrap(), bytes);
            }
        }

        /// Encode/decode round-trips every well-formed checkpoint.
        #[test]
        fn round_trip_is_identity(
            next_seq in any::<u64>(),
            horizon in any::<u64>(),
            intervals in any::<u64>(),
            seed in any::<u64>(),
            n in 0usize..20,
        ) {
            let paths: Vec<PathAuditState> = (0..n as u32)
                .map(|i| PathAuditState {
                    path: i * 3,
                    audited_intervals: seed.rotate_left(i),
                    flagged_intervals: seed.rotate_right(i),
                    last_interval: seed ^ i as u64,
                })
                .collect();
            let cp = AuditCheckpoint { next_seq, horizon, intervals, paths };
            prop_assert_eq!(AuditCheckpoint::decode(&cp.encode().unwrap()).unwrap(), cp);
        }
    }
}
