//! The first out-of-process receipt transport: signed v1 frames over
//! length-prefixed TCP.
//!
//! The paper's dissemination plane (§7) crosses administrative
//! boundaries; everything before this module crossed, at most, a
//! thread boundary. Here the [`ReceiptTransport`] API becomes a
//! network protocol:
//!
//! * [`TcpServer`] owns a [`ShardedBus`] and serves it over TCP. Every
//!   enforcement point stays **server-side**: a frame published over
//!   the network goes through the same `admit` path as an in-process
//!   publish, so forged-MAC, unsigned, tampered, or unknown-epoch
//!   frames are refused with the same typed errors
//!   ([`TransportError::BadMac`] & friends), now serialized back to
//!   the offending client instead of trusted from it.
//! * [`TcpTransport`] is a client implementing [`ReceiptTransport`],
//!   so `run_path_with_transport`, the fleet runner, and anything else
//!   written against the trait works unchanged across a socket. It
//!   reconnects on connection loss and resumes its subscriptions from
//!   the last delivered global sequence number — no duplicates, no
//!   skips (pinned by the loopback tests). If the server GC'd past
//!   the resume point while the client was away, re-establishment
//!   surfaces the typed [`TransportError::LaggedBehind`] instead of
//!   resuming with silently missing frames.
//!
//! Retention is remote too: `compact_before` / `horizon` /
//! `summaries` round-trip to the server's bus, so an out-of-process
//! auditor can drive the GC cadence and read the per-HOP digests the
//! passes leave behind.
//!
//! # Session protocol
//!
//! On connect both sides send a 5-byte hello (`b"VPMN"` + version).
//! After that the stream is a sequence of messages, each a `u32`
//! little-endian byte length followed by that many bytes (capped at
//! [`MAX_MESSAGE_BYTES`]). Requests carry a 1-byte opcode + payload;
//! responses carry a 1-byte status (0 = ok, 1 = typed error) +
//! payload. All integers are little-endian; `PathId`s reuse the
//! codec's 24-byte encoding; keys travel as their 32 raw bytes
//! (loopback deployments — real key provisioning is a ROADMAP item).
//!
//! Subscriptions are server-side cursors on the bus. `Poll` responses
//! are bounded ([`MAX_ENTRIES_PER_RESPONSE`]): the server parks the
//! overflow in a per-subscription queue and sets a `more` flag, so one
//! enormous backlog cannot produce an unbounded message — that queue
//! is the session's backpressure. A client that disconnects (or whose
//! session drops) has its cursors unsubscribed by the server, so
//! abandoned connections do not leak bus state.
//!
//! # Panic policy
//!
//! Everything reachable from remote bytes is total: length prefixes,
//! opcodes, and payloads are bounds-checked through the codec's typed
//! reader, and malformed input produces an error response (or a
//! dropped connection), never a server panic.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use vpm_core::receipt::PathId;
use vpm_hash::{HopKey, KeyEpoch, SHA256_DIGEST_BYTES};
use vpm_packet::{DomainId, HopId};

use crate::codec::{decode_path, encode_path, Reader, WireError, WireFrame, Writer};
use crate::transport::{
    CompactionReport, IntervalSummary, Published, ReceiptTransport, ShardedBus, SubscriptionId,
    TransportError, WaitOutcome,
};

/// Hello preamble both sides send on connect: magic + protocol version.
pub const NET_MAGIC: &[u8; 4] = b"VPMN";
/// Session protocol version.
pub const NET_VERSION: u8 = 1;
/// Upper bound on one length-prefixed message. Larger prefixes are a
/// protocol violation: the peer is refused, not buffered.
pub const MAX_MESSAGE_BYTES: usize = 16 * 1024 * 1024;
/// Most entries one `Poll` response carries; the rest waits in the
/// session's bounded queue behind a `more` flag.
pub const MAX_ENTRIES_PER_RESPONSE: usize = 1024;

/// Longest single blocking wait the server performs on a client's
/// behalf; a client wanting longer re-issues the request.
const MAX_SERVER_WAIT: Duration = Duration::from_secs(30);
/// The server slices blocking waits into chunks of this length so a
/// shutdown request is honoured promptly.
const WAIT_SLICE: Duration = Duration::from_millis(250);
/// Socket read timeout on server connections — the cadence at which a
/// blocked read re-checks the shutdown flag.
const SERVER_READ_SLICE: Duration = Duration::from_millis(200);
/// Client-side cap on waiting for one response; a server silent for
/// this long is treated as a dead connection.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(60);

// Request opcodes.
const OP_REGISTER_KEY: u8 = 1;
const OP_ROTATE_KEY: u8 = 2;
const OP_KEY_EPOCH: u8 = 3;
const OP_PUBLISH: u8 = 4;
const OP_FETCH: u8 = 5;
const OP_FETCH_PATH: u8 = 6;
const OP_SUBSCRIBE: u8 = 7;
const OP_SUBSCRIBE_PATH: u8 = 8;
const OP_POLL: u8 = 9;
const OP_WAIT: u8 = 10;
const OP_UNSUBSCRIBE: u8 = 11;
const OP_LEN: u8 = 12;
const OP_COMPACT: u8 = 13;
const OP_HORIZON: u8 = 14;
const OP_SUMMARIES: u8 = 15;

// Typed-error wire codes (response status 1).
const ERR_BAD_TAG: u8 = 1;
const ERR_BAD_MAC: u8 = 2;
const ERR_UNSIGNED: u8 = 3;
const ERR_UNKNOWN_KEY_EPOCH: u8 = 4;
const ERR_KEY_ALREADY_REGISTERED: u8 = 5;
const ERR_NOT_ON_PATH: u8 = 6;
const ERR_UNKNOWN_HOP: u8 = 7;
const ERR_MALFORMED: u8 = 8;
const ERR_UNKNOWN_SUBSCRIPTION: u8 = 9;
const ERR_PROTOCOL: u8 = 10;
const ERR_LAGGED_BEHIND: u8 = 11;

fn proto_err(msg: impl Into<String>) -> TransportError {
    TransportError::Protocol(msg.into())
}

fn conn_err(e: &io::Error) -> TransportError {
    TransportError::Connection(e.to_string())
}

/// Serialize a typed transport error into a status-1 response body.
fn encode_error(w: &mut Writer, e: &TransportError) {
    match e {
        TransportError::BadTag { hop } => {
            w.u8(ERR_BAD_TAG);
            w.u16(hop.0);
        }
        TransportError::BadMac { hop } => {
            w.u8(ERR_BAD_MAC);
            w.u16(hop.0);
        }
        TransportError::Unsigned { hop } => {
            w.u8(ERR_UNSIGNED);
            w.u16(hop.0);
        }
        TransportError::UnknownKeyEpoch { hop, epoch } => {
            w.u8(ERR_UNKNOWN_KEY_EPOCH);
            w.u16(hop.0);
            w.u32(epoch.0);
        }
        TransportError::KeyAlreadyRegistered { hop } => {
            w.u8(ERR_KEY_ALREADY_REGISTERED);
            w.u16(hop.0);
        }
        TransportError::NotOnPath { requester } => {
            w.u8(ERR_NOT_ON_PATH);
            w.u16(requester.0);
        }
        TransportError::UnknownHop(hop) => {
            w.u8(ERR_UNKNOWN_HOP);
            w.u16(hop.0);
        }
        // `WireError` does not round-trip structurally; its rendering
        // does. The client surfaces it as a `Protocol` refusal.
        TransportError::Malformed(e) => {
            w.u8(ERR_MALFORMED);
            write_string(w, &e.to_string());
        }
        TransportError::UnknownSubscription(sub) => {
            w.u8(ERR_UNKNOWN_SUBSCRIPTION);
            w.u64(sub.0);
        }
        TransportError::Connection(msg) | TransportError::Protocol(msg) => {
            w.u8(ERR_PROTOCOL);
            write_string(w, msg);
        }
        TransportError::LaggedBehind { horizon } => {
            w.u8(ERR_LAGGED_BEHIND);
            w.u64(*horizon);
        }
    }
}

/// Decode a status-1 response body back into the typed error.
fn decode_error(r: &mut Reader<'_>) -> Result<TransportError, WireError> {
    Ok(match r.u8()? {
        ERR_BAD_TAG => TransportError::BadTag {
            hop: HopId(r.u16()?),
        },
        ERR_BAD_MAC => TransportError::BadMac {
            hop: HopId(r.u16()?),
        },
        ERR_UNSIGNED => TransportError::Unsigned {
            hop: HopId(r.u16()?),
        },
        ERR_UNKNOWN_KEY_EPOCH => TransportError::UnknownKeyEpoch {
            hop: HopId(r.u16()?),
            epoch: KeyEpoch(r.u32()?),
        },
        ERR_KEY_ALREADY_REGISTERED => TransportError::KeyAlreadyRegistered {
            hop: HopId(r.u16()?),
        },
        ERR_NOT_ON_PATH => TransportError::NotOnPath {
            requester: DomainId(r.u16()?),
        },
        ERR_UNKNOWN_HOP => TransportError::UnknownHop(HopId(r.u16()?)),
        ERR_MALFORMED => {
            TransportError::Protocol(format!("server refused frame: {}", read_string(r)?))
        }
        ERR_UNKNOWN_SUBSCRIPTION => TransportError::UnknownSubscription(SubscriptionId(r.u64()?)),
        ERR_PROTOCOL => TransportError::Protocol(read_string(r)?),
        ERR_LAGGED_BEHIND => TransportError::LaggedBehind { horizon: r.u64()? },
        other => TransportError::Protocol(format!("unknown error code {other}")),
    })
}

fn write_string(w: &mut Writer, s: &str) {
    let bytes = s.as_bytes();
    let n = bytes.len().min(u16::MAX as usize);
    w.u16(n as u16);
    w.bytes(&bytes[..n]); // vpm-lint: allow(R1, n <= bytes.len() from the read above)
}

fn read_string(r: &mut Reader<'_>) -> Result<String, WireError> {
    let n = r.u16()? as usize;
    Ok(String::from_utf8_lossy(r.take(n)?).into_owned())
}

fn write_domains(w: &mut Writer, domains: &[DomainId]) {
    w.u16(domains.len().min(u16::MAX as usize) as u16);
    for d in domains.iter().take(u16::MAX as usize) {
        w.u16(d.0);
    }
}

fn read_domains(r: &mut Reader<'_>) -> Result<Vec<DomainId>, WireError> {
    let n = r.u16()? as usize;
    r.can_hold(n, 2)?;
    (0..n).map(|_| Ok(DomainId(r.u16()?))).collect()
}

/// Serialize one published entry. The frame travels as its exact
/// published bytes, so the client re-decodes the same batch the server
/// admitted and fetch results stay byte-identical across transports.
fn write_entry(w: &mut Writer, p: &Published) {
    w.u64(p.seq);
    w.u16(p.domain.0);
    w.u16(p.hop.0);
    w.u32(p.epoch.0);
    write_domains(w, &p.on_path);
    let frame = p.frame.as_bytes();
    w.u32(frame.len() as u32);
    w.bytes(frame);
}

/// Rebuild a [`Published`] from the wire. The frame is re-decoded
/// locally (total, typed) to recover the batch and path table.
fn read_entry(r: &mut Reader<'_>) -> Result<Published, TransportError> {
    let seq = r.u64()?;
    let domain = DomainId(r.u16()?);
    let hop = HopId(r.u16()?);
    let epoch = KeyEpoch(r.u32()?);
    let on_path = read_domains(r)?;
    let frame_len = r.u32()? as usize;
    let frame = WireFrame::from_bytes(r.take(frame_len)?.to_vec());
    let decoded = frame
        .decode()
        .map_err(|e| proto_err(format!("server sent an undecodable frame: {e}")))?;
    Ok(Published {
        seq,
        domain,
        hop,
        frame,
        batch: decoded.batch,
        epoch,
        paths: decoded.paths,
        on_path,
    })
}

/// Fixed-size (58-byte) encoding of one interval summary.
fn write_summary(w: &mut Writer, s: &IntervalSummary) {
    w.u16(s.hop.0);
    w.u64(s.first_seq);
    w.u64(s.last_seq);
    w.u64(s.frames);
    w.u64(s.samples);
    w.u64(s.aggregates);
    w.u64(s.pkt_cnt);
    w.u64(s.digest);
}

fn read_summary(r: &mut Reader<'_>) -> Result<IntervalSummary, WireError> {
    Ok(IntervalSummary {
        hop: HopId(r.u16()?),
        first_seq: r.u64()?,
        last_seq: r.u64()?,
        frames: r.u64()?,
        samples: r.u64()?,
        aggregates: r.u64()?,
        pkt_cnt: r.u64()?,
        digest: r.u64()?,
    })
}

fn write_entries(w: &mut Writer, entries: &[Arc<Published>]) {
    w.u32(entries.len() as u32);
    for e in entries {
        write_entry(w, e);
    }
}

fn read_entries(r: &mut Reader<'_>) -> Result<Vec<Arc<Published>>, TransportError> {
    let n = r.u32()? as usize;
    // Entries are at least 20 bytes each; pre-flight the count so a
    // corrupt header cannot trigger a huge allocation.
    r.can_hold(n, 20).map_err(TransportError::Malformed)?;
    (0..n).map(|_| Ok(Arc::new(read_entry(r)?))).collect()
}

/// Write one length-prefixed message.
fn write_message(stream: &mut TcpStream, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "message too large"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Outcome of a stop-aware blocking read on the server side.
enum ReadOutcome {
    /// A complete message body.
    Message(Vec<u8>),
    /// The peer closed the stream (EOF on a message boundary, or a
    /// torn prefix / truncated body — either way the session is over).
    Closed,
    /// The server is shutting down.
    Stopping,
}

/// Read exactly `buf.len()` bytes, re-checking `stop` on every read
/// timeout. Partial progress across timeouts is preserved — a slow
/// peer is not mistaken for a torn stream.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::Relaxed) {
            return Ok(false);
        }
        // vpm-lint: allow(R1, filled < buf.len() in this loop)
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-message",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Read one length-prefixed message, tolerating read-timeout slices.
fn read_message(stream: &mut TcpStream, stop: &AtomicBool) -> ReadOutcome {
    let mut prefix = [0u8; 4];
    // Distinguish "closed between messages" (clean EOF on the first
    // prefix byte) from "torn mid-prefix": both end the session.
    match read_full(stream, &mut prefix, stop) {
        Ok(true) => {}
        Ok(false) => return ReadOutcome::Stopping,
        Err(_) => return ReadOutcome::Closed,
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_MESSAGE_BYTES {
        return ReadOutcome::Closed;
    }
    let mut body = vec![0u8; len];
    match read_full(stream, &mut body, stop) {
        Ok(true) => ReadOutcome::Message(body),
        Ok(false) => ReadOutcome::Stopping,
        Err(_) => ReadOutcome::Closed,
    }
}

/// Per-connection server state: the session's bus subscriptions and
/// their bounded spillover queues (entries polled off the bus but not
/// yet shipped, because one response carries at most
/// [`MAX_ENTRIES_PER_RESPONSE`] entries).
#[derive(Default)]
struct Session {
    queues: HashMap<u64, VecDeque<Arc<Published>>>,
}

impl Session {
    fn close(&mut self, bus: &ShardedBus) {
        // vpm-lint: allow(R2, unsubscribes every queue - the side effect is order-insensitive)
        for (&sub, _) in self.queues.iter() {
            let _ = bus.unsubscribe(SubscriptionId(sub));
        }
        self.queues.clear();
    }
}

/// Handle one request body, returning the response body.
fn handle_request(
    bus: &Arc<ShardedBus>,
    session: &mut Session,
    body: &[u8],
    stop: &AtomicBool,
) -> Vec<u8> {
    let mut w = Writer::default();
    match handle_request_inner(bus, session, body, stop) {
        Ok(payload) => {
            w.u8(0);
            w.bytes(&payload);
        }
        Err(e) => {
            w.u8(1);
            encode_error(&mut w, &e);
        }
    }
    w.into_vec()
}

fn handle_request_inner(
    bus: &Arc<ShardedBus>,
    session: &mut Session,
    body: &[u8],
    stop: &AtomicBool,
) -> Result<Vec<u8>, TransportError> {
    let mut r = Reader::new(body);
    let op = r.u8().map_err(|_| proto_err("empty request"))?;
    let mut w = Writer::default();
    let malformed = |e: WireError| proto_err(format!("malformed request: {e}"));
    match op {
        OP_REGISTER_KEY | OP_ROTATE_KEY => {
            let hop = HopId(r.u16().map_err(malformed)?);
            let key = HopKey::from_bytes(r.array::<SHA256_DIGEST_BYTES>().map_err(malformed)?);
            let epoch = if op == OP_REGISTER_KEY {
                bus.register_key(hop, key)?
            } else {
                bus.rotate_key(hop, key)?
            };
            w.u32(epoch.0);
        }
        OP_KEY_EPOCH => {
            let hop = HopId(r.u16().map_err(malformed)?);
            match bus.key_epoch(hop) {
                None => w.u8(0),
                Some(e) => {
                    w.u8(1);
                    w.u32(e.0);
                }
            }
        }
        OP_PUBLISH => {
            let domain = DomainId(r.u16().map_err(malformed)?);
            let on_path = read_domains(&mut r).map_err(malformed)?;
            let frame_len = r.u32().map_err(malformed)? as usize;
            let frame = WireFrame::from_bytes(r.take(frame_len).map_err(malformed)?.to_vec());
            // The enforcement point: `publish` runs the same admit
            // path as in-process, so forged frames die here with the
            // typed refusal serialized back to the publisher.
            let seq = bus.publish(domain, frame, on_path)?;
            w.u64(seq);
        }
        OP_FETCH => {
            let requester = DomainId(r.u16().map_err(malformed)?);
            let hop = HopId(r.u16().map_err(malformed)?);
            write_entries(&mut w, &bus.fetch(requester, hop)?);
        }
        OP_FETCH_PATH => {
            let requester = DomainId(r.u16().map_err(malformed)?);
            let path = decode_path(&mut r).map_err(malformed)?;
            write_entries(&mut w, &bus.fetch_path(requester, &path)?);
        }
        OP_SUBSCRIBE | OP_SUBSCRIBE_PATH => {
            let requester = DomainId(r.u16().map_err(malformed)?);
            let path = if op == OP_SUBSCRIBE_PATH {
                Some(decode_path(&mut r).map_err(malformed)?)
            } else {
                None
            };
            let resume = r.u8().map_err(malformed)?;
            let resume_seq = r.u64().map_err(malformed)?;
            let from = if resume == 1 {
                resume_seq
            } else {
                bus.publish_seq()
            };
            // A resume point the bus has GC'd past is refused with the
            // typed `LaggedBehind`, serialized back to the client —
            // never a cursor that silently skips reclaimed frames.
            let sub = match &path {
                None => bus.subscribe_from(requester, from)?,
                Some(p) => bus.subscribe_path_from(requester, p, from)?,
            };
            session.queues.insert(sub.0, VecDeque::new());
            w.u64(sub.0);
            w.u64(from);
        }
        OP_POLL => {
            let sub = SubscriptionId(r.u64().map_err(malformed)?);
            let queue = session
                .queues
                .get_mut(&sub.0)
                .ok_or(TransportError::UnknownSubscription(sub))?;
            if queue.is_empty() {
                queue.extend(bus.poll(sub)?);
            }
            let take = queue.len().min(MAX_ENTRIES_PER_RESPONSE);
            let batch: Vec<Arc<Published>> = queue.drain(..take).collect();
            write_entries(&mut w, &batch);
            w.u8(u8::from(!queue.is_empty()));
        }
        OP_WAIT => {
            let sub = SubscriptionId(r.u64().map_err(malformed)?);
            let timeout =
                Duration::from_millis(u64::from(r.u32().map_err(malformed)?)).min(MAX_SERVER_WAIT);
            let queue = session
                .queues
                .get(&sub.0)
                .ok_or(TransportError::UnknownSubscription(sub))?;
            let outcome = if queue.is_empty() {
                // Slice the blocking wait so shutdown stays prompt.
                let deadline = Instant::now() + timeout; // vpm-lint: allow(R2, bounds a blocking-wait timeout; never feeds a verdict)
                loop {
                    let now = Instant::now(); // vpm-lint: allow(R2, bounds a blocking-wait timeout; never feeds a verdict)
                    if now >= deadline || stop.load(Ordering::Relaxed) {
                        break WaitOutcome::TimedOut;
                    }
                    let slice = WAIT_SLICE.min(deadline - now);
                    match bus.wait(sub, slice)? {
                        WaitOutcome::Ready => break WaitOutcome::Ready,
                        WaitOutcome::TimedOut => {}
                    }
                }
            } else {
                WaitOutcome::Ready // undelivered spillover is an event
            };
            w.u8(match outcome {
                WaitOutcome::Ready => 0,
                WaitOutcome::TimedOut => 1,
            });
        }
        OP_UNSUBSCRIBE => {
            let sub = SubscriptionId(r.u64().map_err(malformed)?);
            session
                .queues
                .remove(&sub.0)
                .ok_or(TransportError::UnknownSubscription(sub))?;
            bus.unsubscribe(sub)?;
        }
        OP_LEN => {
            w.u64(bus.len() as u64);
        }
        OP_COMPACT => {
            let before_seq = r.u64().map_err(malformed)?;
            let report = bus.compact_before(before_seq)?;
            w.u64(report.reclaimed);
            w.u64(report.horizon);
        }
        OP_HORIZON => {
            w.u64(bus.horizon()?);
        }
        OP_SUMMARIES => {
            let sums = bus.summaries()?;
            w.u32(sums.len() as u32);
            for s in &sums {
                write_summary(&mut w, s);
            }
        }
        other => return Err(proto_err(format!("unknown opcode {other}"))),
    }
    Ok(w.into_vec())
}

/// Serve one accepted connection until the peer disconnects or the
/// server stops. The session's subscriptions are dropped on exit.
fn serve_connection(bus: Arc<ShardedBus>, mut stream: TcpStream, stop: Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(SERVER_READ_SLICE));
    let mut session = Session::default();
    // Hello exchange: send ours, require theirs.
    let mut ok = write_message_hello(&mut stream).is_ok();
    if ok {
        let mut hello = [0u8; 5];
        ok = matches!(read_full(&mut stream, &mut hello, &stop), Ok(true))
            && &hello[..4] == NET_MAGIC // vpm-lint: allow(R1, hello is a fixed 5-byte array)
            && hello[4] == NET_VERSION; // vpm-lint: allow(R1, hello is a fixed 5-byte array)
    }
    if ok {
        while let ReadOutcome::Message(body) = read_message(&mut stream, &stop) {
            let resp = handle_request(&bus, &mut session, &body, &stop);
            if write_message(&mut stream, &resp).is_err() {
                break;
            }
        }
    }
    session.close(&bus);
}

fn write_message_hello(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(NET_MAGIC)?;
    stream.write_all(&[NET_VERSION])?;
    stream.flush()
}

/// A TCP server fronting a [`ShardedBus`]. Dropping the server stops
/// the accept loop and asks live connection handlers to wind down.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving `bus`. Each connection is handled on its own
    /// thread; session subscriptions die with their connection.
    pub fn bind(addr: impl ToSocketAddrs, bus: Arc<ShardedBus>) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let bus = Arc::clone(&bus);
                let stop = Arc::clone(&accept_stop);
                std::thread::spawn(move || serve_connection(bus, stream, stop));
            }
        });
        Ok(TcpServer {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and wind down connection handlers. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::Relaxed) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One client-side subscription: enough to re-establish the server
/// cursor after a reconnect, resuming at `resume_seq`.
#[derive(Clone)]
struct ClientSub {
    requester: DomainId,
    path: Option<PathId>,
    /// The server-side cursor id, `None` until established (or after a
    /// connection loss invalidated it).
    server_sub: Option<u64>,
    /// Global sequence number to resume from; `None` until the first
    /// establishment fixes the subscription point.
    resume_seq: Option<u64>,
}

struct ClientState {
    conn: Option<TcpStream>,
    subs: HashMap<u64, ClientSub>,
    next_sub: u64,
}

/// A [`ReceiptTransport`] speaking the session protocol to a
/// [`TcpServer`]. One connection, guarded by a mutex — callers on
/// multiple threads serialize on it (the fleet runner publishes
/// complete per-path batches, so this is bandwidth-bound, not
/// latency-bound).
///
/// Connection loss is absorbed, not surfaced, wherever that is safe:
/// idempotent requests retry once on a fresh connection, and
/// subscriptions transparently re-establish server cursors resuming
/// from the last delivered sequence number. `publish` is the
/// exception — it is *not* retried, because a retry racing a
/// half-delivered publish could double-publish a receipt; the caller
/// sees [`TransportError::Connection`] and decides.
pub struct TcpTransport {
    addr: String,
    state: Mutex<ClientState>,
}

impl TcpTransport {
    /// Connect to a [`TcpServer`] at `addr` (`host:port`). Fails fast
    /// if the server is unreachable *now*; later connection losses are
    /// reconnected on demand.
    pub fn connect(addr: impl Into<String>) -> Result<TcpTransport, TransportError> {
        let t = TcpTransport {
            addr: addr.into(),
            state: Mutex::new(ClientState {
                conn: None,
                subs: HashMap::new(),
                next_sub: 0,
            }),
        };
        {
            let mut state = t.state.lock();
            t.ensure_conn(&mut state)?;
        }
        Ok(t)
    }

    /// The server address this client dials.
    pub fn server_addr(&self) -> &str {
        &self.addr
    }

    /// Test hook: drop the current connection as if the network cut
    /// it, invalidating every established server cursor. The next
    /// operation reconnects and resumes.
    #[doc(hidden)]
    pub fn break_connection(&self) {
        let mut state = self.state.lock();
        Self::drop_conn(&mut state);
    }

    fn drop_conn(state: &mut ClientState) {
        state.conn = None;
        // vpm-lint: allow(R2, invalidates every cursor - the side effect is order-insensitive)
        for sub in state.subs.values_mut() {
            sub.server_sub = None;
        }
    }

    fn ensure_conn<'a>(
        &self,
        state: &'a mut ClientState,
    ) -> Result<&'a mut TcpStream, TransportError> {
        if state.conn.is_none() {
            let mut stream = TcpStream::connect(&self.addr).map_err(|e| conn_err(&e))?;
            let _ = stream.set_nodelay(true);
            stream
                .set_read_timeout(Some(CLIENT_READ_TIMEOUT))
                .map_err(|e| conn_err(&e))?;
            write_message_hello(&mut stream).map_err(|e| conn_err(&e))?;
            let mut hello = [0u8; 5];
            stream.read_exact(&mut hello).map_err(|e| conn_err(&e))?;
            // vpm-lint: allow(R1, hello is a fixed 5-byte array)
            if &hello[..4] != NET_MAGIC {
                return Err(proto_err("server hello: bad magic"));
            }
            // vpm-lint: allow(R1, hello is a fixed 5-byte array)
            if hello[4] != NET_VERSION {
                return Err(proto_err(format!(
                    "server speaks protocol v{}, client v{NET_VERSION}",
                    hello[4]
                )));
            }
            return Ok(state.conn.insert(stream));
        }
        state
            .conn
            .as_mut()
            .ok_or_else(|| proto_err("connection state lost"))
    }

    /// One request/response round-trip. Any I/O failure drops the
    /// connection (invalidating server cursors) and reports
    /// [`TransportError::Connection`].
    fn request_once(
        &self,
        state: &mut ClientState,
        body: &[u8],
    ) -> Result<Vec<u8>, TransportError> {
        let stream = self.ensure_conn(state)?;
        let round_trip = (|| -> io::Result<Vec<u8>> {
            write_message(stream, body)?;
            let mut prefix = [0u8; 4];
            stream.read_exact(&mut prefix)?;
            let len = u32::from_le_bytes(prefix) as usize;
            if len > MAX_MESSAGE_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "oversized response",
                ));
            }
            let mut resp = vec![0u8; len];
            stream.read_exact(&mut resp)?;
            Ok(resp)
        })();
        let resp = match round_trip {
            Ok(resp) => resp,
            Err(e) => {
                Self::drop_conn(state);
                return Err(conn_err(&e));
            }
        };
        let mut r = Reader::new(&resp);
        let status = r
            .u8()
            .map_err(|_| proto_err("empty response from server"))?;
        match status {
            0 => Ok(resp[1..].to_vec()), // vpm-lint: allow(R1, the u8() read above proved resp has a first byte)
            1 => Err(decode_error(&mut r)
                .unwrap_or_else(|e| proto_err(format!("undecodable error response: {e}")))),
            other => Err(proto_err(format!("unknown response status {other}"))),
        }
    }

    /// Round-trip with a single reconnect retry — for idempotent
    /// requests only (re-sending them cannot duplicate state).
    fn request_idempotent(
        &self,
        state: &mut ClientState,
        body: &[u8],
    ) -> Result<Vec<u8>, TransportError> {
        match self.request_once(state, body) {
            Err(TransportError::Connection(_)) => self.request_once(state, body),
            other => other,
        }
    }

    /// Ensure the local subscription has a live server cursor,
    /// (re-)subscribing with the recorded resume point if not.
    fn establish(&self, state: &mut ClientState, local: u64) -> Result<u64, TransportError> {
        let sub = state
            .subs
            .get(&local)
            .ok_or(TransportError::UnknownSubscription(SubscriptionId(local)))?
            .clone();
        if let Some(server_sub) = sub.server_sub {
            return Ok(server_sub);
        }
        let mut w = Writer::default();
        match &sub.path {
            None => {
                w.u8(OP_SUBSCRIBE);
                w.u16(sub.requester.0);
            }
            Some(p) => {
                w.u8(OP_SUBSCRIBE_PATH);
                w.u16(sub.requester.0);
                encode_path(&mut w, p);
            }
        }
        match sub.resume_seq {
            None => {
                w.u8(0);
                w.u64(0);
            }
            Some(seq) => {
                w.u8(1);
                w.u64(seq);
            }
        }
        let resp = self.request_idempotent(state, w.as_slice())?;
        let mut r = Reader::new(&resp);
        let server_sub = r
            .u64()
            .map_err(|e| proto_err(format!("bad subscribe response: {e}")))?;
        let start_seq = r
            .u64()
            .map_err(|e| proto_err(format!("bad subscribe response: {e}")))?;
        if let Some(s) = state.subs.get_mut(&local) {
            s.server_sub = Some(server_sub);
            // Fix the subscription point so a reconnect before any
            // delivery resumes from here, not from "now at reconnect".
            s.resume_seq = Some(s.resume_seq.unwrap_or(start_seq));
        }
        Ok(server_sub)
    }

    /// Drain one poll round (following the server's `more` flag) and
    /// advance the local resume point past everything delivered.
    fn poll_established(
        &self,
        state: &mut ClientState,
        local: u64,
        server_sub: u64,
    ) -> Result<Vec<Arc<Published>>, TransportError> {
        let mut out: Vec<Arc<Published>> = Vec::new();
        loop {
            let mut w = Writer::default();
            w.u8(OP_POLL);
            w.u64(server_sub);
            // Not retried on connection loss: establishment is gone
            // with the connection, and the caller's next poll
            // re-establishes with the resume point instead.
            let resp = self.request_once(state, w.as_slice())?;
            let mut r = Reader::new(&resp);
            let entries = read_entries(&mut r)?;
            let more = r
                .u8()
                .map_err(|e| proto_err(format!("bad poll response: {e}")))?;
            out.extend(entries);
            if more == 0 {
                break;
            }
        }
        if let (Some(last), Some(s)) = (out.last(), state.subs.get_mut(&local)) {
            let next = last.seq + 1;
            s.resume_seq = Some(s.resume_seq.map_or(next, |r| r.max(next)));
        }
        Ok(out)
    }
}

impl ReceiptTransport for TcpTransport {
    fn register_key(&self, hop: HopId, key: HopKey) -> Result<KeyEpoch, TransportError> {
        let mut w = Writer::default();
        w.u8(OP_REGISTER_KEY);
        w.u16(hop.0);
        w.bytes(key.as_bytes());
        let mut state = self.state.lock();
        let resp = self.request_idempotent(&mut state, w.as_slice())?;
        let mut r = Reader::new(&resp);
        Ok(KeyEpoch(r.u32().map_err(|e| {
            proto_err(format!("bad register response: {e}"))
        })?))
    }

    fn rotate_key(&self, hop: HopId, new_key: HopKey) -> Result<KeyEpoch, TransportError> {
        let mut w = Writer::default();
        w.u8(OP_ROTATE_KEY);
        w.u16(hop.0);
        w.bytes(new_key.as_bytes());
        let mut state = self.state.lock();
        // NOT idempotent: a duplicated rotation burns an extra epoch.
        let resp = self.request_once(&mut state, w.as_slice())?;
        let mut r = Reader::new(&resp);
        Ok(KeyEpoch(r.u32().map_err(|e| {
            proto_err(format!("bad rotate response: {e}"))
        })?))
    }

    fn key_epoch(&self, hop: HopId) -> Option<KeyEpoch> {
        let mut w = Writer::default();
        w.u8(OP_KEY_EPOCH);
        w.u16(hop.0);
        let mut state = self.state.lock();
        let resp = self.request_idempotent(&mut state, w.as_slice()).ok()?;
        let mut r = Reader::new(&resp);
        match r.u8().ok()? {
            1 => Some(KeyEpoch(r.u32().ok()?)),
            _ => None,
        }
    }

    fn publish(
        &self,
        domain: DomainId,
        frame: WireFrame,
        on_path: Vec<DomainId>,
    ) -> Result<u64, TransportError> {
        let mut w = Writer::default();
        w.u8(OP_PUBLISH);
        w.u16(domain.0);
        write_domains(&mut w, &on_path);
        w.u32(frame.as_bytes().len() as u32);
        w.bytes(frame.as_bytes());
        let mut state = self.state.lock();
        // Never retried: the server may have committed the publish
        // before the connection died, and a blind retry would insert
        // the receipt twice.
        let resp = self.request_once(&mut state, w.as_slice())?;
        let mut r = Reader::new(&resp);
        r.u64()
            .map_err(|e| proto_err(format!("bad publish response: {e}")))
    }

    fn fetch(
        &self,
        requester: DomainId,
        hop: HopId,
    ) -> Result<Vec<Arc<Published>>, TransportError> {
        let mut w = Writer::default();
        w.u8(OP_FETCH);
        w.u16(requester.0);
        w.u16(hop.0);
        let mut state = self.state.lock();
        let resp = self.request_idempotent(&mut state, w.as_slice())?;
        read_entries(&mut Reader::new(&resp))
    }

    fn fetch_path(
        &self,
        requester: DomainId,
        path: &PathId,
    ) -> Result<Vec<Arc<Published>>, TransportError> {
        let mut w = Writer::default();
        w.u8(OP_FETCH_PATH);
        w.u16(requester.0);
        encode_path(&mut w, path);
        let mut state = self.state.lock();
        let resp = self.request_idempotent(&mut state, w.as_slice())?;
        read_entries(&mut Reader::new(&resp))
    }

    fn subscribe(&self, requester: DomainId) -> SubscriptionId {
        let mut state = self.state.lock();
        let local = state.next_sub;
        state.next_sub += 1;
        state.subs.insert(
            local,
            ClientSub {
                requester,
                path: None,
                server_sub: None,
                resume_seq: None,
            },
        );
        // Eager best-effort establishment pins the subscription point
        // near the subscribe call; on failure the first poll retries.
        let _ = self.establish(&mut state, local);
        SubscriptionId(local)
    }

    fn subscribe_path(&self, requester: DomainId, path: &PathId) -> SubscriptionId {
        let mut state = self.state.lock();
        let local = state.next_sub;
        state.next_sub += 1;
        state.subs.insert(
            local,
            ClientSub {
                requester,
                path: Some(*path),
                server_sub: None,
                resume_seq: None,
            },
        );
        let _ = self.establish(&mut state, local);
        SubscriptionId(local)
    }

    fn subscribe_from(
        &self,
        requester: DomainId,
        from_seq: u64,
    ) -> Result<SubscriptionId, TransportError> {
        let mut state = self.state.lock();
        let local = state.next_sub;
        state.next_sub += 1;
        state.subs.insert(
            local,
            ClientSub {
                requester,
                path: None,
                server_sub: None,
                resume_seq: Some(from_seq),
            },
        );
        // A resume is an assertion about history, so establishment is
        // NOT lazy here: a resume point the server already GC'd past
        // must be refused now, typed, not at some later first poll.
        if let Err(e) = self.establish(&mut state, local) {
            state.subs.remove(&local);
            return Err(e);
        }
        Ok(SubscriptionId(local))
    }

    fn poll(&self, sub: SubscriptionId) -> Result<Vec<Arc<Published>>, TransportError> {
        let mut state = self.state.lock();
        let server_sub = self.establish(&mut state, sub.0)?;
        match self.poll_established(&mut state, sub.0, server_sub) {
            // One transparent resume: reconnect, re-subscribe at the
            // recorded position, and poll again.
            Err(TransportError::Connection(_)) => {
                let server_sub = self.establish(&mut state, sub.0)?;
                self.poll_established(&mut state, sub.0, server_sub)
            }
            other => other,
        }
    }

    fn wait(&self, sub: SubscriptionId, timeout: Duration) -> Result<WaitOutcome, TransportError> {
        let deadline = Instant::now() + timeout; // vpm-lint: allow(R2, bounds a blocking-wait timeout; never feeds a verdict)
        let mut state = self.state.lock();
        loop {
            let server_sub = self.establish(&mut state, sub.0)?;
            let now = Instant::now(); // vpm-lint: allow(R2, bounds a blocking-wait timeout; never feeds a verdict)
            if now >= deadline {
                return Ok(WaitOutcome::TimedOut);
            }
            // The server caps one wait at MAX_SERVER_WAIT; longer
            // client timeouts loop over multiple requests.
            let chunk = (deadline - now).min(MAX_SERVER_WAIT);
            let mut w = Writer::default();
            w.u8(OP_WAIT);
            w.u64(server_sub);
            w.u32(chunk.as_millis().min(u128::from(u32::MAX)) as u32);
            match self.request_once(&mut state, w.as_slice()) {
                Ok(resp) => {
                    let mut r = Reader::new(&resp);
                    let outcome = r
                        .u8()
                        .map_err(|e| proto_err(format!("bad wait response: {e}")))?;
                    if outcome == 0 {
                        return Ok(WaitOutcome::Ready);
                    }
                    // vpm-lint: allow(R2, bounds a blocking-wait timeout; never feeds a verdict)
                    if Instant::now() >= deadline {
                        return Ok(WaitOutcome::TimedOut);
                    }
                }
                // Reconnect (next establish) and keep waiting.
                Err(TransportError::Connection(_)) => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn unsubscribe(&self, sub: SubscriptionId) -> Result<(), TransportError> {
        let mut state = self.state.lock();
        let client_sub = state
            .subs
            .remove(&sub.0)
            .ok_or(TransportError::UnknownSubscription(sub))?;
        // Best-effort server-side drop: if the connection is gone the
        // server's session cleanup handles it on disconnect anyway.
        if let Some(server_sub) = client_sub.server_sub {
            let mut w = Writer::default();
            w.u8(OP_UNSUBSCRIBE);
            w.u64(server_sub);
            let _ = self.request_once(&mut state, w.as_slice());
        }
        Ok(())
    }

    fn subscriptions(&self) -> usize {
        self.state.lock().subs.len()
    }

    /// Total entries on the *server's* bus; `0` when the server is
    /// unreachable (diagnostics should not panic a disconnected
    /// client).
    fn len(&self) -> usize {
        let mut w = Writer::default();
        w.u8(OP_LEN);
        let mut state = self.state.lock();
        let Ok(resp) = self.request_idempotent(&mut state, w.as_slice()) else {
            return 0;
        };
        Reader::new(&resp).u64().map_or(0, |n| n as usize)
    }

    /// Ask the *server* to compact its bus. Safe to retry: a repeated
    /// pass below the (now raised) horizon is a no-op on the server.
    fn compact_before(&self, before_seq: u64) -> Result<CompactionReport, TransportError> {
        let mut w = Writer::default();
        w.u8(OP_COMPACT);
        w.u64(before_seq);
        let mut state = self.state.lock();
        let resp = self.request_idempotent(&mut state, w.as_slice())?;
        let mut r = Reader::new(&resp);
        let bad = |e: WireError| proto_err(format!("bad compact response: {e}"));
        Ok(CompactionReport {
            reclaimed: r.u64().map_err(bad)?,
            horizon: r.u64().map_err(bad)?,
        })
    }

    fn horizon(&self) -> Result<u64, TransportError> {
        let mut w = Writer::default();
        w.u8(OP_HORIZON);
        let mut state = self.state.lock();
        let resp = self.request_idempotent(&mut state, w.as_slice())?;
        Reader::new(&resp)
            .u64()
            .map_err(|e| proto_err(format!("bad horizon response: {e}")))
    }

    fn summaries(&self) -> Result<Vec<IntervalSummary>, TransportError> {
        let mut w = Writer::default();
        w.u8(OP_SUMMARIES);
        let mut state = self.state.lock();
        let resp = self.request_idempotent(&mut state, w.as_slice())?;
        let mut r = Reader::new(&resp);
        let bad = |e: WireError| proto_err(format!("bad summaries response: {e}"));
        let n = r.u32().map_err(bad)? as usize;
        // 58 bytes per fixed-size summary record; pre-flight the count
        // so a corrupt header cannot trigger a huge allocation.
        r.can_hold(n, 58).map_err(bad)?;
        (0..n).map(|_| read_summary(&mut r).map_err(bad)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every typed error round-trips the wire exactly (`Malformed`
    /// degrades to a documented `Protocol` rendering).
    #[test]
    fn transport_errors_round_trip_the_error_codec() {
        let cases = vec![
            TransportError::BadTag { hop: HopId(7) },
            TransportError::BadMac { hop: HopId(8) },
            TransportError::Unsigned { hop: HopId(9) },
            TransportError::UnknownKeyEpoch {
                hop: HopId(1),
                epoch: KeyEpoch(4),
            },
            TransportError::KeyAlreadyRegistered { hop: HopId(2) },
            TransportError::NotOnPath {
                requester: DomainId(3),
            },
            TransportError::UnknownHop(HopId(4)),
            TransportError::UnknownSubscription(SubscriptionId(99)),
            TransportError::Protocol("nope".into()),
            TransportError::LaggedBehind { horizon: 123_456 },
        ];
        for e in cases {
            let mut w = Writer::default();
            encode_error(&mut w, &e);
            let got = decode_error(&mut Reader::new(w.as_slice())).unwrap();
            assert_eq!(got, e, "error must round-trip");
        }
        // Malformed serializes its rendering; the client reads it as a
        // Protocol refusal carrying that rendering.
        let mut w = Writer::default();
        encode_error(
            &mut w,
            &TransportError::Malformed(WireError::BadMagic([0; 4])),
        );
        match decode_error(&mut Reader::new(w.as_slice())).unwrap() {
            TransportError::Protocol(msg) => assert!(msg.contains("server refused frame")),
            other => panic!("expected Protocol, got {other:?}"),
        }
    }

    /// Dialing a port nobody listens on is a typed
    /// [`TransportError::Connection`], not a panic or a hang.
    #[test]
    fn connecting_to_a_dead_server_is_a_typed_connection_error() {
        // Bind an ephemeral port, learn the address, drop the
        // listener: the port is now provably unserved.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        match TcpTransport::connect(addr) {
            Err(TransportError::Connection(msg)) => {
                assert!(!msg.is_empty(), "the refusal must say why");
            }
            Err(other) => panic!("expected Connection error, got {other:?}"),
            Ok(_) => panic!("connecting to a dead port must not succeed"),
        }
    }

    /// A truncated error body is itself a typed decode error, not a
    /// panic.
    #[test]
    fn truncated_error_bodies_are_typed() {
        let mut w = Writer::default();
        encode_error(
            &mut w,
            &TransportError::UnknownKeyEpoch {
                hop: HopId(1),
                epoch: KeyEpoch(2),
            },
        );
        let bytes = w.into_vec();
        for n in 0..bytes.len() {
            let _ = decode_error(&mut Reader::new(&bytes[..n])); // must not panic
        }
    }
}
