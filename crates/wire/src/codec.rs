//! The v1 binary receipt codec.
//!
//! Receipts travel as **frames**: one frame per [`ReceiptBatch`],
//! self-describing, versioned, and decodable without out-of-band
//! context. All multi-byte integers are little-endian.
//!
//! ```text
//! offset size      field
//! 0      4         magic "VPMW"
//! 4      1         version (currently 1)
//! 5      1         flags (bit0: PRECISE profile; bit1: SIGNED frame;
//!                  all other bits zero)
//! 6      2         reporting HOP id
//! 8      8         batch sequence number
//! 16     8         authenticity tag
//! 24     2         path count (p)
//! 26     24·p      PathID table, one entry per distinct path:
//!                  src net u32 | src len u8 | dst net u32 | dst len u8
//!                  | prev flag u8 | prev u16 | next flag u8 | next u16
//!                  | MaxDiff ns u64
//! …      4         sample-receipt count (s)
//! …      4·s       record-count directory, one u32 per sample receipt
//! …      …         sample-receipt bodies: path ref u32, then records
//!                    compact: PktID lo u32 | time µs mod 2²⁴ u24 (7 B)
//!                    precise: PktID u64   | time ns u64         (16 B)
//! …      4         aggregate-receipt count (a)
//! …      …         aggregate-receipt bodies:
//!                    compact: path ref u32 | first lo u32 | last lo u32
//!                             | PktCnt u48 | window len u32
//!                             | window lo u32 each        (22 + 4w B)
//!                    precise: path ref u32 | first u64 | last u64
//!                             | PktCnt u64 | window len u32
//!                             | window u64 each           (32 + 8w B)
//! …      36        MAC trailer, only when the SIGNED flag is set:
//!                    key epoch u32 | HMAC-SHA-256 (32 B) over every
//!                    preceding frame byte, epoch field included — so
//!                    the MAC binds the epoch, and any bit of header,
//!                    body, or epoch invalidates it
//! ```
//!
//! Two record profiles share this layout:
//!
//! * [`Profile::Compact`] — the §7.1 wire format. Record bytes are
//!   **exactly** the `receipt::compact` arithmetic: 7-byte sample
//!   records, 22-byte aggregate receipts (+4 per window digest), with
//!   the truncation semantics documented in `vpm_core::receipt::compact`
//!   (low-32-bit digests; µs-mod-2²⁴ timestamps). Decoding re-expands
//!   the truncated values; the verifier's truncated digest-matching
//!   path (`Verifier::estimate_delay_truncated`) consumes them.
//! * [`Profile::Precise`] — full-fidelity 8-byte digests and nanosecond
//!   timestamps. `encode → decode` is the identity on [`ReceiptBatch`];
//!   the simulation pipeline routes every receipt through this profile,
//!   so the entire test surface (including the 216-cell matrix goldens)
//!   proves the codec lossless.
//!
//! Decoding is **total**: any byte string either decodes or returns a
//! typed [`WireError`] — truncated input, bad magic, unknown versions
//! or flags, dangling path references, oversized counts and trailing
//! garbage are all errors, never panics (fuzzed in this module's
//! tests).
//!
//! ## Signed frames
//!
//! A frame with the SIGNED flag carries a 36-byte MAC trailer
//! ([`MAC_TRAILER_BYTES`]): the [`vpm_hash::KeyEpoch`] under which the
//! publishing HOP's key was registered, then an HMAC-SHA-256 over all
//! preceding bytes under the HOP's 32-byte [`vpm_hash::HopKey`].
//! [`WireEncoder::encode_signed`] produces them;
//! [`WireFrame::verify_mac`] checks them (constant-time compare). An
//! unsigned v1 frame is byte-identical to what pre-MAC encoders
//! produced, so the golden fixture and every historical frame still
//! decode; the decoder merely reports `signature: None`. Enforcement —
//! *rejecting* unsigned or mis-signed publishes — lives in the
//! transport's `admit`, not the codec.
//!
//! ## Versioning rules
//!
//! The version byte names the complete layout above. Any layout change
//! — field widths, section order, new sections — bumps it; decoders
//! reject versions they do not know ([`WireError::UnsupportedVersion`])
//! rather than guessing. Flag bits not assigned in a version are
//! reserved-zero and rejected ([`WireError::BadFlags`]), so a v1
//! decoder can never silently misread a frame that depends on a newer
//! feature. The golden fixture `tests/golden/wire_v1.hex` pins the v1
//! bytes; it fails loudly on any drift that forgets to bump the
//! version.

use std::collections::HashMap;
use std::fmt;

use vpm_core::processor::ReceiptBatch;
use vpm_core::receipt::{compact, AggId, AggReceipt, PathId, SampleReceipt, SampleRecord};
use vpm_hash::{mac_eq, Digest, HopKey, KeyEpoch, SHA256_DIGEST_BYTES};
use vpm_packet::{HeaderSpec, HopId, Ipv4Prefix, SimDuration, SimTime};

/// Frame magic: `"VPMW"`.
pub const MAGIC: [u8; 4] = *b"VPMW";
/// Current wire-format version.
pub const VERSION: u8 = 1;
/// Flag bit selecting the precise (full-fidelity) record profile.
const FLAG_PRECISE: u8 = 0b0000_0001;
/// Flag bit marking a signed frame (MAC trailer present).
const FLAG_SIGNED: u8 = 0b0000_0010;
/// Fixed frame header bytes (magic, version, flags, hop, seq, tag).
pub const HEADER_BYTES: usize = 24;
/// Encoded bytes per `PathID` table entry.
pub const PATH_ENTRY_BYTES: usize = 24;
/// Bytes of the MAC trailer a signed frame appends: key epoch (u32) +
/// HMAC-SHA-256 (32 B).
pub const MAC_TRAILER_BYTES: usize = 4 + SHA256_DIGEST_BYTES;

/// Record encoding carried by a v1 frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// §7.1 truncated records: 7-byte samples, 22-byte aggregates.
    Compact,
    /// Full-fidelity records: lossless `encode → decode`.
    Precise,
}

impl Profile {
    /// Encoded bytes per sample record in this profile.
    pub fn sample_record_bytes(self) -> usize {
        match self {
            Profile::Compact => compact::SAMPLE_RECORD_BYTES,
            Profile::Precise => 16,
        }
    }

    /// Encoded body bytes of a sample receipt with `records` records
    /// (path reference + records; the 4-byte directory entry lives in
    /// the frame's sample directory, not the body).
    pub fn sample_receipt_bytes(self, records: usize) -> usize {
        compact::PATH_REF_BYTES + records * self.sample_record_bytes()
    }

    /// Encoded body bytes of an aggregate receipt with a `window`-digest
    /// `AggTrans` window. For [`Profile::Compact`] this is the paper's
    /// 22 bytes plus 4 per window digest.
    pub fn agg_receipt_bytes(self, window: usize) -> usize {
        match self {
            Profile::Compact => {
                compact::PATH_REF_BYTES
                    + 2 * compact::PKT_ID_BYTES
                    + compact::PKT_CNT_BYTES
                    + 4
                    + window * compact::PKT_ID_BYTES
            }
            Profile::Precise => compact::PATH_REF_BYTES + 2 * 8 + 8 + 4 + window * 8,
        }
    }

    fn flags(self) -> u8 {
        match self {
            Profile::Compact => 0,
            Profile::Precise => FLAG_PRECISE,
        }
    }
}

/// Typed codec errors. Decoding is total: every malformed input maps to
/// one of these, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a field could be read.
    Truncated {
        /// Byte offset at which more input was needed.
        at: usize,
        /// Bytes the next field needed.
        needed: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte names a layout this decoder does not know.
    UnsupportedVersion(u8),
    /// The flags byte sets bits v1 does not assign.
    BadFlags(u8),
    /// A prefix length exceeded 32 bits.
    BadPrefixLen(u8),
    /// An Option tag byte was neither 0 nor 1.
    BadOptionTag(u8),
    /// A receipt referenced a path index beyond the frame's table.
    BadPathRef {
        /// The dangling reference.
        reference: u32,
        /// Entries actually present in the table.
        paths: u16,
    },
    /// A packet count does not fit the compact profile's 6-byte field.
    CountTooLarge(u64),
    /// More than `u16::MAX` distinct paths in one batch (encode-side).
    TooManyPaths(usize),
    /// A receipt or record count overflowed its 4-byte field
    /// (encode-side).
    TooManyItems(usize),
    /// Bytes remained after the last section (corrupt or concatenated
    /// input).
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { at, needed } => {
                write!(f, "input truncated at byte {at} (needed {needed} more)")
            }
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadFlags(b) => write!(f, "unassigned flag bits set: {b:#010b}"),
            WireError::BadPrefixLen(l) => write!(f, "prefix length {l} > 32"),
            WireError::BadOptionTag(t) => write!(f, "option tag {t} is neither 0 nor 1"),
            WireError::BadPathRef { reference, paths } => {
                write!(f, "path ref {reference} outside table of {paths}")
            }
            WireError::CountTooLarge(c) => {
                write!(f, "packet count {c} exceeds the 6-byte wire field")
            }
            WireError::TooManyPaths(p) => write!(f, "{p} paths exceed the 2-byte table"),
            WireError::TooManyItems(n) => write!(f, "{n} items exceed a 4-byte count"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the frame"),
        }
    }
}

impl std::error::Error for WireError {}

/// Where each section of an encoded frame landed — the measured sizes
/// behind `measure::measured_sizes()` and the `measured_*` §7.1
/// functions in `vpm_core::overhead`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameStats {
    /// Total frame bytes.
    pub total_bytes: usize,
    /// Fixed header bytes ([`HEADER_BYTES`]).
    pub header_bytes: usize,
    /// Path-table bytes (2-byte count + entries).
    pub path_table_bytes: usize,
    /// Sample section framing: 4-byte count + 4-byte directory entries.
    pub sample_directory_bytes: usize,
    /// Sample-receipt body bytes (path refs + records).
    pub sample_body_bytes: usize,
    /// Aggregate section bytes (4-byte count + bodies).
    pub agg_section_bytes: usize,
    /// MAC trailer bytes: [`MAC_TRAILER_BYTES`] for a signed frame,
    /// 0 for an unsigned one.
    pub mac_trailer_bytes: usize,
}

/// The MAC trailer of a signed frame, as decoded off the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSignature {
    /// The key epoch the publisher claims to have signed under.
    pub epoch: KeyEpoch,
    /// The HMAC-SHA-256 over every preceding frame byte.
    pub mac: [u8; SHA256_DIGEST_BYTES],
}

/// One encoded receipt frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFrame {
    bytes: Vec<u8>,
}

impl WireFrame {
    /// Wrap raw bytes without validating them (validation happens at
    /// [`WireFrame::decode`] / [`WireDecoder::decode`]).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        WireFrame { bytes }
    }

    /// The frame's bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Encoded length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Is the frame empty (zero bytes — never a valid encoding)?
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Encode a batch in the given profile.
    pub fn encode(batch: &ReceiptBatch, profile: Profile) -> Result<WireFrame, WireError> {
        WireEncoder::new(profile).encode(batch)
    }

    /// Decode this frame.
    pub fn decode(&self) -> Result<DecodedFrame, WireError> {
        WireDecoder::decode(&self.bytes)
    }

    /// Verify the MAC trailer of a signed frame against `key`
    /// (constant-time compare). Returns `false` for unsigned or
    /// impossibly short frames — a frame that carries no signature can
    /// never *verify*.
    ///
    /// The MAC covers every byte before the 32-byte MAC itself
    /// (header, body, and the epoch field), so any single-bit change
    /// anywhere in the frame invalidates it.
    #[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
    pub fn verify_mac(&self, key: &HopKey) -> bool {
        let n = self.bytes.len();
        // vpm-lint: allow(R1, bytes[5] is covered by the length check on the same line)
        if n < HEADER_BYTES + MAC_TRAILER_BYTES || self.bytes[5] & FLAG_SIGNED == 0 {
            return false;
        }
        let (msg, mac) = self.bytes.split_at(n - SHA256_DIGEST_BYTES);
        let mac: [u8; SHA256_DIGEST_BYTES] = mac.try_into().expect("32-byte split"); // vpm-lint: allow(R1, split_at(n - 32) yields an exactly 32-byte tail)
        mac_eq(&key.mac(msg), &mac)
    }

    /// Lower-case hex rendering (golden fixtures, debugging).
    pub fn to_hex(&self) -> String {
        self.bytes.iter().map(|b| format!("{b:02x}")).collect()
    }
}

/// A decoded frame: the batch plus frame-level metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFrame {
    /// The reconstructed batch. Exact under [`Profile::Precise`];
    /// truncated per `receipt::compact` under [`Profile::Compact`].
    pub batch: ReceiptBatch,
    /// The record profile the frame was encoded with.
    pub profile: Profile,
    /// The frame's `PathID` table, in wire order.
    pub paths: Vec<PathId>,
    /// The MAC trailer, when the frame was signed. Decoding reads it;
    /// it does **not** verify it — call [`WireFrame::verify_mac`] with
    /// the registered key for the claimed epoch.
    pub signature: Option<FrameSignature>,
}

/// Encodes [`ReceiptBatch`]es into v1 frames.
#[derive(Debug, Clone, Copy)]
pub struct WireEncoder {
    profile: Profile,
}

impl WireEncoder {
    /// An encoder for the given record profile.
    pub fn new(profile: Profile) -> Self {
        WireEncoder { profile }
    }

    /// The §7.1 compact-profile encoder.
    pub fn compact() -> Self {
        WireEncoder::new(Profile::Compact)
    }

    /// The lossless precise-profile encoder.
    pub fn precise() -> Self {
        WireEncoder::new(Profile::Precise)
    }

    /// This encoder's record profile.
    pub fn profile(&self) -> Profile {
        self.profile
    }

    /// Encode a batch.
    pub fn encode(&self, batch: &ReceiptBatch) -> Result<WireFrame, WireError> {
        self.encode_with_stats(batch).map(|(f, _)| f)
    }

    /// Encode a batch and report where each section landed.
    pub fn encode_with_stats(
        &self,
        batch: &ReceiptBatch,
    ) -> Result<(WireFrame, FrameStats), WireError> {
        self.encode_inner(batch, None)
    }

    /// Encode a batch as a **signed** frame: the SIGNED flag is set
    /// and a [`MAC_TRAILER_BYTES`]-byte trailer (epoch + HMAC-SHA-256
    /// under `key`) is appended. Deterministic: the same batch, key,
    /// and epoch always produce the same bytes.
    pub fn encode_signed(
        &self,
        batch: &ReceiptBatch,
        key: &HopKey,
        epoch: KeyEpoch,
    ) -> Result<WireFrame, WireError> {
        self.encode_signed_with_stats(batch, key, epoch)
            .map(|(f, _)| f)
    }

    /// [`WireEncoder::encode_signed`], also reporting section sizes
    /// (`mac_trailer_bytes` included).
    pub fn encode_signed_with_stats(
        &self,
        batch: &ReceiptBatch,
        key: &HopKey,
        epoch: KeyEpoch,
    ) -> Result<(WireFrame, FrameStats), WireError> {
        self.encode_inner(batch, Some((key, epoch)))
    }

    fn encode_inner(
        &self,
        batch: &ReceiptBatch,
        sign: Option<(&HopKey, KeyEpoch)>,
    ) -> Result<(WireFrame, FrameStats), WireError> {
        let paths = batch.paths();
        if paths.len() > u16::MAX as usize {
            return Err(WireError::TooManyPaths(paths.len()));
        }
        let path_index: HashMap<PathId, u32> = paths
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u32))
            .collect();

        let mut w = Writer::default();
        // Header.
        w.bytes(&MAGIC);
        w.u8(VERSION);
        let mut flags = self.profile.flags();
        if sign.is_some() {
            flags |= FLAG_SIGNED;
        }
        w.u8(flags);
        w.u16(batch.hop.0);
        w.u64(batch.batch_seq);
        w.u64(batch.auth_tag);
        let header_bytes = w.len();

        // Path table.
        w.u16(paths.len() as u16);
        for p in &paths {
            encode_path(&mut w, p);
        }
        let path_table_bytes = w.len() - header_bytes;

        // Sample directory.
        w.u32(count32(batch.samples.len())?);
        for r in &batch.samples {
            w.u32(count32(r.samples.len())?);
        }
        let sample_directory_bytes = w.len() - header_bytes - path_table_bytes;

        // Sample bodies.
        let body_start = w.len();
        for r in &batch.samples {
            w.u32(path_index[&r.path]); // vpm-lint: allow(R1, the path table was built from these same receipts above)
            for s in &r.samples {
                match self.profile {
                    Profile::Compact => {
                        w.u32(compact::truncate_digest(s.pkt_id));
                        w.u24(compact::truncate_time(s.time));
                    }
                    Profile::Precise => {
                        w.u64(s.pkt_id.0);
                        w.u64(s.time.as_nanos());
                    }
                }
            }
        }
        let sample_body_bytes = w.len() - body_start;

        // Aggregate section.
        let agg_start = w.len();
        w.u32(count32(batch.aggregates.len())?);
        for a in &batch.aggregates {
            w.u32(path_index[&a.path]); // vpm-lint: allow(R1, the path table was built from these same receipts above)
            match self.profile {
                Profile::Compact => {
                    w.u32(compact::truncate_digest(a.agg.first));
                    w.u32(compact::truncate_digest(a.agg.last));
                    if a.pkt_cnt >= 1 << 48 {
                        return Err(WireError::CountTooLarge(a.pkt_cnt));
                    }
                    w.u48(a.pkt_cnt);
                }
                Profile::Precise => {
                    w.u64(a.agg.first.0);
                    w.u64(a.agg.last.0);
                    w.u64(a.pkt_cnt);
                }
            }
            w.u32(count32(a.agg_trans.len())?);
            for &d in &a.agg_trans {
                match self.profile {
                    Profile::Compact => w.u32(compact::truncate_digest(d)),
                    Profile::Precise => w.u64(d.0),
                }
            }
        }
        let agg_section_bytes = w.len() - agg_start;

        // MAC trailer: epoch, then the HMAC over everything written so
        // far — epoch field included, so a replay under a different
        // epoch cannot reuse the MAC.
        let mut mac_trailer_bytes = 0;
        if let Some((key, epoch)) = sign {
            w.u32(epoch.0);
            let mac = key.mac(w.as_slice());
            w.bytes(&mac);
            mac_trailer_bytes = MAC_TRAILER_BYTES;
        }

        let stats = FrameStats {
            total_bytes: w.len(),
            header_bytes,
            path_table_bytes,
            sample_directory_bytes,
            sample_body_bytes,
            agg_section_bytes,
            mac_trailer_bytes,
        };
        Ok((
            WireFrame {
                bytes: w.into_vec(),
            },
            stats,
        ))
    }
}

/// Decodes v1 frames back into batches. Stateless; decoding is total.
#[derive(Debug, Clone, Copy)]
pub struct WireDecoder;

impl WireDecoder {
    /// Decode a frame from raw bytes.
    pub fn decode(bytes: &[u8]) -> Result<DecodedFrame, WireError> {
        let mut r = Reader::new(bytes);
        let magic = r.array::<4>()?;
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let flags = r.u8()?;
        let signed = flags & FLAG_SIGNED != 0;
        let profile = match flags & !FLAG_SIGNED {
            0 => Profile::Compact,
            FLAG_PRECISE => Profile::Precise,
            _ => return Err(WireError::BadFlags(flags)),
        };
        let hop = HopId(r.u16()?);
        let batch_seq = r.u64()?;
        let auth_tag = r.u64()?;

        // Path table.
        let path_count = r.u16()?;
        r.can_hold(path_count as usize, PATH_ENTRY_BYTES)?;
        let mut paths = Vec::with_capacity(path_count as usize);
        for _ in 0..path_count {
            paths.push(decode_path(&mut r)?);
        }
        let path_at = |reference: u32| -> Result<PathId, WireError> {
            paths
                .get(reference as usize)
                .copied()
                .ok_or(WireError::BadPathRef {
                    reference,
                    paths: path_count,
                })
        };

        // Sample directory, then bodies.
        let sample_count = r.u32()? as usize;
        r.can_hold(sample_count, 4)?;
        let mut record_counts = Vec::with_capacity(sample_count);
        for _ in 0..sample_count {
            record_counts.push(r.u32()? as usize);
        }
        let rec_bytes = profile.sample_record_bytes();
        let mut samples = Vec::with_capacity(sample_count);
        for &records in &record_counts {
            let path = path_at(r.u32()?)?;
            r.can_hold(records, rec_bytes)?;
            let mut recs = Vec::with_capacity(records);
            for _ in 0..records {
                recs.push(match profile {
                    Profile::Compact => SampleRecord {
                        pkt_id: compact::expand_digest(r.u32()?),
                        time: compact::expand_time(r.u24()?),
                    },
                    Profile::Precise => SampleRecord {
                        pkt_id: Digest(r.u64()?),
                        time: SimTime::from_nanos(r.u64()?),
                    },
                });
            }
            samples.push(SampleReceipt {
                path,
                samples: recs,
            });
        }

        // Aggregate section.
        let agg_count = r.u32()? as usize;
        r.can_hold(agg_count, profile.agg_receipt_bytes(0))?;
        let mut aggregates = Vec::with_capacity(agg_count);
        for _ in 0..agg_count {
            let path = path_at(r.u32()?)?;
            let (first, last, pkt_cnt) = match profile {
                Profile::Compact => (
                    compact::expand_digest(r.u32()?),
                    compact::expand_digest(r.u32()?),
                    r.u48()?,
                ),
                Profile::Precise => (Digest(r.u64()?), Digest(r.u64()?), r.u64()?),
            };
            let window = r.u32()? as usize;
            let digest_bytes = match profile {
                Profile::Compact => compact::PKT_ID_BYTES,
                Profile::Precise => 8,
            };
            r.can_hold(window, digest_bytes)?;
            let mut agg_trans = Vec::with_capacity(window);
            for _ in 0..window {
                agg_trans.push(match profile {
                    Profile::Compact => compact::expand_digest(r.u32()?),
                    Profile::Precise => Digest(r.u64()?),
                });
            }
            aggregates.push(AggReceipt {
                path,
                agg: AggId { first, last },
                pkt_cnt,
                agg_trans,
            });
        }

        // MAC trailer (signed frames only), then nothing may remain.
        let signature = if signed {
            let epoch = KeyEpoch(r.u32()?);
            let mac = r.array::<SHA256_DIGEST_BYTES>()?;
            Some(FrameSignature { epoch, mac })
        } else {
            None
        };

        if r.remaining() > 0 {
            return Err(WireError::TrailingBytes(r.remaining()));
        }

        Ok(DecodedFrame {
            batch: ReceiptBatch {
                hop,
                batch_seq,
                samples,
                aggregates,
                auth_tag,
            },
            profile,
            paths,
            signature,
        })
    }
}

fn count32(n: usize) -> Result<u32, WireError> {
    u32::try_from(n).map_err(|_| WireError::TooManyItems(n))
}

pub(crate) fn encode_path(w: &mut Writer, p: &PathId) {
    w.u32(u32::from(p.spec.src_prefix.network()));
    w.u8(p.spec.src_prefix.len());
    w.u32(u32::from(p.spec.dst_prefix.network()));
    w.u8(p.spec.dst_prefix.len());
    for hop in [p.prev_hop, p.next_hop] {
        match hop {
            None => {
                w.u8(0);
                w.u16(0);
            }
            Some(h) => {
                w.u8(1);
                w.u16(h.0);
            }
        }
    }
    w.u64(p.max_diff.as_nanos());
}

pub(crate) fn decode_path(r: &mut Reader<'_>) -> Result<PathId, WireError> {
    let prefix = |r: &mut Reader<'_>| -> Result<Ipv4Prefix, WireError> {
        let net = r.u32()?;
        let len = r.u8()?;
        Ipv4Prefix::new(std::net::Ipv4Addr::from(net), len)
            .map_err(|_| WireError::BadPrefixLen(len))
    };
    let src = prefix(r)?;
    let dst = prefix(r)?;
    let hop = |r: &mut Reader<'_>| -> Result<Option<HopId>, WireError> {
        let tag = r.u8()?;
        let id = r.u16()?;
        match tag {
            0 => Ok(None),
            1 => Ok(Some(HopId(id))),
            other => Err(WireError::BadOptionTag(other)),
        }
    };
    let prev_hop = hop(r)?;
    let next_hop = hop(r)?;
    let max_diff = SimDuration::from_nanos(r.u64()?);
    Ok(PathId {
        spec: HeaderSpec::new(src, dst),
        prev_hop,
        next_hop,
        max_diff,
    })
}

/// Little-endian append-only byte writer.
#[derive(Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn len(&self) -> usize {
        self.buf.len()
    }
    pub(crate) fn as_slice(&self) -> &[u8] {
        &self.buf
    }
    pub(crate) fn into_vec(self) -> Vec<u8> {
        self.buf
    }
    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u24(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes()[..3]); // vpm-lint: allow(R1, to_le_bytes() yields 8 bytes and 3 are taken)
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u48(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes()[..6]); // vpm-lint: allow(R1, to_le_bytes() yields 8 bytes and 6 are taken)
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Bounds-checked little-endian reader; every overrun is a typed
/// [`WireError::Truncated`].
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Pre-flight an `items × size` section so corrupt counts fail fast
    /// instead of over-allocating before the per-item reads error out.
    pub(crate) fn can_hold(&self, items: usize, size: usize) -> Result<(), WireError> {
        let needed = items.saturating_mul(size);
        if needed > self.remaining() {
            return Err(WireError::Truncated {
                at: self.at,
                needed: needed - self.remaining(),
            });
        }
        Ok(())
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                at: self.at,
                needed: n - self.remaining(),
            });
        }
        let s = &self.buf[self.at..self.at + n]; // vpm-lint: allow(R1, take() checked at + n <= buf.len() above)
        self.at += n;
        Ok(s)
    }

    #[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
    pub(crate) fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        Ok(self.take(N)?.try_into().expect("take returned N bytes")) // vpm-lint: allow(R1, take(N) returned exactly N bytes)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0]) // vpm-lint: allow(R1, take(1) returned exactly one byte)
    }

    pub(crate) fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    pub(crate) fn u24(&mut self) -> Result<u32, WireError> {
        let b = self.take(3)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], 0])) // vpm-lint: allow(R1, take(3) returned exactly three bytes)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    pub(crate) fn u48(&mut self) -> Result<u64, WireError> {
        let b = self.take(6)?;
        Ok(u64::from_le_bytes([
            // vpm-lint: allow(R1, take(6) returned exactly six bytes)
            b[0], b[1], b[2], b[3], b[4], b[5], 0, 0,
        ]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use vpm_packet::DomainId;

    fn path(n: u8) -> PathId {
        PathId {
            spec: HeaderSpec::new(
                format!("10.{n}.0.0/16").parse().unwrap(),
                "192.168.0.0/24".parse().unwrap(),
            ),
            prev_hop: n.is_multiple_of(2).then_some(HopId(3)),
            next_hop: Some(HopId(5)),
            max_diff: SimDuration::from_millis(2),
        }
    }

    fn known_batch() -> ReceiptBatch {
        let mut b = ReceiptBatch {
            hop: HopId(4),
            batch_seq: 9,
            samples: vec![
                SampleReceipt {
                    path: path(0),
                    samples: vec![
                        SampleRecord {
                            pkt_id: Digest(0xdead_beef_0123_4567),
                            time: SimTime::from_nanos(1_234_567_891),
                        },
                        SampleRecord {
                            pkt_id: Digest(42),
                            time: SimTime::from_micros(17),
                        },
                    ],
                },
                SampleReceipt {
                    path: path(1),
                    samples: vec![],
                },
            ],
            aggregates: vec![AggReceipt {
                path: path(0),
                agg: AggId {
                    first: Digest(0xaaaa_bbbb_cccc_dddd),
                    last: Digest(0x1111_2222_3333_4444),
                },
                pkt_cnt: 100_000,
                agg_trans: vec![Digest(7), Digest(0xffff_ffff_0000_0001)],
            }],
            auth_tag: 0,
        };
        b.auth_tag = b.compute_tag(0xabc);
        b
    }

    /// Deterministic pseudo-random batch for the fuzz properties.
    fn arb_batch(seed: u64) -> ReceiptBatch {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n_paths = rng.gen_range(0usize..4) + 1;
        let paths: Vec<PathId> = (0..n_paths)
            .map(|_| PathId {
                spec: HeaderSpec::new(
                    Ipv4Prefix::new(
                        std::net::Ipv4Addr::from(rng.gen::<u32>()),
                        rng.gen_range(0u32..33) as u8,
                    )
                    .unwrap(),
                    Ipv4Prefix::new(
                        std::net::Ipv4Addr::from(rng.gen::<u32>()),
                        rng.gen_range(0u32..33) as u8,
                    )
                    .unwrap(),
                ),
                prev_hop: rng.gen::<bool>().then(|| HopId(rng.gen())),
                next_hop: rng.gen::<bool>().then(|| HopId(rng.gen())),
                max_diff: SimDuration::from_nanos(rng.gen()),
            })
            .collect();
        ReceiptBatch {
            hop: HopId(rng.gen()),
            batch_seq: rng.gen(),
            samples: (0..rng.gen_range(0usize..4))
                .map(|_| SampleReceipt {
                    path: paths[rng.gen_range(0usize..paths.len())],
                    samples: (0..rng.gen_range(0usize..20))
                        .map(|_| SampleRecord {
                            pkt_id: Digest(rng.gen()),
                            time: SimTime::from_nanos(rng.gen()),
                        })
                        .collect(),
                })
                .collect(),
            aggregates: (0..rng.gen_range(0usize..4))
                .map(|_| AggReceipt {
                    path: paths[rng.gen_range(0usize..paths.len())],
                    agg: AggId {
                        first: Digest(rng.gen()),
                        last: Digest(rng.gen()),
                    },
                    pkt_cnt: rng.gen::<u64>() & ((1 << 48) - 1),
                    agg_trans: (0..rng.gen_range(0usize..6))
                        .map(|_| Digest(rng.gen()))
                        .collect(),
                })
                .collect(),
            auth_tag: rng.gen(),
        }
    }

    /// The compact truncation of a batch: what a compact frame decodes
    /// to (tag bytes preserved verbatim — re-signing is the signer's
    /// job, not the codec's).
    fn truncated(b: &ReceiptBatch) -> ReceiptBatch {
        ReceiptBatch {
            hop: b.hop,
            batch_seq: b.batch_seq,
            samples: b
                .samples
                .iter()
                .map(compact::truncate_sample_receipt)
                .collect(),
            aggregates: b
                .aggregates
                .iter()
                .map(compact::truncate_agg_receipt)
                .collect(),
            auth_tag: b.auth_tag,
        }
    }

    #[test]
    fn precise_roundtrip_is_the_identity() {
        let b = known_batch();
        let frame = WireFrame::encode(&b, Profile::Precise).unwrap();
        let d = frame.decode().unwrap();
        assert_eq!(d.profile, Profile::Precise);
        assert_eq!(d.batch, b);
        assert_eq!(d.paths, b.paths());
        // The tag still verifies after the round trip.
        assert!(d.batch.verify_tag(0xabc));
    }

    #[test]
    fn compact_roundtrip_is_the_documented_truncation() {
        let b = known_batch();
        let frame = WireFrame::encode(&b, Profile::Compact).unwrap();
        let d = frame.decode().unwrap();
        assert_eq!(d.profile, Profile::Compact);
        assert_eq!(d.batch, truncated(&b));
        // Truncation is idempotent: re-encoding the decoded batch gives
        // the same bytes.
        let again = WireFrame::encode(&d.batch, Profile::Compact).unwrap();
        assert_eq!(again, frame);
    }

    #[test]
    fn encoded_sections_match_the_size_arithmetic() {
        let b = known_batch();
        for profile in [Profile::Compact, Profile::Precise] {
            let (frame, stats) = WireEncoder::new(profile).encode_with_stats(&b).unwrap();
            assert_eq!(stats.total_bytes, frame.len());
            assert_eq!(stats.header_bytes, HEADER_BYTES);
            assert_eq!(
                stats.path_table_bytes,
                2 + b.paths().len() * PATH_ENTRY_BYTES
            );
            assert_eq!(stats.sample_directory_bytes, 4 + 4 * b.samples.len());
            assert_eq!(
                stats.sample_body_bytes,
                b.samples
                    .iter()
                    .map(|r| profile.sample_receipt_bytes(r.samples.len()))
                    .sum::<usize>()
            );
            assert_eq!(
                stats.agg_section_bytes,
                4 + b
                    .aggregates
                    .iter()
                    .map(|a| profile.agg_receipt_bytes(a.agg_trans.len()))
                    .sum::<usize>()
            );
            assert_eq!(
                stats.mac_trailer_bytes, 0,
                "unsigned frames carry no trailer"
            );
            // Signing adds exactly the fixed trailer, nothing else.
            let key = HopKey::from_seed(0xabc);
            let (signed, s_stats) = WireEncoder::new(profile)
                .encode_signed_with_stats(&b, &key, KeyEpoch(0))
                .unwrap();
            assert_eq!(s_stats.mac_trailer_bytes, MAC_TRAILER_BYTES);
            assert_eq!(s_stats.total_bytes, stats.total_bytes + MAC_TRAILER_BYTES);
            assert_eq!(signed.len(), frame.len() + MAC_TRAILER_BYTES);
        }
        // Compact receipt bodies are byte-for-byte the §7.1 arithmetic.
        for r in &b.samples {
            assert_eq!(
                Profile::Compact.sample_receipt_bytes(r.samples.len()),
                compact::sample_receipt_bytes(r)
            );
        }
        for a in &b.aggregates {
            assert_eq!(
                Profile::Compact.agg_receipt_bytes(a.agg_trans.len()),
                compact::agg_receipt_bytes(a)
            );
        }
        assert_eq!(Profile::Compact.sample_record_bytes(), 7);
        assert_eq!(Profile::Compact.agg_receipt_bytes(0), 22);
    }

    #[test]
    fn typed_errors_for_every_malformation() {
        let b = known_batch();
        let frame = WireFrame::encode(&b, Profile::Precise).unwrap();
        let bytes = frame.as_bytes().to_vec();

        assert_eq!(
            WireDecoder::decode(&[]),
            Err(WireError::Truncated { at: 0, needed: 4 })
        );
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            WireDecoder::decode(&bad),
            Err(WireError::BadMagic(_))
        ));
        let mut bad = bytes.clone();
        bad[4] = 2;
        assert_eq!(
            WireDecoder::decode(&bad),
            Err(WireError::UnsupportedVersion(2))
        );
        let mut bad = bytes.clone();
        bad[5] = 0b1000_0001;
        assert_eq!(
            WireDecoder::decode(&bad),
            Err(WireError::BadFlags(0b1000_0001))
        );
        let mut bad = bytes.clone();
        bad.push(0);
        assert_eq!(WireDecoder::decode(&bad), Err(WireError::TrailingBytes(1)));
        // Dangling path reference: the first sample body's path ref
        // sits right after header, table (2 paths) and directory.
        let at = HEADER_BYTES + 2 + 2 * PATH_ENTRY_BYTES + 4 + 4 * b.samples.len();
        let mut bad = bytes.clone();
        bad[at..at + 4].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            WireDecoder::decode(&bad),
            Err(WireError::BadPathRef {
                reference: 99,
                paths: 2
            })
        );
        // Oversized compact packet count is an encode-time error.
        let mut big = known_batch();
        big.aggregates[0].pkt_cnt = 1 << 48;
        assert_eq!(
            WireFrame::encode(&big, Profile::Compact),
            Err(WireError::CountTooLarge(1 << 48))
        );
        // …but fits the precise profile.
        assert!(WireFrame::encode(&big, Profile::Precise).is_ok());

        // A prefix length over 32 in the first path-table entry (the
        // length byte follows the 4-byte network).
        let at = HEADER_BYTES + 2 + 4;
        let mut bad = bytes.clone();
        bad[at] = 99;
        assert_eq!(WireDecoder::decode(&bad), Err(WireError::BadPrefixLen(99)));
        // A hop-option tag that is neither 0 (absent) nor 1 (present):
        // the prev-hop tag sits after both 5-byte prefixes.
        let at = HEADER_BYTES + 2 + 10;
        let mut bad = bytes.clone();
        bad[at] = 7;
        assert_eq!(WireDecoder::decode(&bad), Err(WireError::BadOptionTag(7)));
    }

    #[test]
    fn encode_refuses_a_path_table_wider_than_its_16_bit_count() {
        // 2^16 distinct /32 pairs: one more path than the u16 path
        // count can index.
        let n = u16::MAX as usize + 1;
        let batch = ReceiptBatch {
            hop: HopId(1),
            batch_seq: 0,
            samples: Vec::new(),
            aggregates: (0..n)
                .map(|i| AggReceipt {
                    path: PathId {
                        spec: HeaderSpec::new(
                            Ipv4Prefix::new(std::net::Ipv4Addr::from(i as u32), 32).unwrap(),
                            "192.168.0.0/24".parse().unwrap(),
                        ),
                        prev_hop: None,
                        next_hop: None,
                        max_diff: SimDuration::from_millis(1),
                    },
                    agg: AggId {
                        first: Digest(1),
                        last: Digest(2),
                    },
                    pkt_cnt: 1,
                    agg_trans: Vec::new(),
                })
                .collect(),
            auth_tag: 0,
        };
        assert_eq!(
            WireFrame::encode(&batch, Profile::Compact),
            Err(WireError::TooManyPaths(n))
        );
    }

    #[test]
    fn item_counts_beyond_u32_are_a_typed_refusal() {
        // The 4-byte section counts cannot index more items than
        // u32::MAX; `count32` is the single chokepoint.
        let n = u32::MAX as usize + 1;
        assert_eq!(count32(n), Err(WireError::TooManyItems(n)));
        assert_eq!(count32(7), Ok(7));
    }

    #[test]
    fn decoding_shares_no_state_with_the_publisher() {
        // A frame decodes from raw bytes alone (no out-of-band path
        // registry): rebuild from the byte string and compare.
        let b = known_batch();
        let frame = WireFrame::encode(&b, Profile::Precise).unwrap();
        let copy = WireFrame::from_bytes(frame.as_bytes().to_vec());
        assert_eq!(copy.decode().unwrap().batch, b);
        let _ = DomainId(0); // silence unused-import lint paths
    }

    #[test]
    fn signed_frames_round_trip_and_verify() {
        let b = known_batch();
        let key = HopKey::from_seed(0xabc);
        for profile in [Profile::Compact, Profile::Precise] {
            let frame = WireEncoder::new(profile)
                .encode_signed(&b, &key, KeyEpoch(3))
                .unwrap();
            let d = frame.decode().unwrap();
            assert_eq!(d.profile, profile);
            let sig = d.signature.expect("signed frame decodes a signature");
            assert_eq!(sig.epoch, KeyEpoch(3));
            assert!(frame.verify_mac(&key));
            // A different key — even one sharing the legacy tag-key
            // prefix — must not verify.
            assert!(!frame.verify_mac(&HopKey::from_seed(0xabd)));
            let mut same_prefix = *key.as_bytes();
            same_prefix[31] ^= 1;
            assert!(!frame.verify_mac(&HopKey::from_bytes(same_prefix)));
            // The signed body is the unsigned encoding except for the
            // flags byte, so the batch content is unchanged.
            if profile == Profile::Precise {
                assert_eq!(d.batch, b);
            }
        }
    }

    #[test]
    fn signing_binds_the_epoch() {
        // Same batch, same key, different epoch: different trailer —
        // and splicing one epoch's MAC after another epoch field fails.
        let b = known_batch();
        let key = HopKey::from_seed(0xabc);
        let e0 = WireEncoder::precise()
            .encode_signed(&b, &key, KeyEpoch(0))
            .unwrap();
        let e1 = WireEncoder::precise()
            .encode_signed(&b, &key, KeyEpoch(1))
            .unwrap();
        assert_ne!(e0, e1);
        let n = e0.len();
        let mut spliced = e0.as_bytes().to_vec();
        // Replace the epoch field (first 4 trailer bytes) with 1 while
        // keeping epoch 0's MAC.
        spliced[n - MAC_TRAILER_BYTES..n - SHA256_DIGEST_BYTES]
            .copy_from_slice(&1u32.to_le_bytes());
        let spliced = WireFrame::from_bytes(spliced);
        assert_eq!(
            spliced.decode().unwrap().signature.unwrap().epoch,
            KeyEpoch(1)
        );
        assert!(!spliced.verify_mac(&key), "epoch splice must break the MAC");
    }

    #[test]
    fn unsigned_frames_are_byte_identical_to_the_pre_mac_encoding() {
        // The SIGNED flag is opt-in: plain encode produces exactly the
        // historical bytes (flag clear, no trailer, signature None).
        let b = known_batch();
        let frame = WireFrame::encode(&b, Profile::Precise).unwrap();
        assert_eq!(frame.as_bytes()[5] & FLAG_SIGNED, 0);
        assert_eq!(frame.decode().unwrap().signature, None);
        assert!(!frame.verify_mac(&HopKey::from_seed(0xabc)));
    }

    #[test]
    fn truncated_trailers_are_typed_errors() {
        let b = known_batch();
        let key = HopKey::from_seed(0xabc);
        let frame = WireEncoder::precise()
            .encode_signed(&b, &key, KeyEpoch(0))
            .unwrap();
        for cut in [1, SHA256_DIGEST_BYTES, MAC_TRAILER_BYTES] {
            let short = &frame.as_bytes()[..frame.len() - cut];
            assert!(
                matches!(WireDecoder::decode(short), Err(WireError::Truncated { .. })),
                "cut {cut}"
            );
        }
        // A frame claiming SIGNED with extra bytes after the trailer is
        // trailing garbage, and an unsigned frame with a stray trailer
        // appended is too.
        let mut long = frame.as_bytes().to_vec();
        long.push(0);
        assert_eq!(WireDecoder::decode(&long), Err(WireError::TrailingBytes(1)));
        let unsigned = WireFrame::encode(&b, Profile::Precise).unwrap();
        let mut garbage = unsigned.as_bytes().to_vec();
        garbage.extend_from_slice(&[0u8; MAC_TRAILER_BYTES]);
        assert_eq!(
            WireDecoder::decode(&garbage),
            Err(WireError::TrailingBytes(MAC_TRAILER_BYTES))
        );
    }

    proptest::proptest! {
        /// Decoding is total: arbitrary bytes never panic.
        #[test]
        fn decode_never_panics_on_arbitrary_bytes(
            bytes in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..512)
        ) {
            let _ = WireDecoder::decode(&bytes);
        }

        /// Every strict prefix of a valid encoding is a typed error —
        /// frames are self-delimiting, so losing any tail bytes is
        /// always detected.
        #[test]
        fn truncations_of_valid_encodings_error(
            seed in proptest::prelude::any::<u64>(),
            cut in proptest::prelude::any::<u16>(),
            precise in proptest::prelude::any::<bool>()
        ) {
            let profile = if precise { Profile::Precise } else { Profile::Compact };
            let frame = WireFrame::encode(&arb_batch(seed), profile).unwrap();
            let n = frame.len();
            let cut = cut as usize % n;
            proptest::prop_assert!(WireDecoder::decode(&frame.as_bytes()[..cut]).is_err());
        }

        /// Corrupting one byte never panics (it may still decode — a
        /// flipped digest bit is valid content — but must never crash).
        #[test]
        fn single_byte_corruption_never_panics(
            seed in proptest::prelude::any::<u64>(),
            pos in proptest::prelude::any::<u16>(),
            val in proptest::prelude::any::<u8>()
        ) {
            let frame = WireFrame::encode(&arb_batch(seed), Profile::Precise).unwrap();
            let mut bytes = frame.as_bytes().to_vec();
            let n = bytes.len();
            bytes[pos as usize % n] = val;
            let _ = WireDecoder::decode(&bytes);
        }

        /// Corrupting any single byte of a signed frame never panics
        /// and never leaves a frame that still MAC-verifies: the MAC
        /// covers every byte before it, and a corrupted MAC no longer
        /// matches the recomputation.
        #[test]
        fn signed_single_byte_corruption_never_panics_and_never_verifies(
            seed in proptest::prelude::any::<u64>(),
            pos in proptest::prelude::any::<u16>(),
            xor in 1u8..=255
        ) {
            let key = HopKey::from_seed(seed ^ 0x5ec7e7);
            let frame = WireEncoder::precise()
                .encode_signed(&arb_batch(seed), &key, KeyEpoch(seed as u32 % 4))
                .unwrap();
            let mut bytes = frame.as_bytes().to_vec();
            let n = bytes.len();
            bytes[pos as usize % n] ^= xor; // xor≠0: always a real change
            let corrupted = WireFrame::from_bytes(bytes);
            proptest::prop_assert!(!corrupted.verify_mac(&key));
            // Decoding stays total, and anything that still decodes as
            // signed carries a signature that no longer verifies.
            if let Ok(d) = corrupted.decode() {
                proptest::prop_assert!(
                    d.signature.is_none() || !corrupted.verify_mac(&key)
                );
            }
        }

        /// Precise encode→decode is the identity on arbitrary batches.
        #[test]
        fn precise_roundtrip_on_arbitrary_batches(seed in proptest::prelude::any::<u64>()) {
            let b = arb_batch(seed);
            let d = WireFrame::encode(&b, Profile::Precise).unwrap().decode().unwrap();
            proptest::prop_assert_eq!(d.batch, b);
        }

        /// Compact encode→decode is exactly the documented truncation,
        /// and re-encoding the truncation reproduces the same bytes.
        #[test]
        fn compact_roundtrip_on_arbitrary_batches(seed in proptest::prelude::any::<u64>()) {
            let b = arb_batch(seed);
            let frame = WireFrame::encode(&b, Profile::Compact).unwrap();
            let d = frame.decode().unwrap();
            proptest::prop_assert_eq!(&d.batch, &truncated(&b));
            proptest::prop_assert_eq!(WireFrame::encode(&d.batch, Profile::Compact).unwrap(), frame);
        }
    }
}
