//! Measured receipt-plane sizes.
//!
//! §7.1's bandwidth claims rest on record-size arithmetic
//! (`vpm_core::receipt::compact`). This module closes the loop: it
//! encodes real batches with the compact-profile encoder, reads the
//! **actual** byte counts off the frames, and feeds them to
//! `vpm_core::overhead::measured_section_7_1_report` — so the §7.1
//! numbers are recomputed from what the encoder emits, not from what
//! the model assumes. A test below pins every measured size to the
//! corresponding model constant; if the wire format ever drifts, the
//! claims break loudly.

use vpm_core::overhead::{measured_section_7_1_report, MeasuredSizes, OverheadReport};
use vpm_core::processor::ReceiptBatch;
use vpm_core::receipt::{AggId, AggReceipt, PathId, SampleReceipt, SampleRecord};
use vpm_hash::Digest;
use vpm_packet::{HeaderSpec, HopId, SimDuration, SimTime};

use crate::codec::WireEncoder;

#[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
fn canonical_path(n: u8) -> PathId {
    PathId {
        spec: HeaderSpec::new(
            format!("10.{n}.0.0/16").parse().expect("valid prefix"), // vpm-lint: allow(R1, formats a valid /16 from a u8 octet)
            format!("172.16.{n}.0/24").parse().expect("valid prefix"), // vpm-lint: allow(R1, formats a valid /24 from a u8 octet)
        ),
        prev_hop: Some(HopId(3)),
        next_hop: Some(HopId(5)),
        max_diff: SimDuration::from_millis(2),
    }
}

fn batch(samples: &[usize], aggs: &[usize]) -> ReceiptBatch {
    let path = canonical_path(1);
    ReceiptBatch {
        hop: HopId(4),
        batch_seq: 7,
        samples: samples
            .iter()
            .map(|&n| SampleReceipt {
                path,
                samples: (0..n)
                    .map(|i| SampleRecord {
                        pkt_id: Digest(0x1111_0000 + i as u64),
                        time: SimTime::from_micros(10 * i as u64),
                    })
                    .collect(),
            })
            .collect(),
        aggregates: aggs
            .iter()
            .map(|&w| AggReceipt {
                path,
                agg: AggId {
                    first: Digest(0x2222_0000),
                    last: Digest(0x2222_ffff),
                },
                pkt_cnt: 1000,
                agg_trans: (0..w).map(|i| Digest(0x3333_0000 + i as u64)).collect(),
            })
            .collect(),
        auth_tag: 0,
    }
}

#[allow(clippy::expect_used)] // audited: every expect below carries a vpm-lint allow
fn encoded_len(b: &ReceiptBatch) -> usize {
    WireEncoder::compact()
        .encode(b)
        .expect("canonical batches encode") // vpm-lint: allow(R1, encoding a batch this code just built cannot exceed wire limits)
        .len()
}

/// Measure the receipt plane's sizes from actual compact-profile
/// encodings: every field is a difference of real frame lengths, not a
/// constant read back from the model.
pub fn measured_sizes() -> MeasuredSizes {
    let base = encoded_len(&batch(&[], &[]));
    let one_empty_receipt = encoded_len(&batch(&[0], &[]));
    let two_empty_receipts = encoded_len(&batch(&[0, 0], &[]));
    let two_records = encoded_len(&batch(&[2], &[]));
    let three_records = encoded_len(&batch(&[3], &[]));
    let one_agg = encoded_len(&batch(&[], &[0]));
    let one_agg_windowed = encoded_len(&batch(&[], &[3]));

    // Both receipts of `two_empty_receipts` share one path, so the
    // second receipt's marginal cost is pure framing (path ref +
    // directory entry); the first receipt additionally paid for the
    // path-table entry the empty batch has no occasion to emit.
    let sample_receipt_framing_bytes = two_empty_receipts - one_empty_receipt;
    let path_entry_bytes = one_empty_receipt - base - sample_receipt_framing_bytes;
    MeasuredSizes {
        sample_record_bytes: three_records - two_records,
        sample_receipt_framing_bytes,
        agg_receipt_bytes: one_agg - base - path_entry_bytes,
        agg_window_digest_bytes: (one_agg_windowed - one_agg) / 3,
        path_entry_bytes,
        frame_base_bytes: base,
    }
}

/// The §7.1 report recomputed from measured encoded frame lengths.
pub fn measured_overhead_report() -> OverheadReport {
    measured_section_7_1_report(&measured_sizes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpm_core::receipt::compact;

    /// The acceptance gate: every measured size equals the §7.1 model
    /// arithmetic. If the wire format drifts, this fails before any
    /// bandwidth claim is regenerated from it.
    #[test]
    fn measured_sizes_equal_the_compact_arithmetic() {
        let m = measured_sizes();
        assert_eq!(m.sample_record_bytes, compact::SAMPLE_RECORD_BYTES);
        assert_eq!(
            m.sample_receipt_framing_bytes,
            compact::PATH_REF_BYTES + 4,
            "path ref + directory entry"
        );
        assert_eq!(m.agg_receipt_bytes, 22, "the paper's 22-byte receipt");
        assert_eq!(m.agg_window_digest_bytes, compact::PKT_ID_BYTES);
        assert_eq!(m.path_entry_bytes, crate::codec::PATH_ENTRY_BYTES);
        assert_eq!(
            m.frame_base_bytes,
            crate::codec::HEADER_BYTES + 2 + 4 + 4,
            "header + empty path table + empty section counts"
        );
    }

    /// Per-receipt encoded sizes match the `receipt::compact` functions
    /// exactly, including the marginal cost of every record and window
    /// digest.
    #[test]
    fn marginal_receipt_costs_match_compact_functions() {
        let m = measured_sizes();
        for n in [0usize, 1, 5, 100] {
            let r = &batch(&[n], &[]).samples[0];
            assert_eq!(
                m.sample_record_bytes * n + compact::PATH_REF_BYTES,
                compact::sample_receipt_bytes(r),
                "{n} records"
            );
        }
        for w in [0usize, 1, 3, 17] {
            let a = &batch(&[], &[w]).aggregates[0];
            assert_eq!(
                m.agg_receipt_bytes + w * m.agg_window_digest_bytes,
                compact::agg_receipt_bytes(a),
                "window {w}"
            );
        }
    }

    #[test]
    fn measured_report_reproduces_the_paper_bandwidth_numbers() {
        let r = measured_overhead_report();
        let agg_pct = r
            .rows
            .iter()
            .find(|(l, _, _)| l.contains("(aggregates) [%]"))
            .expect("bandwidth row")
            .2;
        // The paper rounds to "0.046%"; the exact arithmetic gives
        // 0.055% — same regime either way.
        assert!((0.04..0.06).contains(&agg_pct), "{agg_pct}%");
    }
}
