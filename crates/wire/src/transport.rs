//! Transport-agnostic receipt dissemination.
//!
//! The paper assumes receipts are disseminated with authenticity and
//! integrity guarantees (assumption #2) and a privacy rule (§2.1): "a
//! receipt is made available only to the domains that observed the
//! corresponding traffic." [`ReceiptTransport`] is that contract as an
//! API — `publish` / `fetch` / `subscribe` over encoded
//! [`WireFrame`]s — with the enforcement points fixed by the trait's
//! documented semantics rather than by any one backing store:
//!
//! * **Authenticity at publish**: a frame must decode and its batch's
//!   tag must verify under the publishing HOP's registered key, so a
//!   tampered batch never enters circulation.
//! * **Visibility at fetch/poll**: a frame is returned only to
//!   requesters on the `on_path` list the publisher declared.
//! * **Shared, immutable frames**: published entries are handed out as
//!   [`Arc<Published>`] — fetching never deep-clones a batch, and two
//!   fetches of the same entry return pointers to the same allocation.
//!
//! Two implementations ship here: [`InMemoryBus`], the single-lock
//! reference store (kept for tests and small topologies), and
//! [`ShardedBus`], which spreads frames across `PathID`-hashed,
//! internally-locked shards so many domains publish and fetch
//! concurrently without contending on one `RwLock`. Both present
//! identical observable behaviour: same errors, same frame order
//! (global publish order), byte-identical fetch results.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use vpm_core::processor::ReceiptBatch;
use vpm_core::receipt::PathId;
use vpm_packet::{DomainId, HopId};

use crate::codec::{Profile, WireDecoder, WireEncoder, WireError, WireFrame};

/// A published frame with its provenance, shared by reference.
#[derive(Debug, Clone, PartialEq)]
pub struct Published {
    /// Global publish sequence number (fetch order).
    pub seq: u64,
    /// The publishing domain.
    pub domain: DomainId,
    /// The reporting HOP.
    pub hop: HopId,
    /// The encoded frame as published.
    pub frame: WireFrame,
    /// The decoded batch (verified against the HOP's key at publish).
    pub batch: ReceiptBatch,
    /// The frame's `PathID` table (shard routing, path-scoped fetch).
    pub paths: Vec<PathId>,
    /// Domains that observed the corresponding traffic — the only ones
    /// allowed to see this entry.
    pub on_path: Vec<DomainId>,
}

impl Published {
    fn visible_to(&self, requester: DomainId) -> bool {
        self.on_path.contains(&requester)
    }
}

/// A subscription handle returned by [`ReceiptTransport::subscribe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriptionId(pub u64);

/// Errors from transport operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The batch's authenticity tag did not verify under the
    /// publisher's registered key.
    BadTag {
        /// Offending HOP.
        hop: HopId,
    },
    /// The requesting domain is not on the path the receipts describe.
    NotOnPath {
        /// The requester.
        requester: DomainId,
    },
    /// No key registered for the HOP.
    UnknownHop(HopId),
    /// The published frame does not decode.
    Malformed(WireError),
    /// The subscription handle was never issued by this transport.
    UnknownSubscription(SubscriptionId),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::BadTag { hop } => write!(f, "authenticity tag failed for {hop}"),
            TransportError::NotOnPath { requester } => {
                write!(f, "{requester} did not observe this traffic")
            }
            TransportError::UnknownHop(h) => write!(f, "no key registered for {h}"),
            TransportError::Malformed(e) => write!(f, "malformed frame: {e}"),
            TransportError::UnknownSubscription(s) => write!(f, "unknown subscription {}", s.0),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Malformed(e)
    }
}

/// The dissemination API every receipt transport implements.
///
/// Implementations must preserve the paper's two receipt-plane
/// guarantees — authenticity at publish, on-path visibility at
/// fetch/poll — and must return entries in global publish order so
/// different transports are byte-for-byte interchangeable.
pub trait ReceiptTransport: Send + Sync {
    /// Register a HOP's signing key (out-of-band trust establishment).
    fn register_key(&self, hop: HopId, key: u64);

    /// Publish an encoded frame. Decodes it, verifies the batch tag
    /// against the HOP's registered key (a tampered or malformed frame
    /// never enters circulation) and stores it visible to `on_path`.
    /// Returns the entry's global sequence number.
    fn publish(
        &self,
        domain: DomainId,
        frame: WireFrame,
        on_path: Vec<DomainId>,
    ) -> Result<u64, TransportError>;

    /// Every entry the requester may see for a HOP, in publish order.
    /// Entries are `Arc`-shared, never cloned: fetching twice returns
    /// pointers to the same allocations.
    fn fetch(&self, requester: DomainId, hop: HopId)
        -> Result<Vec<Arc<Published>>, TransportError>;

    /// Every entry the requester may see whose frame references `path`,
    /// in publish order. On a sharded transport this touches only the
    /// path's shard.
    fn fetch_path(
        &self,
        requester: DomainId,
        path: &PathId,
    ) -> Result<Vec<Arc<Published>>, TransportError>;

    /// Open a subscription for a requester: subsequent [`Self::poll`]
    /// calls return entries published since the previous poll (starting
    /// from the subscription point), filtered to what the requester may
    /// see.
    fn subscribe(&self, requester: DomainId) -> SubscriptionId;

    /// Drain a subscription: visible entries published since the last
    /// poll, in publish order. Entries the requester may not see are
    /// skipped silently (a stream, unlike a targeted fetch, is not an
    /// assertion that specific traffic was observed).
    fn poll(&self, sub: SubscriptionId) -> Result<Vec<Arc<Published>>, TransportError>;

    /// Total published entries (diagnostics).
    fn len(&self) -> usize;

    /// Is the transport empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convenience: encode `batch` in `profile` and publish it.
    fn publish_batch(
        &self,
        domain: DomainId,
        batch: &ReceiptBatch,
        profile: Profile,
        on_path: Vec<DomainId>,
    ) -> Result<u64, TransportError> {
        let frame = WireEncoder::new(profile).encode(batch)?;
        self.publish(domain, frame, on_path)
    }
}

/// Decode + verify a frame against the key table; shared by both
/// implementations so their admission behaviour cannot drift.
fn admit(
    keys: &RwLock<HashMap<HopId, u64>>,
    seq: u64,
    domain: DomainId,
    frame: WireFrame,
    on_path: Vec<DomainId>,
) -> Result<Published, TransportError> {
    let decoded = WireDecoder::decode(frame.as_bytes())?;
    let hop = decoded.batch.hop;
    let key = *keys
        .read()
        .get(&hop)
        .ok_or(TransportError::UnknownHop(hop))?;
    if !decoded.batch.verify_tag(key) {
        return Err(TransportError::BadTag { hop });
    }
    Ok(Published {
        seq,
        domain,
        hop,
        frame,
        batch: decoded.batch,
        paths: decoded.paths,
        on_path,
    })
}

/// The privacy rule shared by `fetch`/`fetch_path`: visible entries are
/// returned; an empty result caused by hidden entries is an explicit
/// [`TransportError::NotOnPath`] refusal, not silence.
fn apply_visibility(
    requester: DomainId,
    matching: Vec<Arc<Published>>,
) -> Result<Vec<Arc<Published>>, TransportError> {
    let any_hidden = matching.iter().any(|p| !p.visible_to(requester));
    let visible: Vec<Arc<Published>> = matching
        .into_iter()
        .filter(|p| p.visible_to(requester))
        .collect();
    if visible.is_empty() && any_hidden {
        return Err(TransportError::NotOnPath { requester });
    }
    Ok(visible)
}

#[derive(Debug, Clone, Copy)]
struct SubCursor {
    requester: DomainId,
    next_seq: u64,
}

/// The single-lock reference transport: one `RwLock` over one entry
/// vector. Simple, obviously correct, and the behavioural baseline the
/// sharded transport is tested against.
#[derive(Default)]
pub struct InMemoryBus {
    keys: RwLock<HashMap<HopId, u64>>,
    entries: RwLock<Vec<Arc<Published>>>,
    subs: Mutex<Vec<SubCursor>>,
}

impl InMemoryBus {
    /// Empty bus.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReceiptTransport for InMemoryBus {
    fn register_key(&self, hop: HopId, key: u64) {
        self.keys.write().insert(hop, key);
    }

    fn publish(
        &self,
        domain: DomainId,
        frame: WireFrame,
        on_path: Vec<DomainId>,
    ) -> Result<u64, TransportError> {
        let mut entries = self.entries.write();
        let seq = entries.len() as u64;
        let published = admit(&self.keys, seq, domain, frame, on_path)?;
        entries.push(Arc::new(published));
        Ok(seq)
    }

    fn fetch(
        &self,
        requester: DomainId,
        hop: HopId,
    ) -> Result<Vec<Arc<Published>>, TransportError> {
        let matching: Vec<Arc<Published>> = self
            .entries
            .read()
            .iter()
            .filter(|p| p.hop == hop)
            .cloned()
            .collect();
        apply_visibility(requester, matching)
    }

    fn fetch_path(
        &self,
        requester: DomainId,
        path: &PathId,
    ) -> Result<Vec<Arc<Published>>, TransportError> {
        let matching: Vec<Arc<Published>> = self
            .entries
            .read()
            .iter()
            .filter(|p| p.paths.contains(path))
            .cloned()
            .collect();
        apply_visibility(requester, matching)
    }

    fn subscribe(&self, requester: DomainId) -> SubscriptionId {
        let mut subs = self.subs.lock();
        subs.push(SubCursor {
            requester,
            next_seq: self.entries.read().len() as u64,
        });
        SubscriptionId(subs.len() as u64 - 1)
    }

    fn poll(&self, sub: SubscriptionId) -> Result<Vec<Arc<Published>>, TransportError> {
        let mut subs = self.subs.lock();
        let cursor = subs
            .get_mut(sub.0 as usize)
            .ok_or(TransportError::UnknownSubscription(sub))?;
        let entries = self.entries.read();
        let fresh: Vec<Arc<Published>> = entries
            .iter()
            .skip(cursor.next_seq as usize)
            .filter(|p| p.visible_to(cursor.requester))
            .cloned()
            .collect();
        cursor.next_seq = entries.len() as u64;
        Ok(fresh)
    }

    fn len(&self) -> usize {
        self.entries.read().len()
    }
}

/// Seed for the stable shard hash (lookup3 over the `PathID` fields).
const SHARD_SEED: u64 = 0x5348_4152_4453_3031; // "SHARDS01"

fn shard_key_path(path: &PathId) -> u64 {
    let mut b = [0u8; 24];
    b[0..4].copy_from_slice(&u32::from(path.spec.src_prefix.network()).to_le_bytes());
    b[4] = path.spec.src_prefix.len();
    b[5..9].copy_from_slice(&u32::from(path.spec.dst_prefix.network()).to_le_bytes());
    b[9] = path.spec.dst_prefix.len();
    let hop_bytes = |h: Option<HopId>| match h {
        None => [0u8, 0, 0],
        Some(h) => {
            let le = h.0.to_le_bytes();
            [1, le[0], le[1]]
        }
    };
    b[10..13].copy_from_slice(&hop_bytes(path.prev_hop));
    b[13..16].copy_from_slice(&hop_bytes(path.next_hop));
    b[16..24].copy_from_slice(&path.max_diff.as_nanos().to_le_bytes());
    vpm_hash::lookup3::hash64(&b, SHARD_SEED)
}

fn shard_key_hop(hop: HopId) -> u64 {
    vpm_hash::lookup3::hash64(&hop.0.to_le_bytes(), SHARD_SEED ^ 0x55)
}

/// A `PathID`-sharded transport: entries land in the shard of each path
/// they reference (pathless frames shard by HOP), every shard behind
/// its own `RwLock`, so publishes and fetches for different paths
/// proceed without touching a common lock. A global atomic sequence
/// number preserves publish order, and every read path merges shards in
/// that order — fetch results are byte-identical to [`InMemoryBus`] for
/// the same publish sequence, for any shard count.
pub struct ShardedBus {
    shards: Vec<RwLock<Vec<Arc<Published>>>>,
    keys: RwLock<HashMap<HopId, u64>>,
    seq: AtomicU64,
    subs: Mutex<Vec<SubCursor>>,
}

impl ShardedBus {
    /// A bus with `shards` internally-locked shards (at least 1).
    pub fn new(shards: usize) -> Self {
        ShardedBus {
            shards: (0..shards.max(1))
                .map(|_| RwLock::new(Vec::new()))
                .collect(),
            keys: RwLock::new(HashMap::new()),
            seq: AtomicU64::new(0),
            subs: Mutex::new(Vec::new()),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of_path(&self, path: &PathId) -> usize {
        (shard_key_path(path) % self.shards.len() as u64) as usize
    }

    /// Shard indices an entry is stored under: one per distinct path,
    /// or the HOP shard for a pathless (empty) batch.
    fn shard_set(&self, published: &Published) -> Vec<usize> {
        let mut set: Vec<usize> = published
            .paths
            .iter()
            .map(|p| self.shard_of_path(p))
            .collect();
        if set.is_empty() {
            set.push((shard_key_hop(published.hop) % self.shards.len() as u64) as usize);
        }
        set.sort_unstable();
        set.dedup();
        set
    }

    /// Collect entries matching `pred` across all shards, deduplicated
    /// (multi-path entries are stored once per path shard) and merged
    /// in global publish order.
    fn collect<F: Fn(&Published) -> bool>(&self, pred: F) -> Vec<Arc<Published>> {
        let mut seen = HashSet::new();
        let mut out: Vec<Arc<Published>> = Vec::new();
        for shard in &self.shards {
            for p in shard.read().iter() {
                if pred(p) && seen.insert(p.seq) {
                    out.push(Arc::clone(p));
                }
            }
        }
        out.sort_by_key(|p| p.seq);
        out
    }
}

impl ReceiptTransport for ShardedBus {
    fn register_key(&self, hop: HopId, key: u64) {
        self.keys.write().insert(hop, key);
    }

    fn publish(
        &self,
        domain: DomainId,
        frame: WireFrame,
        on_path: Vec<DomainId>,
    ) -> Result<u64, TransportError> {
        // Admit before consuming a sequence number so rejected frames
        // leave no gap in the fetch order.
        let published = admit(&self.keys, 0, domain, frame, on_path)?;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let published = Arc::new(Published { seq, ..published });
        for shard in self.shard_set(&published) {
            self.shards[shard].write().push(Arc::clone(&published));
        }
        Ok(seq)
    }

    fn fetch(
        &self,
        requester: DomainId,
        hop: HopId,
    ) -> Result<Vec<Arc<Published>>, TransportError> {
        apply_visibility(requester, self.collect(|p| p.hop == hop))
    }

    fn fetch_path(
        &self,
        requester: DomainId,
        path: &PathId,
    ) -> Result<Vec<Arc<Published>>, TransportError> {
        // The whole point of path sharding: one shard holds every frame
        // referencing this path.
        let shard = &self.shards[self.shard_of_path(path)];
        let mut matching: Vec<Arc<Published>> = shard
            .read()
            .iter()
            .filter(|p| p.paths.contains(path))
            .cloned()
            .collect();
        matching.sort_by_key(|p| p.seq);
        apply_visibility(requester, matching)
    }

    fn subscribe(&self, requester: DomainId) -> SubscriptionId {
        let mut subs = self.subs.lock();
        subs.push(SubCursor {
            requester,
            next_seq: self.seq.load(Ordering::Relaxed),
        });
        SubscriptionId(subs.len() as u64 - 1)
    }

    fn poll(&self, sub: SubscriptionId) -> Result<Vec<Arc<Published>>, TransportError> {
        let mut subs = self.subs.lock();
        let cursor = subs
            .get_mut(sub.0 as usize)
            .ok_or(TransportError::UnknownSubscription(sub))?;
        let since = cursor.next_seq;
        let requester = cursor.requester;
        // Fast path: nothing has claimed a sequence number past the
        // cursor, so there is nothing to scan for.
        if self.seq.load(Ordering::Relaxed) <= since {
            return Ok(Vec::new());
        }
        // Sequence numbers are dense (`admit` runs before the counter
        // is claimed, so every claimed number is eventually inserted) —
        // but a publisher may still be between claiming seq N and
        // pushing into its shard while seq N+1 is already visible.
        // Advance the cursor only through the *contiguous* prefix of
        // sequence numbers actually present, so the in-flight entry is
        // picked up by a later poll instead of being skipped forever.
        let arrived = self.collect(|p| p.seq >= since);
        let mut next = since;
        let mut fresh = Vec::new();
        for p in arrived {
            if p.seq != next {
                break; // a lower seq is still in flight — stop here
            }
            next += 1;
            if p.visible_to(requester) {
                fresh.push(p);
            }
        }
        cursor.next_seq = next;
        Ok(fresh)
    }

    fn len(&self) -> usize {
        let mut seen = HashSet::new();
        self.shards
            .iter()
            .flat_map(|s| s.read().iter().map(|p| p.seq).collect::<Vec<_>>())
            .filter(|&s| seen.insert(s))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpm_core::receipt::{AggId, AggReceipt, SampleReceipt, SampleRecord};
    use vpm_hash::Digest;
    use vpm_packet::{HeaderSpec, SimDuration, SimTime};

    fn path(n: u8) -> PathId {
        PathId {
            spec: HeaderSpec::new(
                format!("10.{n}.0.0/16").parse().unwrap(),
                "192.168.0.0/24".parse().unwrap(),
            ),
            prev_hop: Some(HopId(3)),
            next_hop: Some(HopId(5)),
            max_diff: SimDuration::from_millis(2),
        }
    }

    fn batch(hop: HopId, seq: u64, path_n: u8) -> (ReceiptBatch, u64) {
        let mut b = ReceiptBatch {
            hop,
            batch_seq: seq,
            samples: vec![SampleReceipt {
                path: path(path_n),
                samples: vec![SampleRecord {
                    pkt_id: Digest(0x1000 + seq),
                    time: SimTime::from_micros(10 * seq),
                }],
            }],
            aggregates: vec![AggReceipt {
                path: path(path_n),
                agg: AggId {
                    first: Digest(1),
                    last: Digest(2),
                },
                pkt_cnt: 100,
                agg_trans: vec![],
            }],
            auth_tag: 0,
        };
        let key = 0xabc ^ hop.0 as u64;
        b.auth_tag = b.compute_tag(key);
        (b, key)
    }

    fn frame(b: &ReceiptBatch) -> WireFrame {
        WireEncoder::precise()
            .encode(b)
            .expect("test batch encodes")
    }

    /// Every transport behaviour the paper requires, exercised
    /// identically against any implementation.
    fn transport_suite(t: &dyn ReceiptTransport) {
        let (b, key) = batch(HopId(5), 0, 1);
        t.register_key(HopId(5), key);
        t.publish(
            DomainId(2),
            frame(&b),
            vec![DomainId(0), DomainId(1), DomainId(2)],
        )
        .unwrap();

        // On-path fetch returns the decoded batch, Arc-shared.
        let got = t.fetch(DomainId(1), HopId(5)).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].hop, HopId(5));
        assert_eq!(got[0].batch, b);
        let again = t.fetch(DomainId(1), HopId(5)).unwrap();
        assert!(
            Arc::ptr_eq(&got[0], &again[0]),
            "fetch must share entries, not deep-clone them"
        );

        // Path-scoped fetch finds the same entry; a foreign path is empty.
        let by_path = t.fetch_path(DomainId(0), &path(1)).unwrap();
        assert_eq!(by_path.len(), 1);
        assert!(Arc::ptr_eq(&by_path[0], &got[0]));
        assert!(t.fetch_path(DomainId(0), &path(9)).unwrap().is_empty());

        // Privacy rule: an off-path domain gets an explicit refusal.
        assert_eq!(
            t.fetch(DomainId(9), HopId(5)),
            Err(TransportError::NotOnPath {
                requester: DomainId(9)
            })
        );
        assert_eq!(
            t.fetch_path(DomainId(9), &path(1)),
            Err(TransportError::NotOnPath {
                requester: DomainId(9)
            })
        );

        // A tampered batch never enters circulation.
        let (mut doctored, _) = batch(HopId(5), 1, 1);
        doctored.aggregates[0].pkt_cnt += 1; // tamper after signing
        assert_eq!(
            t.publish(DomainId(2), frame(&doctored), vec![DomainId(2)]),
            Err(TransportError::BadTag { hop: HopId(5) })
        );

        // Unknown HOPs and malformed frames are refused.
        let (unknown, _) = batch(HopId(77), 0, 1);
        assert_eq!(
            t.publish(DomainId(2), frame(&unknown), vec![DomainId(2)]),
            Err(TransportError::UnknownHop(HopId(77)))
        );
        assert!(matches!(
            t.publish(DomainId(2), WireFrame::from_bytes(vec![1, 2, 3]), vec![]),
            Err(TransportError::Malformed(_))
        ));
        assert_eq!(t.len(), 1);

        // Subscriptions see exactly what is published after them, once.
        let sub = t.subscribe(DomainId(1));
        assert!(t.poll(sub).unwrap().is_empty());
        let (b2, key2) = batch(HopId(6), 0, 2);
        t.register_key(HopId(6), key2);
        t.publish(DomainId(3), frame(&b2), vec![DomainId(1), DomainId(3)])
            .unwrap();
        let polled = t.poll(sub).unwrap();
        assert_eq!(polled.len(), 1);
        assert_eq!(polled[0].batch, b2);
        assert!(t.poll(sub).unwrap().is_empty(), "a poll drains the stream");
        // A hidden publish is skipped silently by the stream.
        let (b3, key3) = batch(HopId(7), 0, 3);
        t.register_key(HopId(7), key3);
        t.publish(DomainId(4), frame(&b3), vec![DomainId(4)])
            .unwrap();
        assert!(t.poll(sub).unwrap().is_empty());
        assert_eq!(
            t.poll(SubscriptionId(999)),
            Err(TransportError::UnknownSubscription(SubscriptionId(999)))
        );
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn in_memory_bus_passes_the_suite() {
        transport_suite(&InMemoryBus::new());
    }

    #[test]
    fn sharded_bus_passes_the_suite_for_1_4_16_shards() {
        for shards in [1, 4, 16] {
            let bus = ShardedBus::new(shards);
            assert_eq!(bus.shards(), shards);
            transport_suite(&bus);
        }
    }

    /// The same publish sequence produces byte-identical fetch results
    /// on every implementation and shard count — transports are
    /// interchangeable.
    #[test]
    fn fetch_results_are_byte_identical_across_transports() {
        let make: Vec<Box<dyn Fn() -> Box<dyn ReceiptTransport>>> = vec![
            Box::new(|| Box::new(InMemoryBus::new())),
            Box::new(|| Box::new(ShardedBus::new(1))),
            Box::new(|| Box::new(ShardedBus::new(4))),
            Box::new(|| Box::new(ShardedBus::new(16))),
        ];
        let mut snapshots: Vec<Vec<u8>> = Vec::new();
        for mk in &make {
            let t = mk();
            // Interleave hops and paths so sharding actually spreads.
            for i in 0..12u64 {
                let hop = HopId(4 + (i % 3) as u16);
                let (b, key) = batch(hop, i, (i % 5) as u8);
                t.register_key(hop, key);
                t.publish(DomainId(1), frame(&b), vec![DomainId(1), DomainId(2)])
                    .unwrap();
            }
            // Snapshot: every hop fetch and every path fetch, in order,
            // as raw frame bytes plus sequence numbers.
            let mut snap = Vec::new();
            for hop in 4..7u16 {
                for p in t.fetch(DomainId(2), HopId(hop)).unwrap() {
                    snap.extend_from_slice(&p.seq.to_le_bytes());
                    snap.extend_from_slice(p.frame.as_bytes());
                }
            }
            for n in 0..5u8 {
                for p in t.fetch_path(DomainId(2), &path(n)).unwrap() {
                    snap.extend_from_slice(&p.seq.to_le_bytes());
                    snap.extend_from_slice(p.frame.as_bytes());
                }
            }
            snapshots.push(snap);
        }
        for s in &snapshots[1..] {
            assert_eq!(
                s, &snapshots[0],
                "every transport must serve the same bytes in the same order"
            );
        }
    }

    #[test]
    fn sharded_bus_spreads_entries_across_shards() {
        let bus = ShardedBus::new(4);
        let mut used = std::collections::HashSet::new();
        for n in 0..16u8 {
            used.insert(bus.shard_of_path(&path(n)));
        }
        assert!(
            used.len() >= 3,
            "16 distinct paths landed in only {} of 4 shards",
            used.len()
        );
    }

    /// A subscription must deliver every visible entry exactly once
    /// even while publishers race: a publisher that claimed sequence N
    /// but has not yet inserted into its shard when a later entry is
    /// polled must not be skipped (the cursor advances only through
    /// the contiguous sequence prefix).
    #[test]
    fn polling_under_concurrent_publishers_loses_nothing() {
        let bus = ShardedBus::new(8);
        for h in 1..=4u16 {
            let (_, key) = batch(HopId(h), 0, h as u8);
            bus.register_key(HopId(h), key);
        }
        let sub = bus.subscribe(DomainId(0));
        let total = 4 * 16;
        let mut seen: Vec<u64> = Vec::new();
        std::thread::scope(|s| {
            for h in 1..=4u16 {
                let bus = &bus;
                s.spawn(move || {
                    for i in 0..16u64 {
                        let (b, _) = batch(HopId(h), i, (i % 7) as u8);
                        bus.publish(DomainId(h), frame(&b), vec![DomainId(0), DomainId(h)])
                            .unwrap();
                    }
                });
            }
            // Poll concurrently with the publishers.
            while seen.len() < total {
                seen.extend(bus.poll(sub).unwrap().iter().map(|p| p.seq));
            }
        });
        assert_eq!(seen.len(), total);
        assert!(
            seen.windows(2).all(|w| w[1] == w[0] + 1),
            "stream must be gap-free and in publish order: {seen:?}"
        );
        assert!(bus.poll(sub).unwrap().is_empty());
    }

    #[test]
    fn concurrent_publishers_do_not_contend_on_one_lock() {
        let bus = ShardedBus::new(8);
        for h in 1..=8u16 {
            let (_, key) = batch(HopId(h), 0, h as u8);
            bus.register_key(HopId(h), key);
        }
        std::thread::scope(|s| {
            for h in 1..=8u16 {
                let bus = &bus;
                s.spawn(move || {
                    for i in 0..4u64 {
                        let (b, _) = batch(HopId(h), i, h as u8);
                        bus.publish(DomainId(h), frame(&b), vec![DomainId(h)])
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(bus.len(), 32);
        // Every publisher's frames come back complete and in order.
        for h in 1..=8u16 {
            let got = bus.fetch(DomainId(h), HopId(h)).unwrap();
            assert_eq!(got.len(), 4);
            assert!(got.windows(2).all(|w| w[0].seq < w[1].seq));
        }
    }
}
